//! Umbrella crate for the TiLT reproduction; re-exports the workspace crates.
pub use spe_grizzly as grizzly;
pub use spe_lightsaber as lightsaber;
pub use spe_streambox as streambox;
pub use spe_trill as trill;
pub use tilt_core as core;
pub use tilt_data as data;
pub use tilt_query as query;
pub use tilt_workloads as workloads;
