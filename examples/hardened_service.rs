//! A hardened long-running keyed service: Zipf-skewed traffic (a hot set
//! plus a huge cold tail) served with **idle-session eviction**, a
//! **reorder-buffer backstop**, and **panic quarantine** enabled — the
//! configuration a multi-tenant deployment would actually run with.
//!
//! ```sh
//! cargo run --release --example hardened_service
//! ```
//!
//! Watch the stats line: the live-session count tracks the *active* key
//! population while the total key count keeps growing — the cold tail is
//! retired and transparently revived on its next visit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::Compiler;
use tilt_data::{Event, Time, Value};
use tilt_runtime::{BackstopPolicy, KeyedEvent, QuerySettings, RuntimeConfig, StreamService};
use tilt_workloads::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users = 30_000usize;
    let n_events = 600_000usize;
    let window = 32i64;

    // Per-user 32-tick rolling activity sum, compiled once.
    let mut b = Query::builder();
    let input = b.input("activity", DataType::Float);
    let out = b.temporal(
        "rolling",
        TDom::every_tick(),
        Expr::reduce_window(ReduceOp::Sum, input, window),
    );
    let compiled = Arc::new(Compiler::new().compile(&b.finish(out)?)?);

    let emitted = Arc::new(AtomicU64::new(0));
    let sink_count = Arc::clone(&emitted);
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 4,
        allowed_lateness: 64,
        emit_interval: 128,
        // Idle users cost nothing: sessions retire after ~8k quiet
        // ticks and come back transparently on the next event.
        key_ttl: Some(8_192),
        // One misbehaving producer cannot pin unbounded reorder state:
        // overflow force-drains through the session, which is lossless
        // for in-order traffic (a Zipf hot key can out-pace emission
        // cycles, so drop-and-count would shed real events here).
        max_pending_per_key: Some(4_096),
        max_pending_per_shard: Some(262_144),
        backstop: BackstopPolicy::ForceDrain,
        ..RuntimeConfig::default()
    });
    builder.register_with(
        compiled,
        QuerySettings::with_sink(Arc::new(move |_user, events| {
            sink_count.fetch_add(events.len() as u64, Ordering::Relaxed);
        })),
    );
    let runtime = builder.start()?;

    println!("{users} users, Zipf(1.2) popularity, {n_events} events, TTL 8192 ticks\n");
    let traffic = gen::zipf_keyed_floats(n_events, users, 1.2, 2024);
    let report = |stats: &tilt_runtime::RuntimeStats| {
        println!(
            "  {:>7} events in: {:>6} users seen, {:>6} sessions live, {:>6} evicted, {:>6} revived",
            stats.events_in, stats.keys, stats.live_keys, stats.evictions, stats.revivals
        );
    };
    for part in traffic.chunks(n_events / 6) {
        runtime.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
        report(&runtime.stats());
    }

    // One last touch from every user: evicted sessions revive on demand.
    // The sweep is time-compressed (8 users per tick) so it spans far less
    // than the TTL — no user can idle out again mid-sweep.
    let base = n_events as i64 + 10_000;
    runtime.ingest((0..users as u64).map(|k| {
        KeyedEvent::new(k, 0, Event::point(Time::new(base + k as i64 / 8), Value::Float(1.0)))
    }));
    let out = runtime.finish_at(Time::new(base + users as i64 / 8 + window));

    println!("\nfinal:\n{:#}", out.stats);
    println!(
        "sessions retired {} times, revived {} times; {} outputs streamed to the sink",
        out.stats.evictions,
        out.stats.revivals,
        emitted.load(Ordering::Relaxed)
    );
    assert_eq!(out.stats.evictions, out.stats.revivals, "the sweep revived every evicted user");
    assert_eq!(out.stats.late_dropped, 0);
    assert_eq!(out.stats.backstop_dropped, 0, "force-drain loses nothing on in-order input");
    Ok(())
}
