//! Keyed streaming fraud detection: the banking workload of Table 2 served
//! by `tilt-runtime` — one compiled query, thousands of card streams,
//! out-of-order arrival, flagged transactions streamed out as they
//! finalize.
//!
//! ```sh
//! cargo run --release --example keyed_fraud
//! ```
//!
//! Contrast with `fraud_detection.rs`, which runs the same query on a
//! single in-order stream through one `StreamSession`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tilt_core::Compiler;
use tilt_data::{Event, Time, Value};
use tilt_runtime::{KeyedEvent, QuerySettings, RuntimeConfig, StreamService};
use tilt_workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::fraud_det();
    let cards = 2_000u64;
    let n_events = 400_000usize;
    let displacement = 256usize;

    println!("{}: {} — keyed across {cards} cards", app.name, app.description);

    // Compile once; every card's session shares the read-only result.
    let query = tilt_query::lower(&app.plan, app.output)?;
    let compiled = Arc::new(Compiler::new().compile(&query)?);

    // One global transaction feed: each tick, one card makes a lognormal-ish
    // payment; rare large multiples are the frauds to catch.
    let mut rng = StdRng::seed_from_u64(17);
    let mut feed: Vec<KeyedEvent> = (1..=n_events as i64)
        .map(|t| {
            let card = rng.gen_range(0..cards as i64) as u64;
            let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let mut amount = (z * 0.8).exp() * 40.0;
            if rng.gen::<f64>() < 0.003 {
                amount *= rng.gen_range(10.0..40.0);
            }
            KeyedEvent::new(card, 0, Event::point(Time::new(t), Value::Float(amount)))
        })
        .collect();
    // Scramble arrival order within bounded windows, as a real ingest tier
    // would see from parallel upstream producers.
    for block in feed.chunks_mut(displacement) {
        for i in (1..block.len()).rev() {
            block.swap(i, rng.gen_range(0..i + 1));
        }
    }

    let flagged = Arc::new(AtomicU64::new(0));
    let sink_count = Arc::clone(&flagged);
    let mut builder = StreamService::builder(RuntimeConfig {
        allowed_lateness: 2 * displacement as i64 + 2,
        ..RuntimeConfig::default()
    });
    builder.register_with(
        Arc::clone(&compiled),
        QuerySettings::with_sink(Arc::new(move |card, events| {
            let n = sink_count.fetch_add(events.len() as u64, Ordering::Relaxed);
            for (i, e) in events.iter().enumerate() {
                if n + (i as u64) < 8 {
                    println!(
                        "  card {card:>5}  t={:>7}  amount {:>10.2}  FLAGGED",
                        e.end.ticks(),
                        e.payload.as_f64().unwrap_or(0.0)
                    );
                }
            }
        })),
    );
    let runtime = builder.start()?;

    for chunk in feed.chunks(10_000) {
        runtime.ingest(chunk.iter().cloned());
    }
    let mid = runtime.stats();
    let output = runtime.finish_at(Time::new(n_events as i64 + 1));

    println!("\nmid-flight:  {mid}");
    println!("final:       {}", output.stats);
    println!(
        "\n{} transactions over {} cards on {} shards: {} flagged as > trailing mean + 3 sigma",
        output.stats.events_in,
        output.stats.keys,
        output.stats.shard_watermarks.len(),
        flagged.load(Ordering::Relaxed),
    );
    Ok(())
}
