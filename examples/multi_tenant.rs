//! Multi-tenant query serving on the live control plane: tenants come and
//! go while one `StreamService` keeps ingesting the shared ad stream.
//!
//! The run has three phases:
//!
//! 1. Two dashboard tenants (the YSB per-campaign 10s view count — one
//!    streaming to a sink, one accumulating) are registered before start;
//!    they share an execution cell, so the pane-count kernel they are
//!    structurally identical on executes once per advance.
//! 2. An alerting tenant (peak 10s burst per minute) **attaches to the
//!    running service** and joins at a negotiated frontier — no restart,
//!    no replay; from the frontier onward it sees exactly what a fresh
//!    standalone service would.
//! 3. Tenant A **detaches**: its accumulated output is reclaimed and the
//!    shared cell is incrementally re-planned around tenant B (whose
//!    output is untouched). A cell's per-key sessions are torn down once
//!    its last member leaves.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tilt_core::Compiler;
use tilt_runtime::{QuerySettings, RuntimeConfig, StreamService};
use tilt_workloads::ysb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_events = 400_000usize;
    let campaigns = 500usize;
    let rate = 1_000; // events per "second"
    let window = ysb::window_ticks(rate);
    let displacement = 256usize;

    // One shared ad stream, arriving out of order within bounded windows.
    let events = ysb::generate(n_events, campaigns, 7);
    let arrivals = ysb::shuffle_bounded(&events, displacement, 11);
    let keyed = ysb::keyed(&arrivals);
    let expected_views = events.iter().filter(|e| e.event_type == 0).count() as i64;
    let third = keyed.len() / 3;

    let (p_dash, o_dash) = ysb::plan(window);
    let (p_alert, o_alert) = ysb::factor_plan(window, ysb::FACTOR);
    let dashboard = Arc::new(Compiler::new().compile(&tilt_query::lower(&p_dash, o_dash)?)?);
    let alerting = Arc::new(Compiler::new().compile(&tilt_query::lower(&p_alert, o_alert)?)?);

    let dash_windows = Arc::new(AtomicU64::new(0));
    let alerts = Arc::new(AtomicU64::new(0));

    // Phase 1: two dashboard tenants registered before start.
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 4,
        allowed_lateness: 2 * displacement as i64 + 2,
        emit_interval: window,
        ..RuntimeConfig::default()
    });
    let tenant_a = {
        let counter = Arc::clone(&dash_windows);
        builder.register_with(
            Arc::clone(&dashboard),
            QuerySettings::with_sink(Arc::new(move |_campaign, events| {
                counter.fetch_add(events.len() as u64, Ordering::Relaxed);
            })),
        )
    };
    let tenant_b = builder.register(dashboard); // identical query, deduped in-cell
    let service = builder.start()?;
    println!("phase 1: tenants A+B live ({} queries)", service.num_queries());
    service.ingest(keyed[..third].iter().cloned());

    // Phase 2: the alerting tenant joins the *running* service.
    let alert_q = {
        let counter = Arc::clone(&alerts);
        service.attach(
            alerting,
            QuerySettings::with_sink(Arc::new(move |_campaign, events| {
                counter.fetch_add(events.len() as u64, Ordering::Relaxed);
            })),
        )?
    };
    println!(
        "phase 2: alerting attached at frontier t={} ({} queries live)",
        alert_q.frontier().ticks(),
        service.num_queries()
    );
    service.ingest(keyed[third..2 * third].iter().cloned());

    // Phase 3: tenant A churns out; B and the alerting tenant survive.
    service.detach(tenant_a)?;
    println!("phase 3: tenant A detached ({} queries live)", service.num_queries());
    service.ingest(keyed[2 * third..].iter().cloned());

    let end = ysb::extent(&events, ysb::FACTOR * window).end;
    let out = service.finish_at(end);

    // Tenant B was live throughout and accumulated its outputs: recount
    // the views from them.
    let views = ysb::count_views(out.per_query[tenant_b.index()].values(), end, window);
    assert_eq!(views, expected_views, "tenant B must count every view despite the churn");
    assert!(
        out.per_query[tenant_a.index()].values().all(|v| v.is_empty()),
        "tenant A's output was reclaimed at detach"
    );

    println!(
        "\ningested {} events once for all tenants ({} reorder-buffered, {} late-dropped)",
        out.stats.events_in, out.stats.reorder_buffered, out.stats.late_dropped,
    );
    println!(
        "kernel executions: {} run, {} saved by prefix dedup between the dashboard tenants",
        out.stats.kernels_run, out.stats.kernels_saved
    );
    println!(
        "control plane: {} attached, {} detached, {} per-key sessions reclaimed; \
         join frontiers {:?}",
        out.stats.attached,
        out.stats.detached,
        out.stats.sessions_reclaimed,
        out.stats.query_frontiers.iter().map(|t| t.ticks()).collect::<Vec<_>>(),
    );
    println!(
        "tenant A streamed {} dashboard windows before detaching, tenant B kept {} views, \
         alerting streamed {} peaks from its frontier onward",
        dash_windows.load(Ordering::Relaxed),
        views,
        alerts.load(Ordering::Relaxed),
    );
    println!("final stats:\n{:#}", out.stats);
    Ok(())
}
