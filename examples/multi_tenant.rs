//! Multi-tenant query serving: several queries over one ingested ad
//! stream through a shared `MultiRuntime`.
//!
//! Three registrations — an ops dashboard counting per-campaign views in
//! 10s windows (YSB), a second tenant registering the *same* dashboard
//! query, and an alerting query watching the peak 10s burst per minute —
//! are served from one ingestion pass: hash-partitioning, reorder
//! buffering, and watermark tracking happen once per shard, and the
//! pane-count kernel all three structurally share executes once per
//! advance. Each tenant still gets its own sink, output stream, and
//! counters.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tilt_core::Compiler;
use tilt_runtime::{MultiRuntime, RuntimeConfig};
use tilt_workloads::ysb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_events = 400_000usize;
    let campaigns = 500usize;
    let rate = 1_000; // events per "second"
    let window = ysb::window_ticks(rate);
    let displacement = 256usize;

    // One shared ad stream, arriving out of order within bounded windows.
    let events = ysb::generate(n_events, campaigns, 7);
    let arrivals = ysb::shuffle_bounded(&events, displacement, 11);
    let expected_views = events.iter().filter(|e| e.event_type == 0).count() as i64;

    // Compile the tenants' queries (tenant B registers the same dashboard
    // query as tenant A — the registry dedups it to zero extra kernels).
    let (p_dash, o_dash) = ysb::plan(window);
    let (p_alert, o_alert) = ysb::factor_plan(window, ysb::FACTOR);
    let dashboard = Arc::new(Compiler::new().compile(&tilt_query::lower(&p_dash, o_dash)?)?);
    let alerting = Arc::new(Compiler::new().compile(&tilt_query::lower(&p_alert, o_alert)?)?);

    let dash_windows = Arc::new(AtomicU64::new(0));
    let alerts = Arc::new(AtomicU64::new(0));

    let mut builder = MultiRuntime::builder(RuntimeConfig {
        shards: 4,
        allowed_lateness: 2 * displacement as i64 + 2,
        emit_interval: window,
        ..RuntimeConfig::default()
    });
    let tenant_a = {
        let counter = Arc::clone(&dash_windows);
        builder.register_with_sink(
            Arc::clone(&dashboard),
            Arc::new(move |_campaign, events| {
                counter.fetch_add(events.len() as u64, Ordering::Relaxed);
            }),
        )
    };
    let tenant_b = builder.register(dashboard); // identical query, kept outputs
    let alert_q = {
        let counter = Arc::clone(&alerts);
        builder.register_with_sink(
            alerting,
            Arc::new(move |_campaign, events| {
                counter.fetch_add(events.len() as u64, Ordering::Relaxed);
            }),
        )
    };

    let runtime = builder.start()?;
    println!(
        "registered {} queries: {} kernel instances -> {} distinct ({} shared across tenants)",
        runtime.num_queries(),
        runtime.group().kernel_instances(),
        runtime.group().distinct_kernels(),
        runtime.group().shared_kernels(),
    );

    runtime.ingest(ysb::keyed(&arrivals));
    let end = ysb::extent(&events, ysb::FACTOR * window).end;
    let out = runtime.finish_at(end);

    // Tenant B accumulated its outputs: recount the views from them.
    let views = ysb::count_views(out.per_query[tenant_b.index()].values(), end, window);
    assert_eq!(views, expected_views, "tenant B must count every view");

    println!(
        "ingested {} events once for {} queries ({} reorder-buffered, {} late-dropped)",
        out.stats.events_in,
        out.stats.events_out_per_query.len(),
        out.stats.reorder_buffered,
        out.stats.late_dropped,
    );
    println!(
        "kernel executions: {} run, {} saved by prefix dedup",
        out.stats.kernels_run, out.stats.kernels_saved
    );
    println!(
        "tenant A streamed {} dashboard windows (query {}), tenant B kept {} views, \
         alerting streamed {} peaks (query {})",
        dash_windows.load(Ordering::Relaxed),
        tenant_a.index(),
        views,
        alerts.load(Ordering::Relaxed),
        alert_q.index(),
    );
    println!("final stats: {}", out.stats);
    Ok(())
}
