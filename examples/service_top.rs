//! `top` for a running [`StreamService`]: a self-terminating live view of
//! the metrics registry and the control-plane journal.
//!
//! ```sh
//! cargo run --release --example service_top
//! ```
//!
//! An ingest thread feeds Zipf-skewed keyed traffic while the main thread
//! repeatedly snapshots [`StreamService::metrics`] — throughput, live
//! sessions, queue depths, ingest-lag and advance-time histograms — and a
//! tenant attaches and detaches mid-run so the journal has transitions to
//! show. The final frame prints the journal tail and a Prometheus
//! exposition excerpt ([`StreamService::metrics_text`]).

use std::sync::Arc;
use std::time::Duration;

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::Compiler;
use tilt_obs::SampleValue;
use tilt_runtime::{KeyedEvent, QuerySettings, RuntimeConfig, StreamService};
use tilt_workloads::gen;

fn rolling(window: i64) -> Arc<tilt_core::CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("activity", DataType::Float);
    let out = b.temporal(
        "rolling",
        TDom::every_tick(),
        Expr::reduce_window(ReduceOp::Sum, input, window),
    );
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

/// One histogram's (p50, p95) across shards, or `-` when empty.
fn lag(m: &tilt_obs::MetricsSnapshot, name: &str) -> String {
    let mut merged: Option<tilt_obs::HistogramSnapshot> = None;
    for s in m.samples.iter().filter(|s| s.name == name) {
        if let SampleValue::Histogram(h) = &s.value {
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(acc) => {
                    acc.sum += h.sum;
                    acc.max = acc.max.max(h.max);
                    for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                }
            }
        }
    }
    match merged {
        Some(h) if h.count() > 0 => format!("p50={} p95={} max={}", h.p50(), h.p95(), h.max),
        _ => "-".into(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users = 10_000usize;
    let n_events = 400_000usize;

    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 4,
        allowed_lateness: 64,
        emit_interval: 128,
        key_ttl: Some(4_096), // cold-tail eviction feeds the journal
        journal_capacity: 64,
        ..RuntimeConfig::default()
    });
    builder.register(rolling(32));
    let service = Arc::new(builder.start()?);

    // Feed in chunks with a breather so several top frames see motion.
    let feeder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let traffic = gen::zipf_keyed_floats(n_events, users, 1.2, 7);
            for part in traffic.chunks(n_events / 8) {
                service.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };

    let mut tenant = None;
    for frame in 0..6 {
        std::thread::sleep(Duration::from_millis(80));
        // Control-plane churn mid-run so the journal has transitions.
        if frame == 2 {
            tenant = Some(service.attach(rolling(8), QuerySettings::default())?);
        }
        if frame == 4 {
            service.detach(tenant.take().expect("attached at frame 2"))?;
        }
        let m = service.metrics();
        println!(
            "[{frame}] in={:>7} out={:>7} live_keys={:>5} evicted={:>4} queued={:>5} \
             queries={} | ingest_lag {} | advance_ns {}",
            m.counter_total("tilt_events_in_total"),
            m.counter_total("tilt_events_out_total"),
            m.gauge_total("tilt_live_keys"),
            m.counter_total("tilt_evictions_total"),
            m.gauge_total("tilt_queue_depth"),
            m.gauge_total("tilt_queries_live"),
            lag(&m, "tilt_ingest_lag_ticks"),
            lag(&m, "tilt_advance_ns"),
        );
    }
    feeder.join().expect("ingest thread");

    let service = Arc::into_inner(service).expect("sole owner after join");
    let out = service.finish_at(tilt_data::Time::new(n_events as i64 + 64));

    println!(
        "\ncontrol-plane journal ({} entries, {} dropped):",
        out.journal.events.len(),
        out.journal.dropped
    );
    for e in out.journal.events.iter().rev().take(8).rev() {
        println!("  #{:<4} +{:>5}ms  {}", e.seq, e.at_ms, e.event);
    }

    let text = out.metrics.to_prometheus();
    println!("\nprometheus exposition excerpt:");
    for line in text
        .lines()
        .filter(|l| {
            l.starts_with("tilt_events")
                || l.contains("tilt_ingest_lag_ticks{shard=\"0\",le=\"+Inf\"")
                || l.starts_with("tilt_query_emitted_total")
        })
        .take(10)
    {
        println!("  {line}");
    }
    println!("\n{:#}", out.stats);
    assert_eq!(out.stats.conservation_balance(), 0, "every ingested event is accounted for");
    Ok(())
}
