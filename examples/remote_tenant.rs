//! A remote tenant over the network front door: the full
//! ingest/attach/subscribe/scrape surface exercised through real TCP
//! sockets against an in-process `tilt-server`.
//!
//! The run stands up a server on an ephemeral loopback port with a small
//! catalog of prepared queries, then drives it from three independent
//! connections, the way separate processes would:
//!
//! 1. an **operator** connection attaches the `sliding_sum` catalog
//!    query (negotiating a join frontier) and later shuts the service
//!    down through an explicit horizon;
//! 2. a **dashboard** connection subscribes to the query's per-key
//!    output stream and tallies it as it arrives;
//! 3. a **producer** connection pushes the keyed event stream under
//!    credit-based backpressure (`Busy` replies tell the producer the
//!    shards are saturated; the events still land).
//!
//! The dashboard's total must equal the service's own `events_out`
//! counter, conservation must balance to zero over the wire, and the
//! journal scrape shows the network control plane (connects, the
//! attach, the subscribe) stitched into the service's own transitions.
//!
//! ```sh
//! cargo run --release --example remote_tenant
//! ```

use std::sync::Arc;

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::Compiler;
use tilt_data::{Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig};
use tilt_server::{Client, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let keys = 32u64;
    let per_key = 4_000i64;

    // The catalog: queries a remote tenant may attach by name.
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 16));
    let sliding_sum = Arc::new(Compiler::new().compile(&b.finish(out)?)?);

    let config = RuntimeConfig {
        shards: 2,
        allowed_lateness: 8,
        start: Time::ZERO,
        ..RuntimeConfig::default()
    };
    let server = Server::start(config, vec![("sliding_sum".into(), sliding_sum)])?;
    println!("tilt-server listening on {}", server.addr());

    // Operator: inspect the catalog, attach the tenant's query.
    let operator = Client::connect(server.addr())?;
    print!("catalog:\n{}", operator.catalog_text()?);
    let query = operator.attach("sliding_sum", None, None)?;
    println!("attached query {} at frontier {:?}", query.id(), query.frontier());

    // Dashboard: an independent connection streaming the output.
    let dashboard = Client::connect(server.addr())?;
    let subscription = dashboard.subscribe(query)?;
    let tally = std::thread::spawn(move || {
        let mut events = 0u64;
        let mut frames = 0u64;
        while let Some((_key, batch)) = subscription.next() {
            events += batch.len() as u64;
            frames += 1;
        }
        (events, frames)
    });

    // Producer: a third connection pushing the keyed stream under
    // credit control.
    let producer = Client::connect(server.addr())?;
    let events: Vec<KeyedEvent> = (0..per_key)
        .flat_map(|i| {
            (0..keys).map(move |key| {
                let v = ((key as i64 + i) % 8) as f64 * 0.25;
                KeyedEvent::new(key, 0, Event::point(Time::new(i + 1), Value::Float(v)))
            })
        })
        .collect();
    let report = producer.ingest(events)?;
    println!(
        "producer: {} events in {} credit-sized frames, {} Busy replies",
        report.events, report.frames, report.busy
    );

    // Drain through an explicit horizon; the dashboard gets the flush
    // tail and then end-of-stream.
    operator.shutdown(Some(Time::new(per_key + 16)))?;
    let (dashboard_events, dashboard_frames) = tally.join().expect("dashboard thread");
    println!("dashboard: {dashboard_events} output events in {dashboard_frames} frames");

    let stats = operator.stats()?;
    println!(
        "service: events_in={} events_out={} conservation_balance={} \
         bytes_in={} bytes_out={} decode_errors={}",
        stats.get("events_in").unwrap_or(-1),
        stats.get("events_out").unwrap_or(-1),
        stats.get("conservation_balance").unwrap_or(-1),
        stats.get("bytes_in").unwrap_or(-1),
        stats.get("bytes_out").unwrap_or(-1),
        stats.get("decode_errors").unwrap_or(-1),
    );
    assert_eq!(stats.get("conservation_balance"), Some(0), "conservation over the wire");
    assert_eq!(
        stats.get("events_out"),
        Some(dashboard_events as i64),
        "the dashboard saw every emitted event"
    );

    let journal = operator.journal_text()?;
    println!("journal (network + service control plane):");
    for line in journal.lines().take(8) {
        println!("  {line}");
    }

    server.stop();
    println!("ok");
    Ok(())
}
