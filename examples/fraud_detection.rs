//! Streaming fraud detection — the banking workload of Table 2, run in
//! *batched streaming* mode (the paper's latency-bounded execution, §7.3).
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```
//!
//! Transactions arrive in small batches; the compiled query keeps just
//! enough history (the boundary-resolved lookback) to evaluate the sliding
//! μ+3σ threshold across batch boundaries.

use tilt_core::Compiler;
use tilt_data::Time;
use tilt_workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::fraud_det();
    println!("{}: {}", app.name, app.description);

    let query = tilt_query::lower(&app.plan, app.output)?;
    let compiled = Compiler::new().compile(&query)?;
    println!(
        "sliding window {} ticks; session retains {} ticks of history per input",
        apps::FRAUD_WINDOW,
        compiled.boundary().max_input_lookback(compiled.query()),
    );

    let events = (app.dataset)(20_000, 7);
    let mut session = compiled.stream_session(Time::ZERO);
    let mut flagged = 0usize;
    let mut batches = 0usize;
    let mut examples = Vec::new();
    for chunk in events.chunks(500) {
        session.push_events(0, chunk);
        let out = session.advance_to(chunk.last().expect("non-empty").end);
        for e in out.to_events() {
            if examples.len() < 8 {
                examples.push(format!(
                    "  t={:>6}  amount {:>10.2}",
                    e.end.ticks(),
                    e.payload.as_f64().unwrap_or(0.0)
                ));
            }
            flagged += 1;
        }
        batches += 1;
    }
    println!(
        "\nprocessed {} transactions in {batches} batches; flagged {flagged} as suspicious:",
        events.len()
    );
    for line in examples {
        println!("{line}");
    }
    println!("  ... (threshold: trailing-window mean + 3 sigma)");
    Ok(())
}
