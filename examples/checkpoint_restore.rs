//! Crash and resume: checkpoint a running keyed service, "lose" the
//! process, restore from the snapshot, and finish the stream — then
//! prove the output is identical to a service that never stopped.
//!
//! ```sh
//! cargo run --release --example checkpoint_restore
//! ```
//!
//! The snapshot captures everything the shards know mid-stream:
//! sessions, reorder buffers (with per-cell consumption flags),
//! watermarks, emission progress, tombstones, and the counter registry
//! — so the restored service resumes the books (`events_in` keeps
//! counting from where the dead process left off) and the byte-level
//! output contract (`crates/state/README.md`) holds end to end.

use std::collections::HashMap;
use std::sync::Arc;

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::Compiler;
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};

/// Deterministic mixed-key traffic: `keys` interleaved unit-width
/// events with value patterns that make per-key sums distinguishable.
fn traffic(keys: u64, ticks: i64) -> Vec<KeyedEvent> {
    let mut out = Vec::new();
    for t in 1..=ticks {
        for k in 0..keys {
            if !(t as u64 + k).is_multiple_of(3) {
                let v = ((t as u64 * 7 + k * 13) % 32) as f64 * 0.25;
                out.push(KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v))));
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-key 16-tick rolling sum, compiled once, reused by every run.
    let mut b = Query::builder();
    let input = b.input("activity", DataType::Float);
    let out =
        b.temporal("rolling", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 16));
    let compiled = Arc::new(Compiler::new().compile(&b.finish(out)?)?);

    let config = RuntimeConfig {
        shards: 2,
        allowed_lateness: 8,
        emit_interval: 4,
        start: Time::ZERO,
        ..RuntimeConfig::default()
    };
    let arrivals = traffic(6, 240);
    let split = arrivals.len() / 2;
    let horizon = Time::new(260);
    let snapshot = std::env::temp_dir().join(format!("tilt-demo-{}.tiltsnp", std::process::id()));

    // ── the interrupted run ────────────────────────────────────────────
    // Epoch 1: ingest half the stream, checkpoint, then "crash".
    let mut builder = StreamService::builder(config);
    let q = builder.register(Arc::clone(&compiled));
    let service = builder.start()?;
    service.ingest(arrivals[..split].iter().cloned());
    let bytes = service.checkpoint(&snapshot)?;
    println!(
        "epoch 1: ingested {} events, checkpointed {} bytes to {}",
        split,
        bytes,
        snapshot.display()
    );
    drop(service); // the process dies here — no drain, no flush

    // Epoch 2: a fresh process rebuilds the service from the snapshot.
    // Queries are code, not data: the caller re-supplies the compiled
    // roster in registration order.
    let service = StreamService::restore(&snapshot, &[Arc::clone(&compiled)])?;
    let stats = service.stats();
    println!(
        "epoch 2: restored — events_in resumes at {}, checkpoint lineage {}",
        stats.events_in, stats.checkpoints
    );
    service.ingest(arrivals[split..].iter().cloned());
    let resumed = service.finish_at(horizon);
    assert_eq!(resumed.stats.conservation_balance(), 0, "books balance across the restore");

    // ── the uninterrupted reference ────────────────────────────────────
    let mut builder = StreamService::builder(config);
    let q2 = builder.register(Arc::clone(&compiled));
    let reference = builder.start()?;
    reference.ingest(arrivals.iter().cloned());
    let straight = reference.finish_at(horizon);

    // No sink was installed, so epoch 1's finalized output accumulated
    // *inside* the service — and rode the snapshot. The restored run's
    // collected output is therefore the complete stream, and it must be
    // identical, per key, to the run that never stopped.
    let got: &HashMap<u64, Vec<Event<Value>>> = &resumed.per_query[q.index()];
    let want: &HashMap<u64, Vec<Event<Value>>> = &straight.per_query[q2.index()];
    assert_eq!(got.len(), want.len(), "same key population");
    for (key, want_events) in want {
        let got_events = got.get(key).map(Vec::as_slice).unwrap_or(&[]);
        assert!(
            streams_equivalent(&coalesce(got_events), &coalesce(want_events)),
            "key {key}: restored run diverged from the uninterrupted run"
        );
    }
    println!("output identical to the uninterrupted run for all {} keys ✓", want.len());

    std::fs::remove_file(&snapshot).ok();
    Ok(())
}
