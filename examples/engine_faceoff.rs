//! Run the same query on three engines — TiLT, the Trill-style interpreted
//! baseline, and the StreamBox-style pipeline engine — and check they agree.
//!
//! ```sh
//! cargo run --release --example engine_faceoff
//! ```
//!
//! This is the differential-testing setup of the repository in miniature,
//! plus a small wall-clock comparison (the Fig. 7 claim in one screen).

use std::time::Instant;

use tilt_core::Compiler;
use tilt_data::{streams_close, SnapshotBuf, Time, TimeRange};
use tilt_workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::trading();
    let n = 200_000usize;
    let events = (app.dataset)(n, 3);
    let range = TimeRange::new(Time::ZERO, Time::new(n as i64));

    // TiLT: compile once, run fused kernels.
    let query = tilt_query::lower(&app.plan, app.output)?;
    let compiled = Compiler::new().compile(&query)?;
    let input = SnapshotBuf::from_events(&events, range);
    let t0 = Instant::now();
    let tilt_out = compiled.run(&[&input], range).to_events();
    let tilt_time = t0.elapsed();

    // Trill baseline: interpreted micro-batch dataflow.
    let t0 = Instant::now();
    let trill_out: Vec<_> = spe_trill::run_single(&app.plan, app.output, &events, 65_536)
        .into_iter()
        .filter(|e| e.end <= range.end)
        .collect();
    let trill_time = t0.elapsed();

    // StreamBox baseline: pipeline-parallel stages. Its temporal join is
    // O(n²) (paper §7.1: 321.94× behind TiLT), so give it a 10 K slice and
    // compare on its own input (throughput normalizes).
    let sb_n = 10_000usize;
    let sb_events: Vec<_> = events[..sb_n].to_vec();
    let sb_range = TimeRange::new(Time::ZERO, Time::new(sb_n as i64));
    let t0 = Instant::now();
    let sb_out: Vec<_> = spe_streambox::run_pipeline(
        &app.plan,
        app.output,
        std::slice::from_ref(&sb_events),
        65_536,
    )
    .into_iter()
    .filter(|e| e.end <= sb_range.end)
    .collect();
    let sb_time = t0.elapsed();

    println!(
        "query: {} ({} operators, {} pipeline breakers)",
        app.name,
        app.plan.len(),
        app.plan.pipeline_breakers()
    );
    println!("events: {n}");
    println!();
    let meps = |nn: usize, d: std::time::Duration| nn as f64 / d.as_secs_f64() / 1e6;
    println!(
        "TiLT      : {:>8.2?}  ({:>6.2} M events/s, {} output events)",
        tilt_time,
        meps(n, tilt_time),
        tilt_out.len()
    );
    println!(
        "Trill     : {:>8.2?}  ({:>6.2} M events/s, {} output events)",
        trill_time,
        meps(n, trill_time),
        trill_out.len()
    );
    println!(
        "StreamBox : {:>8.2?}  ({:>6.2} M events/s on a {sb_n}-event slice; O(n^2) join)",
        sb_time,
        meps(sb_n, sb_time)
    );

    assert!(streams_close(&tilt_out, &trill_out, 1e-6), "TiLT and Trill disagree!");
    let tilt_slice: Vec<_> =
        tilt_out.iter().filter(|e| e.end <= sb_range.end - 20).cloned().collect();
    let sb_slice: Vec<_> = sb_out.iter().filter(|e| e.end <= sb_range.end - 20).cloned().collect();
    assert!(streams_close(&tilt_slice, &sb_slice, 1e-6), "TiLT and StreamBox disagree!");
    println!("\nall three engines produced equivalent output streams ✓");
    Ok(())
}
