//! Pan–Tompkins QRS detection on a synthetic ECG — the healthcare workload
//! of Table 2, run end to end through the TiLT compiler.
//!
//! ```sh
//! cargo run --release --example pan_tompkins
//! ```
//!
//! Prints the detected heartbeats and the implied heart rate, then shows
//! what fusion did to the nine-operator query.

use tilt_core::Compiler;
use tilt_data::{SnapshotBuf, Time, TimeRange};
use tilt_workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::pantom();
    println!("{}: {}", app.name, app.description);
    println!("operators (Table 2): {}", app.operators);
    println!("pipeline breakers: {}", app.plan.pipeline_breakers());

    // 20 seconds of synthetic ECG at 250 Hz (tick = 4 ms, beat every 200
    // ticks ⇒ 75 bpm).
    let n = 5_000usize;
    let events = (app.dataset)(n, 42);
    let range = TimeRange::new(Time::ZERO, Time::new(n as i64));
    let input = SnapshotBuf::from_events(&events, range);

    let query = tilt_query::lower(&app.plan, app.output)?;
    let compiled = Compiler::new().compile(&query)?;
    println!(
        "compiled: {} operators -> {} kernels; lookback {} ticks",
        app.plan.len(),
        compiled.num_kernels(),
        compiled.boundary().max_input_lookback(compiled.query()),
    );

    let output = compiled.run(&[&input], range);
    let detections = output.to_events();

    // Group detections into beats (gaps between detection bursts).
    let mut beats: Vec<i64> = Vec::new();
    let mut last_end = i64::MIN;
    for d in &detections {
        if d.start.ticks() > last_end + 20 {
            beats.push(d.start.ticks());
        }
        last_end = d.end.ticks();
    }
    println!("\ndetected {} beats in {} ticks:", beats.len(), n);
    for (i, b) in beats.iter().enumerate().take(10) {
        println!("  beat {:>2} at tick {b}", i + 1);
    }
    if beats.len() > 1 {
        let avg_interval = (beats[beats.len() - 1] - beats[0]) as f64 / (beats.len() - 1) as f64;
        // tick = 4 ms at 250 Hz.
        let bpm = 60_000.0 / (avg_interval * 4.0);
        println!("estimated heart rate: {bpm:.0} bpm (generator ground truth: 75 bpm)");
    }
    Ok(())
}
