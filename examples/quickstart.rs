//! Quickstart: write an event-centric query, compile it with TiLT, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The query is the paper's running example (Fig. 2): detect upward trends
//! in a stock price by comparing a short and a long moving average.

use std::sync::Arc;

use tilt_core::ir::{print_query, DataType, Expr};
use tilt_core::Compiler;
use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the query against the event-centric frontend (§2).
    let mut plan = LogicalPlan::new();
    let stock = plan.source("stock", DataType::Float);
    let avg10 = plan.window(stock, 10, 1, Agg::Mean);
    let avg20 = plan.window(stock, 20, 1, Agg::Mean);
    let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
    let uptrend = plan.where_(diff, elem().gt(Expr::c(0.0)));
    println!("pipeline breakers in the plan: {}", plan.pipeline_breakers());

    // 2. Lower to TiLT IR (Fig. 3a) and look at it.
    let query = tilt_query::lower(&plan, uptrend)?;
    println!("\n--- TiLT IR (before optimization) ---\n{}", print_query(&query));

    // 3. Compile: fusion collapses all six temporal expressions into one
    //    kernel, across the three pipeline breakers (Fig. 3c).
    let compiled = Compiler::new().compile(&query)?;
    println!("--- after fusion: {} kernel(s) ---", compiled.num_kernels());
    println!("{}", print_query(compiled.query()));
    println!(
        "boundary: each partition re-reads {} ticks of input history (Fig. 3b)",
        compiled.boundary().max_input_lookback(compiled.query())
    );

    // 4. Run over a little stream: prices fall, then rally.
    let prices: Vec<f64> =
        (1..=30).map(|t| if t <= 15 { 100.0 - t as f64 } else { 70.0 + 2.0 * t as f64 }).collect();
    let events: Vec<Event<Value>> = prices
        .iter()
        .enumerate()
        .map(|(i, p)| Event::point(Time::new(i as i64 + 1), Value::Float(*p)))
        .collect();
    let range = TimeRange::new(Time::ZERO, Time::new(30));
    let input = SnapshotBuf::from_events(&events, range);
    let output = compiled.run(&[&input], range);

    println!("--- detected uptrend intervals ---");
    for e in output.to_events() {
        println!("  {:?}: short-long average gap {:.2}", e.interval(), e.payload.as_f64().unwrap());
    }

    // 5. Serve it: the same compiled query behind the runtime's control
    //    plane, one session per stock symbol, out-of-order tolerant. A
    //    `StreamService` keeps running after this — attach more queries,
    //    subscribe sinks, detach tenants — but here we just feed two keys
    //    and drain.
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 2,
        allowed_lateness: 4,
        ..RuntimeConfig::default()
    });
    let uptrend_q = builder.register(Arc::new(compiled));
    let service = builder.start()?;
    for (symbol, drift) in [(1u64, 1.0f64), (2u64, -1.0f64)] {
        service.ingest(prices.iter().enumerate().map(|(i, p)| {
            KeyedEvent::new(
                symbol,
                0,
                Event::point(Time::new(i as i64 + 1), Value::Float(p + drift * i as f64)),
            )
        }));
    }
    let out = service.finish_at(Time::new(30));
    println!("\n--- served per-symbol through StreamService ---");
    for (symbol, events) in &out.per_query[uptrend_q.index()] {
        println!("  symbol {symbol}: {} uptrend interval(s)", events.len());
    }
    println!("service stats: {}", out.stats);
    Ok(())
}
