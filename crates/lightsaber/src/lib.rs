//! `spe-lightsaber` — a LightSaber-style window-aggregation engine
//! (baseline \[47\]).
//!
//! LightSaber is a compiler-based SPE specialized for window aggregation:
//! streams are cut into stride-sized *panes*, pane partials are computed in
//! parallel, and windows are assembled by combining consecutive panes
//! (generalized aggregation graphs). Its vocabulary is restricted — simple
//! per-event filters/projections feeding one windowed aggregate, optionally
//! grouped by key — and it has **no temporal join**, which is why the paper
//! can only compare it on Select/Where/WSum/YSB.
//!
//! Payloads are plain `f64`s (NaN = φ): the specialization that makes the
//! compiled baselines fast is part of what the paper credits them for.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tilt_data::{Event, Time, TimeRange};

/// Aggregates LightSaber can compute (mergeable pane partials only; no
/// user-defined templates — the restriction §3 calls out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsAgg {
    /// Sum of payloads.
    Sum,
    /// Event count.
    Count,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A mergeable pane partial.
#[derive(Clone, Copy, Debug)]
struct Partial {
    sum: f64,
    count: i64,
    min: f64,
    max: f64,
}

impl Partial {
    const EMPTY: Partial =
        Partial { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY };

    #[inline]
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    #[inline]
    fn merge(&mut self, other: &Partial) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn result(&self, agg: LsAgg) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(match agg {
            LsAgg::Sum => self.sum,
            LsAgg::Count => self.count as f64,
            LsAgg::Mean => self.sum / self.count as f64,
            LsAgg::Min => self.min,
            LsAgg::Max => self.max,
        })
    }
}

/// A window aggregation query in LightSaber's restricted vocabulary.
#[derive(Clone, Copy, Debug)]
pub struct WindowQuery {
    /// Window length in ticks.
    pub size: i64,
    /// Stride (pane length) in ticks; must divide `size`.
    pub stride: i64,
    /// The aggregate.
    pub agg: LsAgg,
}

/// Runs pane-parallel window aggregation over point events.
///
/// Stage 1 computes pane partials in parallel over event chunks; stage 2
/// combines `size / stride` consecutive panes per window in parallel over
/// pane chunks.
///
/// # Panics
///
/// Panics unless `stride` divides `size`.
pub fn run_window(
    events: &[Event<f64>],
    query: WindowQuery,
    range: TimeRange,
    threads: usize,
) -> Vec<Event<f64>> {
    assert!(query.size % query.stride == 0, "stride must divide size (pane model)");
    let stride = query.stride;
    let n_panes = ((range.end - range.start) + stride - 1) / stride;
    if n_panes <= 0 {
        return Vec::new();
    }
    let pane_of = |t: Time| -> Option<usize> {
        if t <= range.start || t > range.end {
            return None;
        }
        Some(((t - range.start - 1) / stride) as usize)
    };

    // Stage 1: parallel pane partials.
    let threads = threads.max(1);
    let chunk = events.len().div_ceil(threads).max(1);
    let partials = Mutex::new(vec![Partial::EMPTY; n_panes as usize]);
    crossbeam::thread::scope(|s| {
        let (partials, pane_of) = (&partials, &pane_of);
        for worker_chunk in events.chunks(chunk) {
            s.spawn(move |_| {
                let mut local: HashMap<usize, Partial> = HashMap::new();
                for e in worker_chunk {
                    if let Some(p) = pane_of(e.end) {
                        local.entry(p).or_insert(Partial::EMPTY).add(e.payload);
                    }
                }
                let mut global = partials.lock().expect("pane lock");
                for (p, partial) in local {
                    global[p].merge(&partial);
                }
            });
        }
    })
    .expect("pane worker panicked");
    let partials = partials.into_inner().expect("workers joined");

    // Stage 2: combine consecutive panes per window, in parallel.
    let panes_per_window = (query.size / query.stride) as usize;
    let out = Mutex::new(vec![None::<f64>; n_panes as usize]);
    let next = AtomicUsize::new(0);
    let combine_chunk = (n_panes as usize).div_ceil(threads).max(1);
    crossbeam::thread::scope(|s| {
        let (out, next, partials) = (&out, &next, &partials);
        for _ in 0..threads {
            s.spawn(move |_| loop {
                let base = next.fetch_add(combine_chunk, Ordering::Relaxed);
                if base >= n_panes as usize {
                    break;
                }
                let end = (base + combine_chunk).min(n_panes as usize);
                let mut local: Vec<(usize, Option<f64>)> = Vec::with_capacity(end - base);
                for w in base..end {
                    let mut acc = Partial::EMPTY;
                    let lo = w.saturating_sub(panes_per_window - 1);
                    for partial in &partials[lo..=w] {
                        acc.merge(partial);
                    }
                    local.push((w, acc.result(query.agg)));
                }
                let mut guard = out.lock().expect("combine lock");
                for (w, v) in local {
                    guard[w] = v;
                }
            });
        }
    })
    .expect("combine worker panicked");

    out.into_inner()
        .expect("workers joined")
        .into_iter()
        .enumerate()
        .filter_map(|(w, v)| {
            let end = range.start + (w as i64 + 1) * stride;
            v.map(|v| Event::new(end - stride, end.min(range.end), v))
        })
        .collect()
}

/// Grouped tumbling-window count (the YSB shape): parallel pane partials
/// keyed by an integer key, merged into per-window key tables.
pub fn run_grouped_count(
    keyed: &[(Time, i64)],
    window: i64,
    range: TimeRange,
    threads: usize,
) -> Vec<HashMap<i64, i64>> {
    let n_windows = ((range.end - range.start) + window - 1) / window;
    if n_windows <= 0 {
        return Vec::new();
    }
    let threads = threads.max(1);
    let chunk = keyed.len().div_ceil(threads).max(1);
    let tables: Mutex<Vec<HashMap<i64, i64>>> =
        Mutex::new(vec![HashMap::new(); n_windows as usize]);
    crossbeam::thread::scope(|s| {
        let tables = &tables;
        for worker_chunk in keyed.chunks(chunk) {
            s.spawn(move |_| {
                let mut local: Vec<HashMap<i64, i64>> = vec![HashMap::new(); n_windows as usize];
                for (t, key) in worker_chunk {
                    if *t <= range.start || *t > range.end {
                        continue;
                    }
                    let w = ((*t - range.start - 1) / window) as usize;
                    *local[w].entry(*key).or_insert(0) += 1;
                }
                let mut global = tables.lock().expect("table lock");
                for (w, table) in local.into_iter().enumerate() {
                    for (k, c) in table {
                        *global[w].entry(k).or_insert(0) += c;
                    }
                }
            });
        }
    })
    .expect("grouped worker panicked");
    tables.into_inner().expect("workers joined")
}

/// Parallel per-event map (LightSaber's fused pre-processing stage).
pub fn run_select(
    events: &[Event<f64>],
    f: impl Fn(f64) -> f64 + Sync,
    threads: usize,
) -> Vec<Event<f64>> {
    parallel_map(events, threads, |e| Some(Event::new(e.start, e.end, f(e.payload))))
}

/// Parallel per-event filter.
pub fn run_where(
    events: &[Event<f64>],
    pred: impl Fn(f64) -> bool + Sync,
    threads: usize,
) -> Vec<Event<f64>> {
    parallel_map(events, threads, |e| if pred(e.payload) { Some(*e) } else { None })
}

fn parallel_map(
    events: &[Event<f64>],
    threads: usize,
    f: impl Fn(&Event<f64>) -> Option<Event<f64>> + Sync,
) -> Vec<Event<f64>> {
    let threads = threads.max(1);
    let chunk = events.len().div_ceil(threads).max(1);
    let pieces: Mutex<Vec<(usize, Vec<Event<f64>>)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|s| {
        let (f, pieces) = (&f, &pieces);
        for (i, worker_chunk) in events.chunks(chunk).enumerate() {
            s.spawn(move |_| {
                let mapped: Vec<Event<f64>> = worker_chunk.iter().filter_map(f).collect();
                pieces.lock().expect("map lock").push((i, mapped));
            });
        }
    })
    .expect("map worker panicked");
    let mut pieces = pieces.into_inner().expect("workers joined");
    pieces.sort_by_key(|(i, _)| *i);
    pieces.into_iter().flat_map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(points: &[(i64, f64)]) -> Vec<Event<f64>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), v)).collect()
    }

    #[test]
    fn tumbling_sum_matches_hand_computation() {
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0), (6, 6.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(6));
        let q = WindowQuery { size: 3, stride: 3, agg: LsAgg::Sum };
        let out = run_window(&events, q, range, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, 6.0);
        assert_eq!(out[1].payload, 15.0);
    }

    #[test]
    fn sliding_mean_combines_panes() {
        let events = pts(&[(1, 2.0), (2, 4.0), (3, 6.0), (4, 8.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(4));
        let q = WindowQuery { size: 2, stride: 1, agg: LsAgg::Mean };
        let out = run_window(&events, q, range, 3);
        let vals: Vec<f64> = out.iter().map(|e| e.payload).collect();
        assert_eq!(vals, vec![2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn min_max_partials() {
        let events = pts(&[(1, 5.0), (2, 1.0), (3, 9.0), (4, 3.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(4));
        let out =
            run_window(&events, WindowQuery { size: 2, stride: 2, agg: LsAgg::Max }, range, 2);
        assert_eq!(out.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![5.0, 9.0]);
        let out =
            run_window(&events, WindowQuery { size: 2, stride: 2, agg: LsAgg::Min }, range, 2);
        assert_eq!(out.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![1.0, 3.0]);
    }

    #[test]
    fn grouped_count_tables() {
        let keyed: Vec<(Time, i64)> =
            vec![(Time::new(1), 7), (Time::new(2), 7), (Time::new(3), 8), (Time::new(12), 7)];
        let range = TimeRange::new(Time::new(0), Time::new(20));
        let tables = run_grouped_count(&keyed, 10, range, 2);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0][&7], 2);
        assert_eq!(tables[0][&8], 1);
        assert_eq!(tables[1][&7], 1);
    }

    #[test]
    fn select_and_where_parallel() {
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let doubled = run_select(&events, |x| x * 2.0, 2);
        assert_eq!(doubled[2].payload, 6.0);
        let kept = run_where(&events, |x| x > 1.5, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisible_stride_rejected() {
        let range = TimeRange::new(Time::new(0), Time::new(10));
        let _ = run_window(&[], WindowQuery { size: 5, stride: 2, agg: LsAgg::Sum }, range, 1);
    }
}
