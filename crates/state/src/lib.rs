//! Durable state layer: the on-disk format shared by checkpoint/restore,
//! cold spill, and live key migration.
//!
//! Everything the runtime persists — whole-service checkpoints, per-key
//! spill bundles, migration payloads — goes through this one crate, so
//! there is exactly one serialization of a session to get right. The
//! format is deliberately boring:
//!
//! * **Framed records.** A snapshot file is a header (magic + version)
//!   followed by a sequence of records `[len u32][kind u8][payload][crc32]`
//!   and a terminating end record that carries the record count. Torn and
//!   truncated files fail with [`StateError::Truncated`]; bit flips fail
//!   with [`StateError::Checksum`]; nothing panics on hostile bytes.
//! * **Fixed-width little-endian primitives** with the same tagged
//!   [`Value`] encoding the wire protocol uses (tags 0–5, depth-capped),
//!   so a fuzzer finding against one codec reproduces against the other.
//! * **Validated structure.** Span lists must advance strictly, events
//!   must not end before they start, counts are checked against the bytes
//!   actually present before any allocation.
//!
//! The crate knows nothing about shards or services: it moves bytes and
//! [`tilt_data`] values. The runtime layers meaning on top (see
//! `tilt_runtime`'s durability module and `crates/state/README.md` for
//! the record-level schema).

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tilt_data::{Event, SnapshotBuf, Time, Value};

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"TILTSNP\x01";

/// Current format version; readers reject anything else.
pub const FORMAT_VERSION: u16 = 1;

/// Depth cap for nested [`Value::Tuple`]s, mirroring the wire protocol.
pub const MAX_VALUE_DEPTH: usize = 16;

/// Record kind terminating a snapshot file; its payload is the count of
/// preceding records, so a file that merely *looks* complete (ends on a
/// record boundary) but lost a tail still fails closed.
pub const KIND_END: u8 = 0xFF;

/// Typed failure of any durability operation. Decoding hostile bytes can
/// produce every variant except `Io`; nothing in this crate panics on
/// malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// An underlying filesystem operation failed.
    Io {
        /// The OS error class.
        kind: std::io::ErrorKind,
        /// What the crate was doing when it failed.
        context: &'static str,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u16),
    /// The input ended before a declared length was satisfied (torn or
    /// truncated file, or a count pointing past the end).
    Truncated,
    /// A record's checksum did not match its bytes (bit rot / bit flip).
    Checksum {
        /// Zero-based index of the damaged record.
        record: u32,
    },
    /// An unknown tag where a known one was required.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An event interval ended before it started, or a span list failed
    /// to advance strictly.
    BadInterval,
    /// A count field implies more elements than the remaining bytes can
    /// possibly hold.
    BadCount,
    /// A nested value exceeded [`MAX_VALUE_DEPTH`].
    TooDeep,
    /// Bytes remained after the end record (or after a complete payload).
    TrailingBytes,
    /// The end record's count disagrees with the records actually read.
    BadRecordCount {
        /// Count the end record declared.
        expected: u32,
        /// Records actually present.
        actual: u32,
    },
    /// The bytes decoded but their meaning is inconsistent (wrong section
    /// count, roster mismatch, ...). The payload says what.
    Corrupt(&'static str),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io { kind, context } => write!(f, "io error ({kind:?}) while {context}"),
            StateError::BadMagic => write!(f, "not a tilt snapshot (bad magic)"),
            StateError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {FORMAT_VERSION})")
            }
            StateError::Truncated => write!(f, "snapshot truncated (torn write?)"),
            StateError::Checksum { record } => write!(f, "checksum mismatch in record {record}"),
            StateError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            StateError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            StateError::BadInterval => write!(f, "non-advancing interval or span"),
            StateError::BadCount => write!(f, "count exceeds remaining bytes"),
            StateError::TooDeep => write!(f, "value nesting exceeds depth cap"),
            StateError::TrailingBytes => write!(f, "trailing bytes after payload"),
            StateError::BadRecordCount { expected, actual } => {
                write!(f, "end record declares {expected} records but file holds {actual}")
            }
            StateError::Corrupt(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

impl StateError {
    fn io(context: &'static str) -> impl FnOnce(std::io::Error) -> StateError {
        move |e| StateError::Io { kind: e.kind(), context }
    }

    /// The error an armed failpoint injects: indistinguishable in shape
    /// from a real I/O failure, so recovery paths cannot special-case it.
    fn injected(context: &'static str) -> StateError {
        StateError::Io { kind: std::io::ErrorKind::Other, context }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven. Hand-rolled because the
// workspace builds offline; the polynomial matches zlib so external tools
// can verify snapshots.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// The CRC-32 (IEEE, as in zlib/PNG) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------------

/// Append-only byte builder for snapshot payloads.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty builder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends `Some`/`None` as a presence byte plus the value.
    pub fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.i64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends `Some`/`None` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends a [`Time`] as its tick count.
    pub fn time(&mut self, t: Time) {
        self.i64(t.ticks());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a tagged [`Value`] (tags 0–5, recursing into tuples).
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(x) => {
                self.u8(3);
                self.f64(*x);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Tuple(items) => {
                self.u8(5);
                self.u32(items.len() as u32);
                for item in items.iter() {
                    self.value(item);
                }
            }
        }
    }

    /// Appends an event as `start, end, payload`.
    pub fn event(&mut self, e: &Event<Value>) {
        self.time(e.start);
        self.time(e.end);
        self.value(&e.payload);
    }

    /// Appends a snapshot buffer as `start, span count, (t_end, value)*`.
    pub fn ssbuf(&mut self, buf: &SnapshotBuf<Value>) {
        self.time(buf.start());
        self.u32(buf.len() as u32);
        for span in buf.spans() {
            self.time(span.t_end);
            self.value(&span.value);
        }
    }
}

/// Bounds-checked reader over a payload slice. Every accessor returns
/// [`StateError`] instead of panicking, and count fields are validated
/// against the bytes actually remaining before any allocation.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader over `buf` positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`StateError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(StateError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, StateError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, StateError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a presence byte plus value written by [`Enc::opt_i64`].
    pub fn opt_i64(&mut self) -> Result<Option<i64>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            t => Err(StateError::BadTag(t)),
        }
    }

    /// Reads a presence byte plus value written by [`Enc::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, StateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(StateError::BadTag(t)),
        }
    }

    /// Reads a [`Time`].
    pub fn time(&mut self) -> Result<Time, StateError> {
        Ok(Time::new(self.i64()?))
    }

    /// Reads a boolean stored as 0/1; any other byte is a bad tag.
    pub fn flag(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(StateError::BadTag(t)),
        }
    }

    /// Reads a count whose elements occupy at least `min_width` bytes
    /// each, rejecting hostile counts that point past the end before any
    /// allocation is sized from them.
    pub fn count(&mut self, min_width: usize) -> Result<usize, StateError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_width.max(1)) > self.remaining() {
            return Err(StateError::BadCount);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StateError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| StateError::BadUtf8)
    }

    /// Reads a length-prefixed raw byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], StateError> {
        let n = self.count(1)?;
        self.take(n)
    }

    /// Reads a tagged [`Value`] with nesting capped at
    /// [`MAX_VALUE_DEPTH`].
    pub fn value(&mut self) -> Result<Value, StateError> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Value, StateError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(StateError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.flag()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            4 => Ok(Value::Str(Arc::from(self.str()?.as_str()))),
            5 => {
                let n = self.count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value_at(depth + 1)?);
                }
                Ok(Value::Tuple(items.into()))
            }
            t => Err(StateError::BadTag(t)),
        }
    }

    /// Reads an event, rejecting empty or reversed intervals (the
    /// in-memory invariant `end > start` that `Event::new` asserts must
    /// be re-established *before* construction on hostile bytes).
    pub fn event(&mut self) -> Result<Event<Value>, StateError> {
        let start = self.time()?;
        let end = self.time()?;
        if end <= start {
            return Err(StateError::BadInterval);
        }
        let payload = self.value()?;
        Ok(Event::new(start, end, payload))
    }

    /// Reads a snapshot buffer, validating that spans advance strictly
    /// (so reconstruction cannot panic on hostile bytes).
    pub fn ssbuf(&mut self) -> Result<SnapshotBuf<Value>, StateError> {
        let start = self.time()?;
        let n = self.count(9)?;
        let mut buf = SnapshotBuf::with_capacity(start, n);
        let mut prev = start;
        for _ in 0..n {
            let t_end = self.time()?;
            if t_end <= prev {
                return Err(StateError::BadInterval);
            }
            let value = self.value()?;
            buf.push_raw(t_end, value);
            prev = t_end;
        }
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// Snapshot files: header + checksummed records + end marker
// ---------------------------------------------------------------------------

/// Streaming writer of a snapshot file. Records are appended with
/// [`SnapshotWriter::record`]; [`SnapshotWriter::finish`] writes the end
/// record, flushes, and syncs, so a crash mid-write always leaves a file
/// that readers reject as truncated rather than silently short.
///
/// Writes are **crash-safe against the destination**: all bytes go to a
/// `<path>.part` staging file, and only a successful [`SnapshotWriter::finish`]
/// — end record, flush, fsync — atomically renames it over `path` and
/// fsyncs the parent directory. A crash (or injected fault) at any point
/// before the rename leaves the previous `path` contents untouched; an
/// abandoned writer removes its staging file on drop.
///
/// Failpoints: `state.snapshot.write_record` (error / torn-write-after-K
/// policies tear the staged bytes mid-record), `state.snapshot.fsync`,
/// `state.snapshot.rename`.
pub struct SnapshotWriter {
    out: Option<BufWriter<File>>,
    staging: PathBuf,
    dest: PathBuf,
    records: u32,
    bytes: u64,
    committed: bool,
}

/// The staging path a [`SnapshotWriter`] writes before renaming over
/// `path` (exposed so sweepers like [`Lineage::prune`] can recognize and
/// clear abandoned parts).
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".part");
    path.with_file_name(name)
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
fn sync_dir(dir: &Path) -> Result<(), StateError> {
    let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
    File::open(dir).and_then(|d| d.sync_all()).map_err(StateError::io("syncing snapshot directory"))
}

impl SnapshotWriter {
    /// Opens a staged writer for `path` (the destination is not touched
    /// until [`SnapshotWriter::finish`] renames the staging file over it)
    /// and writes the header.
    pub fn create(path: &Path) -> Result<Self, StateError> {
        let staging = staging_path(path);
        let file = File::create(&staging).map_err(StateError::io("creating snapshot file"))?;
        let mut w = SnapshotWriter {
            out: Some(BufWriter::new(file)),
            staging,
            dest: path.to_path_buf(),
            records: 0,
            bytes: 0,
            committed: false,
        };
        w.raw(&MAGIC)?;
        w.raw(&FORMAT_VERSION.to_le_bytes())?;
        w.raw(&0u16.to_le_bytes())?; // reserved
        Ok(w)
    }

    fn raw(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let out = self.out.as_mut().expect("writer not finished");
        out.write_all(bytes).map_err(StateError::io("writing snapshot"))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Appends one record of `kind` with `payload`.
    pub fn record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StateError> {
        // Assemble the whole frame first so the torn-write failpoint can
        // persist an exact byte prefix of it.
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.push(kind);
        frame.extend_from_slice(payload);
        // One-shot CRC over kind || payload without concatenating: feed the
        // payload through with the kind byte's CRC as the running state.
        let crc = crc32_continue(crc32(&[kind]), payload);
        frame.extend_from_slice(&crc.to_le_bytes());
        match tilt_fault::evaluate("state.snapshot.write_record") {
            tilt_fault::Action::Proceed => {}
            tilt_fault::Action::Panic => {
                panic!("failpoint state.snapshot.write_record: injected panic")
            }
            tilt_fault::Action::Fail => {
                return Err(StateError::injected("writing snapshot record"));
            }
            tilt_fault::Action::Torn(k) => {
                let k = (k as usize).min(frame.len());
                self.raw(&frame[..k])?;
                if let Some(out) = self.out.as_mut() {
                    let _ = out.flush(); // land the torn prefix like a crash would
                }
                return Err(StateError::injected("writing snapshot record (torn)"));
            }
        }
        self.raw(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Writes the end record, flushes, syncs, and atomically publishes
    /// the staging file over the destination path (rename + parent-dir
    /// fsync). Returns the total bytes written (for
    /// `tilt_state_bytes_written` accounting).
    pub fn finish(mut self) -> Result<u64, StateError> {
        let count = self.records;
        let mut payload = Enc::new();
        payload.u32(count);
        self.record(KIND_END, &payload.into_bytes())?;
        let mut out = self.out.take().expect("finish called once");
        out.flush().map_err(StateError::io("flushing snapshot"))?;
        tilt_fault::fail_point!(
            "state.snapshot.fsync",
            return Err(StateError::injected("syncing snapshot"))
        );
        out.get_ref().sync_all().map_err(StateError::io("syncing snapshot"))?;
        drop(out);
        tilt_fault::fail_point!(
            "state.snapshot.rename",
            return Err(StateError::injected("publishing snapshot"))
        );
        std::fs::rename(&self.staging, &self.dest)
            .map_err(StateError::io("publishing snapshot"))?;
        self.committed = true;
        if let Some(parent) = self.dest.parent() {
            sync_dir(parent)?;
        }
        Ok(self.bytes)
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        // An abandoned or failed write never reached the rename: clear
        // the staging file so it cannot be mistaken for progress. (A real
        // crash skips this; Lineage::prune sweeps stray parts instead.)
        if !self.committed {
            let _ = std::fs::remove_file(&self.staging);
        }
    }
}

/// Resumes a CRC-32 computation: `crc32_continue(crc32(a), b)` equals
/// `crc32(a ++ b)`.
fn crc32_continue(prev: u32, bytes: &[u8]) -> u32 {
    let mut c = !prev;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A fully validated snapshot file held in memory: magic, version,
/// per-record checksums, and the end record's count have all been
/// checked.
#[derive(Debug)]
pub struct SnapshotFile {
    records: Vec<(u8, Vec<u8>)>,
    bytes: u64,
}

impl SnapshotFile {
    /// Reads and validates `path`.
    pub fn read(path: &Path) -> Result<Self, StateError> {
        let mut file = File::open(path).map_err(StateError::io("opening snapshot file"))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(StateError::io("reading snapshot file"))?;
        Self::parse(&data)
    }

    /// Validates an in-memory snapshot image (the file format, minus the
    /// filesystem).
    pub fn parse(data: &[u8]) -> Result<Self, StateError> {
        if data.len() < MAGIC.len() {
            return Err(StateError::Truncated);
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(StateError::BadMagic);
        }
        let mut dec = Dec::new(&data[MAGIC.len()..]);
        let version = dec.u16()?;
        if version != FORMAT_VERSION {
            return Err(StateError::BadVersion(version));
        }
        if dec.u16()? != 0 {
            return Err(StateError::Corrupt("reserved header bytes must be zero"));
        }
        let mut records: Vec<(u8, Vec<u8>)> = Vec::new();
        loop {
            let len = dec.u32()? as usize;
            if len > dec.remaining() {
                return Err(StateError::Truncated);
            }
            let kind = dec.u8()?;
            let payload = dec.take(len)?;
            let stored = dec.u32()?;
            let computed = crc32_continue(crc32(&[kind]), payload);
            if stored != computed {
                return Err(StateError::Checksum { record: records.len() as u32 });
            }
            if kind == KIND_END {
                let mut end = Dec::new(payload);
                let expected = end.u32()?;
                end.finish()?;
                if expected != records.len() as u32 {
                    return Err(StateError::BadRecordCount {
                        expected,
                        actual: records.len() as u32,
                    });
                }
                dec.finish()?;
                return Ok(SnapshotFile { records, bytes: data.len() as u64 });
            }
            records.push((kind, payload.to_vec()));
        }
    }

    /// The validated records in file order (end record excluded).
    pub fn records(&self) -> &[(u8, Vec<u8>)] {
        &self.records
    }

    /// Total file size in bytes (for `tilt_state_bytes_read` accounting).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Convenience: writes a single-record file (used for spill bundles and
/// migration payloads, which are one logical object per file). Returns
/// bytes written.
pub fn write_bundle(path: &Path, kind: u8, payload: &[u8]) -> Result<u64, StateError> {
    let mut w = SnapshotWriter::create(path)?;
    w.record(kind, payload)?;
    w.finish()
}

/// Convenience: reads a file written by [`write_bundle`], checking the
/// record kind. Returns the payload and total bytes read.
pub fn read_bundle(path: &Path, kind: u8) -> Result<(Vec<u8>, u64), StateError> {
    let file = SnapshotFile::read(path)?;
    let bytes = file.bytes();
    let mut records = file.records.into_iter();
    match (records.next(), records.next()) {
        (Some((k, payload)), None) if k == kind => Ok((payload, bytes)),
        (Some(_), None) => Err(StateError::Corrupt("unexpected bundle record kind")),
        _ => Err(StateError::Corrupt("bundle must hold exactly one record")),
    }
}

// ---------------------------------------------------------------------------
// Snapshot lineage: a retained family of numbered snapshots per directory
// ---------------------------------------------------------------------------

/// Extension of every lineage snapshot file.
pub const SNAPSHOT_EXT: &str = "tiltsnp";

/// A numbered family of snapshot files in one directory
/// (`snap-00000001.tiltsnp`, `snap-00000002.tiltsnp`, ...), the recovery
/// contract behind crash-safe checkpoints: each checkpoint writes the
/// next index via the staged [`SnapshotWriter`], and restore walks the
/// family newest-first until a file validates — so a crash at *any*
/// point (mid-write, pre-fsync, pre-rename) still leaves the newest
/// *published* snapshot restorable.
#[derive(Debug, Clone)]
pub struct Lineage {
    dir: PathBuf,
    retain: usize,
}

impl Lineage {
    /// Opens (creating if needed) a lineage directory that retains the
    /// newest `retain` snapshots on [`Lineage::prune`] (clamped to ≥ 1).
    pub fn open(dir: &Path, retain: usize) -> Result<Lineage, StateError> {
        std::fs::create_dir_all(dir).map_err(StateError::io("creating snapshot directory"))?;
        Ok(Lineage { dir: dir.to_path_buf(), retain: retain.max(1) })
    }

    /// The directory this lineage lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn index_of(path: &Path) -> Option<u64> {
        if path.extension()?.to_str()? != SNAPSHOT_EXT {
            return None;
        }
        let stem = path.file_stem()?.to_str()?;
        stem.strip_prefix("snap-")?.parse().ok()
    }

    /// Every snapshot in the family, sorted oldest to newest. Staging
    /// (`*.part`) and foreign files are ignored.
    pub fn paths(&self) -> Vec<PathBuf> {
        let mut found: Vec<(u64, PathBuf)> = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter_map(|p| Self::index_of(&p).map(|i| (i, p)))
                .collect(),
            Err(_) => Vec::new(),
        };
        found.sort();
        found.into_iter().map(|(_, p)| p).collect()
    }

    /// The path the next checkpoint should write: one past the newest
    /// existing index.
    pub fn next_path(&self) -> PathBuf {
        let next =
            self.paths().last().and_then(|p| Self::index_of(p)).map_or(1, |i| i.saturating_add(1));
        self.dir.join(format!("snap-{next:08}.{SNAPSHOT_EXT}"))
    }

    /// The newest member of the family that fully validates (magic,
    /// version, every checksum, end-record count). A torn, truncated, or
    /// bit-rotted newer file is skipped, not fatal — that is the
    /// fallback restore leans on after a crash mid-checkpoint.
    pub fn newest_valid(&self) -> Option<(PathBuf, SnapshotFile)> {
        self.paths()
            .into_iter()
            .rev()
            .find_map(|p| SnapshotFile::read(&p).ok().map(|f| (p.clone(), f)))
    }

    /// Deletes all but the newest `retain` snapshots, plus any abandoned
    /// `*.part` staging files. Returns how many files were removed.
    pub fn prune(&self) -> usize {
        let mut removed = 0;
        let paths = self.paths();
        if paths.len() > self.retain {
            for p in &paths[..paths.len() - self.retain] {
                if std::fs::remove_file(p).is_ok() {
                    removed += 1;
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for p in entries.filter_map(|e| e.ok().map(|e| e.path())) {
                if p.extension().is_some_and(|x| x == "part") && std::fs::remove_file(&p).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_data::TimeRange;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_continue(crc32(b"1234"), b"56789"), crc32(b"123456789"));
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-7),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::NEG_INFINITY),
            Value::Str(Arc::from("héllo")),
            Value::Tuple(vec![Value::Int(1), Value::Tuple(vec![Value::Null].into())].into()),
        ]
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u16(65535);
        enc.u32(123456);
        enc.u64(u64::MAX);
        enc.i64(-42);
        enc.f64(-0.5);
        enc.opt_i64(None);
        enc.opt_i64(Some(9));
        enc.opt_u64(Some(11));
        enc.str("abc");
        enc.bytes(&[1, 2, 3]);
        for v in sample_values() {
            enc.value(&v);
        }
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 65535);
        assert_eq!(dec.u32().unwrap(), 123456);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.i64().unwrap(), -42);
        assert_eq!(dec.f64().unwrap(), -0.5);
        assert_eq!(dec.opt_i64().unwrap(), None);
        assert_eq!(dec.opt_i64().unwrap(), Some(9));
        assert_eq!(dec.opt_u64().unwrap(), Some(11));
        assert_eq!(dec.str().unwrap(), "abc");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        for v in sample_values() {
            assert_eq!(dec.value().unwrap(), v);
        }
        dec.finish().unwrap();
    }

    #[test]
    fn events_and_ssbufs_round_trip() {
        let events = vec![
            Event::new(Time::new(5), Time::new(10), Value::Float(1.0)),
            Event::new(Time::new(16), Time::new(23), Value::Float(2.0)),
        ];
        let buf = SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(30)));
        let mut enc = Enc::new();
        enc.event(&events[0]);
        enc.ssbuf(&buf);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.event().unwrap(), events[0]);
        let back = dec.ssbuf().unwrap();
        assert_eq!(back, buf);
        dec.finish().unwrap();
    }

    #[test]
    fn empty_and_reversed_intervals_are_rejected() {
        for (start, end) in [(3i64, 3i64), (5, 4)] {
            let mut enc = Enc::new();
            enc.time(Time::new(start));
            enc.time(Time::new(end));
            enc.value(&Value::Null);
            let bytes = enc.into_bytes();
            assert_eq!(Dec::new(&bytes).event(), Err(StateError::BadInterval));
        }
    }

    #[test]
    fn non_advancing_spans_rejected() {
        let mut enc = Enc::new();
        enc.time(Time::new(0));
        enc.u32(2);
        enc.time(Time::new(5));
        enc.value(&Value::Int(1));
        enc.time(Time::new(5)); // does not advance
        enc.value(&Value::Int(2));
        let bytes = enc.into_bytes();
        assert_eq!(Dec::new(&bytes).ssbuf(), Err(StateError::BadInterval));
    }

    #[test]
    fn hostile_counts_and_depth_rejected() {
        // A count far beyond the remaining bytes must fail before
        // allocating.
        let mut enc = Enc::new();
        enc.u32(u32::MAX);
        let bytes = enc.into_bytes();
        assert_eq!(Dec::new(&bytes).str(), Err(StateError::BadCount));

        // Deeply nested tuples are refused at the cap.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_VALUE_DEPTH + 2) {
            bytes.push(5u8); // Tuple
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0u8); // innermost Null
        assert_eq!(Dec::new(&bytes).value(), Err(StateError::TooDeep));
    }

    #[test]
    fn every_truncation_of_a_file_errors_cleanly() {
        let dir = std::env::temp_dir().join("tilt-state-test-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tilt");
        let mut w = SnapshotWriter::create(&path).unwrap();
        let mut payload = Enc::new();
        payload.u64(0xDEAD_BEEF);
        payload.str("section");
        w.record(1, &payload.into_bytes()).unwrap();
        w.record(2, b"tail").unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();

        // The intact file parses.
        let file = SnapshotFile::parse(&full).unwrap();
        assert_eq!(file.records().len(), 2);
        assert_eq!(file.records()[1], (2u8, b"tail".to_vec()));
        assert_eq!(file.bytes(), full.len() as u64);

        // Every strict prefix is rejected without panicking.
        for cut in 0..full.len() {
            let err = SnapshotFile::parse(&full[..cut]).expect_err("prefix must fail");
            assert!(
                matches!(err, StateError::Truncated | StateError::Checksum { .. }),
                "cut {cut}: unexpected {err:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let dir = std::env::temp_dir().join("tilt-state-test-flip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tilt");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.record(1, b"payload-bytes-here").unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Flip one bit in every byte position past the header; all must be
        // caught (magic/version corruption has its own variants).
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x10;
            assert!(SnapshotFile::parse(&bad).is_err(), "flip at {i} accepted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trailing_bytes_and_wrong_versions_rejected() {
        let dir = std::env::temp_dir().join("tilt-state-test-tail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tilt");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.record(1, b"x").unwrap();
        w.finish().unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.push(0);
        assert!(matches!(
            SnapshotFile::parse(&full),
            Err(StateError::Truncated | StateError::TrailingBytes)
        ));

        let mut wrong = std::fs::read(&path).unwrap();
        wrong[8] = 99; // version field
        assert!(matches!(SnapshotFile::parse(&wrong), Err(StateError::BadVersion(99))));
        let mut not_magic = std::fs::read(&path).unwrap();
        not_magic[0] = b'X';
        assert!(matches!(SnapshotFile::parse(&not_magic), Err(StateError::BadMagic)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bundle_round_trip_and_kind_check() {
        let dir = std::env::temp_dir().join("tilt-state-test-bundle");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.tilt");
        let written = write_bundle(&path, 7, b"key-state").unwrap();
        let (payload, read) = read_bundle(&path, 7).unwrap();
        assert_eq!(payload, b"key-state");
        assert_eq!(written, read);
        assert_eq!(
            read_bundle(&path, 8),
            Err(StateError::Corrupt("unexpected bundle record kind"))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_write_publishes_only_on_finish() {
        let dir = std::env::temp_dir().join("tilt-state-test-stage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tiltsnp");

        // Mid-write: destination untouched, bytes live in the .part file.
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.record(1, b"half").unwrap();
        assert!(!path.exists(), "destination must not exist before finish");
        assert!(staging_path(&path).exists());
        drop(w); // abandoned writer clears its staging file
        assert!(!staging_path(&path).exists());
        assert!(!path.exists());

        // Finished: destination exists, staging is gone, file validates.
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.record(1, b"whole").unwrap();
        w.finish().unwrap();
        assert!(path.exists());
        assert!(!staging_path(&path).exists());
        assert_eq!(SnapshotFile::read(&path).unwrap().records()[0], (1u8, b"whole".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The satellite fix: overwriting a checkpoint path must never
    /// destroy the previous good snapshot, even when the writer dies
    /// mid-file (injected error or torn write) or at fsync/rename time.
    #[test]
    fn killed_writer_preserves_previous_snapshot() {
        let _guard = tilt_fault::Scenario::setup();
        let dir = std::env::temp_dir().join("tilt-state-test-preserve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tiltsnp");

        let mut w = SnapshotWriter::create(&path).unwrap();
        w.record(1, b"generation-one").unwrap();
        w.finish().unwrap();

        let kills: [(&str, tilt_fault::Policy); 4] = [
            ("state.snapshot.write_record", tilt_fault::Policy::ErrorOnce),
            ("state.snapshot.write_record", tilt_fault::Policy::TornAfter(3)),
            ("state.snapshot.fsync", tilt_fault::Policy::ErrorOnce),
            ("state.snapshot.rename", tilt_fault::Policy::ErrorOnce),
        ];
        for (site, policy) in kills {
            tilt_fault::arm(site, policy);
            let attempt = (|| {
                let mut w = SnapshotWriter::create(&path)?;
                w.record(1, b"generation-two")?;
                w.finish()
            })();
            assert!(attempt.is_err(), "{site} fault must fail the rewrite");
            tilt_fault::disarm(site);
            let survived = SnapshotFile::read(&path).expect("previous snapshot intact");
            assert_eq!(survived.records()[0], (1u8, b"generation-one".to_vec()), "{site}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lineage_numbers_validates_and_prunes() {
        let dir = std::env::temp_dir().join("tilt-state-test-lineage");
        std::fs::remove_dir_all(&dir).ok();
        let lineage = Lineage::open(&dir, 2).unwrap();
        assert!(lineage.newest_valid().is_none());

        for gen in 1u8..=3 {
            let path = lineage.next_path();
            assert_eq!(
                path.file_name().unwrap().to_str().unwrap(),
                format!("snap-{gen:08}.tiltsnp")
            );
            let mut w = SnapshotWriter::create(&path).unwrap();
            w.record(1, &[gen]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(lineage.paths().len(), 3);
        let (newest, file) = lineage.newest_valid().unwrap();
        assert!(newest.ends_with("snap-00000003.tiltsnp"));
        assert_eq!(file.records()[0].1, vec![3]);

        // Torn newest (simulated crash that somehow published a short
        // file): fallback picks the next-newest valid member.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() - 5]).unwrap();
        let (fallback, file) = lineage.newest_valid().unwrap();
        assert!(fallback.ends_with("snap-00000002.tiltsnp"));
        assert_eq!(file.records()[0].1, vec![2]);

        // Prune keeps the newest two and sweeps stray staging files.
        std::fs::write(dir.join("snap-00000009.tiltsnp.part"), b"junk").unwrap();
        assert_eq!(lineage.prune(), 2);
        let left = lineage.paths();
        assert_eq!(left.len(), 2);
        assert!(left[0].ends_with("snap-00000002.tiltsnp"));
        assert!(lineage.next_path().ends_with("snap-00000004.tiltsnp"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
