//! Criterion micro-benchmarks for the building blocks: snapshot buffers,
//! compiled kernels, incremental reduction state, fusion compile time, and
//! the Fig. 10 ablation pair. Each group is one table/figure ingredient;
//! the full-size sweeps live in the `src/bin` harness binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::Compiler;
use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
use tilt_workloads::ops::{self, PrimitiveOp};
use tilt_workloads::{all_apps, gen};

const N: usize = 100_000;

fn input_buf(n: usize) -> (SnapshotBuf<Value>, TimeRange) {
    let events = gen::uniform_floats(n, 1);
    let range = TimeRange::new(Time::ZERO, Time::new(n as i64).align_up(10));
    (SnapshotBuf::from_events(&events, range), range)
}

fn bench_ssbuf(c: &mut Criterion) {
    let events = gen::uniform_floats(N, 1);
    let range = TimeRange::new(Time::ZERO, Time::new(N as i64));
    let mut g = c.benchmark_group("ssbuf");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("from_events", |b| b.iter(|| SnapshotBuf::from_events(&events, range)));
    let buf = SnapshotBuf::from_events(&events, range);
    g.bench_function("to_events", |b| b.iter(|| buf.to_events()));
    g.finish();
}

fn bench_primitive_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(N as u64));
    for op in [PrimitiveOp::Select, PrimitiveOp::Where, PrimitiveOp::WSum] {
        let (plan, out) = ops::plan(op);
        let q = tilt_query::lower(&plan, out).expect("lowers");
        let cq = Compiler::new().compile(&q).expect("compiles");
        let (buf, range) = input_buf(N);
        g.bench_function(BenchmarkId::new("tilt", op.name()), |b| {
            b.iter(|| cq.run(&[&buf], range).len())
        });
    }
    g.finish();
}

fn bench_reduce_state(c: &mut Criterion) {
    // Sliding sum vs min/max deque vs stddev over the same window.
    let mut g = c.benchmark_group("reduce");
    g.throughput(Throughput::Elements(N as u64));
    for (name, op) in [("sum", ReduceOp::Sum), ("max", ReduceOp::Max), ("stddev", ReduceOp::StdDev)]
    {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, 32));
        let q = b.finish(out).expect("builds");
        let cq = Compiler::new().compile(&q).expect("compiles");
        let (buf, range) = input_buf(N);
        g.bench_function(name, |bch| bch.iter(|| cq.run(&[&buf], range).len()));
    }
    g.finish();
}

fn bench_fusion_ablation(c: &mut Criterion) {
    // Fig. 10 in miniature: trend query fused vs unfused, single thread.
    let app = &all_apps()[0]; // Trading
    let q = tilt_query::lower(&app.plan, app.output).expect("lowers");
    let fused = Compiler::new().compile(&q).expect("compiles");
    let unfused = Compiler::unoptimized().compile(&q).expect("compiles");
    let events = gen::stock_walk(N, 1);
    let range = TimeRange::new(Time::ZERO, Time::new(N as i64));
    let buf = SnapshotBuf::from_events(&events, range);
    let mut g = c.benchmark_group("fusion");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("trend_fused", |b| b.iter(|| fused.run(&[&buf], range).len()));
    g.bench_function("trend_unfused", |b| b.iter(|| unfused.run(&[&buf], range).len()));
    g.finish();
}

fn bench_compile_time(c: &mut Criterion) {
    // Compilation latency for the most complex app plans.
    let mut g = c.benchmark_group("compile");
    for app in all_apps() {
        let q = tilt_query::lower(&app.plan, app.output).expect("lowers");
        g.bench_function(app.name, |b| {
            b.iter(|| Compiler::new().compile(&q).expect("compiles").num_kernels())
        });
    }
    g.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let app = &all_apps()[0];
    let q = tilt_query::lower(&app.plan, app.output).expect("lowers");
    let cq = Compiler::new().compile(&q).expect("compiles");
    let events = gen::stock_walk(N * 4, 1);
    let range = TimeRange::new(Time::ZERO, Time::new((N * 4) as i64));
    let buf = SnapshotBuf::from_events(&events, range);
    let mut g = c.benchmark_group("parallel");
    g.throughput(Throughput::Elements((N * 4) as u64));
    for threads in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| cq.run_parallel(&[&buf], range, threads, 20_000).len())
        });
    }
    g.finish();
}

fn bench_trill_baseline(c: &mut Criterion) {
    let (plan, out) = ops::plan(PrimitiveOp::WSum);
    let events = gen::uniform_floats(N, 1);
    let mut g = c.benchmark_group("trill");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("wsum", |b| {
        b.iter(|| spe_trill::run_single(&plan, out, &events, 65_536).len())
    });
    let _ = Event::point(Time::new(1), Value::Float(0.0)); // keep types exercised
    g.finish();
}

fn tuned() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_ssbuf, bench_primitive_kernels, bench_reduce_state,
              bench_fusion_ablation, bench_compile_time, bench_parallel_scaling,
              bench_trill_baseline
}
criterion_main!(benches);
