//! Keyed-runtime shard scaling: YSB through `tilt-runtime` at increasing
//! shard counts, in-order and with bounded out-of-order arrival.
//!
//! The runtime's shards share nothing but the read-only compiled query, so
//! throughput should scale with shard count until ingestion (one producer
//! thread routing events) or the core count becomes the bottleneck. On a
//! single-core container the table degenerates to ~1x — the scaling claim
//! needs real parallel hardware.
//!
//! ```sh
//! cargo run --release --bin runtime_shards -- --events 2000000
//! ```

use tilt_bench::json::Json;
use tilt_bench::{best_throughput, fmt_meps, fmt_ratio, print_table, write_json_report, RunCfg};
use tilt_workloads::ysb;

fn main() {
    let cfg = RunCfg::from_args(2_000_000);
    let campaigns = 1_000;
    let rate = 10_000; // events per "second"
    let window = ysb::window_ticks(rate);
    let displacement = 512usize;

    let events = ysb::generate(cfg.events, campaigns, 1);
    let shuffled = ysb::shuffle_bounded(&events, displacement, 2);
    let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;

    let shard_counts: [usize; 4] = [1, 2, 4, 8];

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut late_inorder = 0u64;
    let mut late_ooo = 0u64;
    let mut base_inorder = 0.0f64;
    let mut base_ooo = 0.0f64;
    for &shards in &shard_counts {
        let t_inorder = best_throughput(cfg.events, cfg.runs, || {
            let (views, stats) = ysb::run_tilt_service(&events, shards, window, 0);
            assert_eq!(views, expected, "in-order run must count every view");
            late_inorder += stats.late_dropped;
            views as usize
        });
        let t_ooo = best_throughput(cfg.events, cfg.runs, || {
            let (views, stats) =
                ysb::run_tilt_service(&shuffled, shards, window, 2 * displacement as i64 + 2);
            assert_eq!(views, expected, "bounded lateness must absorb the shuffle");
            late_ooo += stats.late_dropped;
            views as usize
        });
        if shards == 1 {
            base_inorder = t_inorder;
            base_ooo = t_ooo;
        }
        rows.push(vec![
            shards.to_string(),
            fmt_meps(t_inorder),
            fmt_ratio(t_inorder / base_inorder),
            fmt_meps(t_ooo),
            fmt_ratio(t_ooo / base_ooo),
        ]);
        json_rows.push(Json::obj([
            ("shards", shards.into()),
            ("inorder_meps", t_inorder.into()),
            ("ooo_meps", t_ooo.into()),
        ]));
    }

    print_table(
        "Keyed runtime — YSB throughput vs shard count (million events/sec)",
        &format!(
            "{} events, {campaigns} campaigns, window {window} ticks, \
             displacement {displacement} when out-of-order; {} hardware threads",
            cfg.events,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ),
        &["shards", "in-order", "speedup", "ooo", "speedup"],
        &rows,
    );

    // Machine-readable results + the machine-independent invariants the CI
    // guardrail re-checks (throughput numbers are informational only).
    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "runtime_shards".into()),
            ("events", cfg.events.into()),
            ("campaigns", campaigns.into()),
            ("window", window.into()),
            ("displacement", displacement.into()),
            ("rows", Json::Arr(json_rows)),
            (
                "invariants",
                Json::obj([
                    ("expected_views", expected.into()),
                    ("views_match_expected", true.into()),
                    ("late_dropped_inorder", late_inorder.into()),
                    ("late_dropped_ooo", late_ooo.into()),
                ]),
            ),
        ]),
    );
}
