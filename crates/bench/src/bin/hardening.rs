//! Runtime hardening under hostile traffic: steady-state memory and
//! throughput with **Zipf-skewed keys** (idle-session eviction), a
//! **pinned watermark** (reorder-buffer backstop, both policies), a
//! **poisoned key** (panic quarantine), and **query churn** (live
//! attach/detach under steady load).
//!
//! Five sections, each exercising one hardening mechanism end to end:
//!
//! 1. *Eviction*: a Zipf(1.2) keyed stream over many keys with
//!    `key_ttl` set — the hot set stays resident while the long tail is
//!    retired; a final revival sweep touches every key once, so
//!    `evictions == revivals` exactly.
//! 2. *Backstop*: an enormous allowed lateness pins the watermark, so
//!    reorder buffers are the only place events can live; the per-shard
//!    cap holds under both `DropNewest` (bounded, counted loss) and
//!    `ForceDrain` (bounded, lossless for in-order input).
//! 3. *Quarantine*: one key's kernel panics mid-stream; every other key's
//!    output is byte-identical to an unpoisoned replay.
//! 4. *Churn*: tenants attach to and detach from the running service under
//!    steady Zipf load — attach frontiers are monotone and clear the
//!    watermark, detaches reclaim sessions, and the surviving query's
//!    coalesced output is identical to a churn-free run.
//! 5. *Observability*: Zipf traffic with bounded arrival disorder runs
//!    with the full metrics layer on — event accounting conserves at
//!    quiescence, the ingest-lag / watermark-lag / advance-time
//!    histograms come out genuinely distributional (multiple occupied
//!    buckets), and the registry ships in both exposition formats (the
//!    full snapshot is embedded in the `--json` report; the Prometheus
//!    text lands in a `.prom` artifact beside it).
//!
//! ```sh
//! cargo run --release --bin hardening -- --events 2000000 --json out.json
//! ```
//!
//! The `--json` report carries machine-independent invariants that the CI
//! `guardrail` binary re-checks; throughput numbers are informational.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tilt_bench::json::Json;
use tilt_bench::{fmt_meps, meps, print_table, time_it, write_json_report, RunCfg};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{
    BackstopPolicy, KeyedEvent, PerKeyOutput, QueryHandle, QuerySettings, RuntimeConfig,
    RuntimeStats, StreamService,
};
use tilt_workloads::gen;
use tilt_workloads::gen::{poisonable_sum, silence_poison_panics};

fn sliding_sum(window: i64) -> Arc<CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

/// A single-query service plus its handle: the bench sections all run one
/// query at a time, so keep the old `Runtime`-shaped surface locally.
struct Single {
    svc: StreamService,
    q: QueryHandle,
}

struct SingleOutput {
    per_key: PerKeyOutput,
    stats: RuntimeStats,
}

impl Single {
    fn start(cq: Arc<CompiledQuery>, config: RuntimeConfig) -> Single {
        let mut builder = StreamService::builder(config);
        let q = builder.register(cq);
        Single { svc: builder.start().expect("single registration"), q }
    }

    fn start_with_sink(
        cq: Arc<CompiledQuery>,
        config: RuntimeConfig,
        sink: tilt_runtime::OutputSink,
    ) -> Single {
        let mut builder = StreamService::builder(config);
        let q = builder.register_with(cq, QuerySettings::with_sink(sink));
        Single { svc: builder.start().expect("single registration"), q }
    }

    fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.svc.ingest(events);
    }

    fn stats(&self) -> RuntimeStats {
        self.svc.stats()
    }

    fn finish_at(self, end: Time) -> SingleOutput {
        let mut out = self.svc.finish_at(end);
        SingleOutput { per_key: out.per_query.swap_remove(self.q.index()), stats: out.stats }
    }
}

fn wait_for(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

/// Section 1: Zipf-skewed traffic with idle eviction.
fn eviction_section(cfg: &RunCfg, shards: usize) -> (Vec<Vec<String>>, Json) {
    let num_keys = (cfg.events / 100).clamp(1_000, 50_000);
    let ttl = 4_096i64;
    let window = 16i64;
    let stream = gen::zipf_keyed_floats(cfg.events, num_keys, 1.2, 42);
    let stream_end = Time::new(cfg.events as i64);

    let emitted = Arc::new(AtomicU64::new(0));
    let sink_count = Arc::clone(&emitted);
    let runtime = Single::start_with_sink(
        sliding_sum(window),
        RuntimeConfig {
            shards,
            allowed_lateness: 0,
            emit_interval: 256,
            key_ttl: Some(ttl),
            ..RuntimeConfig::default()
        },
        Arc::new(move |_key, events| {
            sink_count.fetch_add(events.len() as u64, Ordering::Relaxed);
        }),
    );

    // Ingest in chunks, sampling the live-session and buffer gauges: the
    // steady-state memory story is the row series, not one number.
    let mut samples: Vec<RuntimeStats> = Vec::new();
    let chunk = (stream.len() / 8).max(1);
    let (_, ingest_time) = time_it(|| {
        for part in stream.chunks(chunk) {
            runtime.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
            samples.push(runtime.stats());
        }
    });

    // Let the shards drain to the stream head so the idle sweeps have run,
    // then revive every key with one fresh event each. The sweep uses
    // non-decreasing times (no revival can land behind an eviction
    // frontier) and is time-compressed to span at most ttl/2 ticks — a
    // sweep longer than the TTL would let its own early revivals idle out
    // and be re-evicted with no revival to match.
    let settled = wait_for(Duration::from_secs(60), || {
        let s = runtime.stats();
        s.min_watermark >= Time::new(stream_end.ticks() - 8 * 256) && s.evictions > 0
    });
    assert!(settled, "watermark never reached the stream head (or nothing was evicted)");
    let steady = runtime.stats();
    let keys_per_tick = num_keys.div_ceil((ttl / 2) as usize) as i64;
    let sweep_span = num_keys as i64 / keys_per_tick + 1;
    runtime.ingest((0..num_keys as u64).map(|k| {
        KeyedEvent::new(
            k,
            0,
            Event::point(
                Time::new(stream_end.ticks() + ttl + k as i64 / keys_per_tick + 1),
                Value::Float(1.0),
            ),
        )
    }));
    let out = runtime.finish_at(Time::new(stream_end.ticks() + ttl + sweep_span + window));

    assert_eq!(out.stats.late_dropped, 0, "in-order skewed stream must lose nothing");
    assert_eq!(
        out.stats.evictions, out.stats.revivals,
        "the revival sweep must bring every evicted key back"
    );
    assert!(out.stats.evictions > 0, "the tail must idle out under skew");
    assert!(steady.live_keys < steady.keys, "steady state must hold fewer sessions than keys seen");

    let throughput = meps(cfg.events, ingest_time);
    let mut rows = Vec::new();
    for s in &samples {
        rows.push(vec![
            s.events_in.to_string(),
            s.keys.to_string(),
            s.live_keys.to_string(),
            s.evictions.to_string(),
            s.reorder_pending.iter().sum::<usize>().to_string(),
        ]);
    }
    rows.push(vec![
        format!("{} (final)", out.stats.events_in),
        out.stats.keys.to_string(),
        out.stats.live_keys.to_string(),
        out.stats.evictions.to_string(),
        "0".to_string(),
    ]);

    let json = Json::obj([
        ("events", cfg.events.into()),
        ("keys", num_keys.into()),
        ("zipf_exponent", 1.2.into()),
        ("ttl", ttl.into()),
        ("shards", shards.into()),
        ("throughput_meps", throughput.into()),
        ("events_out", emitted.load(Ordering::Relaxed).into()),
        (
            "steady_state",
            Json::obj([
                ("keys_seen", steady.keys.into()),
                ("live_keys", steady.live_keys.into()),
                ("evictions", steady.evictions.into()),
            ]),
        ),
        (
            "final",
            Json::obj([
                ("keys_seen", out.stats.keys.into()),
                ("live_keys", out.stats.live_keys.into()),
                ("evictions", out.stats.evictions.into()),
                ("revivals", out.stats.revivals.into()),
                ("late_dropped", out.stats.late_dropped.into()),
            ]),
        ),
    ]);
    println!(
        "eviction: {} keys, steady-state {} live ({} evicted), {} Mev/s ingest",
        steady.keys,
        steady.live_keys,
        steady.evictions,
        fmt_meps(throughput)
    );
    (rows, json)
}

/// Section 2: watermark pinned by huge lateness; the per-shard cap bounds
/// buffered events under both policies.
fn backstop_section(cfg: &RunCfg) -> Json {
    let n = (cfg.events / 20).clamp(20_000, 200_000);
    let cap = 4_096usize;
    let keys = 32u64;
    let window = 16i64;
    let stream: Vec<KeyedEvent> = (1..=n as i64)
        .map(|t| KeyedEvent::new(t as u64 % keys, 0, Event::point(Time::new(t), Value::Float(1.0))))
        .collect();
    let config = |policy| RuntimeConfig {
        shards: 1,
        allowed_lateness: 1_000_000_000,
        emit_interval: 64,
        max_pending_per_shard: Some(cap),
        backstop: policy,
        ..RuntimeConfig::default()
    };
    let end = Time::new(n as i64 + window);

    // Drop-and-count: strict bound, counted loss.
    // Samples taken only after the ingest queue drains are meaningful: the
    // shard thread may not even have been scheduled while ingest runs.
    let settled_backlog = |runtime: &Single| -> usize {
        let drained = wait_for(Duration::from_secs(60), || {
            let s = runtime.stats();
            s.queue_depths.iter().sum::<usize>() == 0 && s.events_in == n as u64
        });
        assert!(drained, "shard never drained its ingest queue");
        runtime.stats().reorder_pending.iter().sum()
    };

    let runtime = Single::start(sliding_sum(window), config(BackstopPolicy::DropNewest));
    runtime.ingest(stream.iter().cloned());
    let max_pending = settled_backlog(&runtime);
    let drop_out = runtime.finish_at(end);
    assert_eq!(
        drop_out.stats.backstop_dropped,
        (n - cap) as u64,
        "everything past the cap is refused while the watermark is pinned"
    );
    assert_eq!(max_pending, cap, "a pinned watermark holds exactly the cap");

    // Force-drain: same bound, nothing lost on in-order input.
    let runtime = Single::start(sliding_sum(window), config(BackstopPolicy::ForceDrain));
    runtime.ingest(stream.iter().cloned());
    let force_max_pending = settled_backlog(&runtime);
    let force_out = runtime.finish_at(end);
    assert_eq!(force_out.stats.backstop_dropped, 0);
    assert_eq!(force_out.stats.late_dropped, 0, "in-order input loses nothing to force-drain");
    assert!(force_out.stats.backstop_forced > 0, "the cap must have fired");
    assert!(force_max_pending <= cap + 1, "force-drain backlog exceeded the cap");

    // Lossless: force-drained output equals an uncapped baseline, per key.
    let baseline = Single::start(
        sliding_sum(window),
        RuntimeConfig { shards: 1, allowed_lateness: 1_000_000_000, ..RuntimeConfig::default() },
    );
    baseline.ingest(stream.iter().cloned());
    let base_out = baseline.finish_at(end);
    let lossless = (0..keys).all(|k| {
        streams_equivalent(&coalesce(&base_out.per_key[&k]), &coalesce(&force_out.per_key[&k]))
    });
    assert!(lossless, "force-drain diverged from the uncapped baseline");

    println!(
        "backstop: cap {cap}, pinned watermark; drop policy refused {} of {} events \
         (max backlog {max_pending}); force-drain forced {} and lost none",
        drop_out.stats.backstop_dropped, n, force_out.stats.backstop_forced
    );
    Json::obj([
        ("events", n.into()),
        ("cap", cap.into()),
        (
            "drop_newest",
            Json::obj([
                ("backstop_dropped", drop_out.stats.backstop_dropped.into()),
                ("expected_dropped", (n - cap).into()),
                ("max_pending_sampled", max_pending.into()),
            ]),
        ),
        (
            "force_drain",
            Json::obj([
                ("backstop_forced", force_out.stats.backstop_forced.into()),
                ("backstop_dropped", force_out.stats.backstop_dropped.into()),
                ("late_dropped", force_out.stats.late_dropped.into()),
                ("max_pending_sampled", force_max_pending.into()),
                ("lossless_vs_uncapped", lossless.into()),
            ]),
        ),
    ])
}

/// Section 3: one poisoned key panics its kernel; every other key's output
/// is identical to an unpoisoned replay.
fn quarantine_section(cfg: &RunCfg) -> Json {
    let keys = 64u64;
    let ticks = ((cfg.events / keys as usize) / 2).clamp(500, 20_000) as i64;
    let half = ticks / 2;
    let poison_key = 13u64;
    let window = 8i64;
    let cq = poisonable_sum(window);

    // Silence the deliberate panic (and only it): the runtime catches the
    // unwind, but the default hook would still spam stderr.
    silence_poison_panics();

    let runtime = Single::start(
        Arc::clone(&cq),
        RuntimeConfig { shards: 2, emit_interval: 32, ..RuntimeConfig::default() },
    );
    let phase = |lo: i64, hi: i64| {
        let mut events = Vec::new();
        for t in lo..=hi {
            for k in 0..keys {
                let v = if k == poison_key && t == half / 2 { -1.0 } else { (t % 17) as f64 };
                events.push(KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v))));
            }
        }
        events
    };
    runtime.ingest(phase(1, half));
    let caught = wait_for(Duration::from_secs(60), || runtime.stats().keys_quarantined == 1);
    assert!(caught, "the poisoned key was never quarantined");
    runtime.ingest(phase(half + 1, ticks));
    let out = runtime.finish_at(Time::new(ticks + window));

    assert_eq!(out.stats.keys_quarantined, 1, "exactly one key is poisoned");
    // At least every phase-B event for the poisoned key is refused; the
    // quarantine usually fires mid-phase-A, catching some of its tail too.
    assert!(
        out.stats.quarantine_dropped >= (ticks - half) as u64,
        "post-quarantine events for the poisoned key must be refused and counted (got {})",
        out.stats.quarantine_dropped
    );
    // Healthy keys all saw identical inputs: their outputs must match the
    // in-order replay exactly.
    let clean: Vec<Event<Value>> =
        (1..=ticks).map(|t| Event::point(Time::new(t), Value::Float((t % 17) as f64))).collect();
    let mut session = cq.stream_session(Time::ZERO);
    session.push_events(0, &clean);
    let expected = session.flush_to(Time::new(ticks + window)).to_events();
    let healthy_intact = (0..keys)
        .filter(|k| *k != poison_key)
        .all(|k| streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&k])));
    assert!(healthy_intact, "a healthy key's output was corrupted by the poisoned one");

    println!(
        "quarantine: poisoned key {} isolated ({} later events refused); {} healthy keys intact",
        poison_key,
        out.stats.quarantine_dropped,
        keys - 1
    );
    Json::obj([
        ("keys", keys.into()),
        ("ticks", ticks.into()),
        ("keys_quarantined", out.stats.keys_quarantined.into()),
        ("quarantine_dropped", out.stats.quarantine_dropped.into()),
        ("quarantine_dropped_min", (ticks - half).into()),
        ("healthy_keys_intact", healthy_intact.into()),
    ])
}

/// Section 4: live attach/detach churn under steady Zipf load. The
/// surviving query's coalesced output must be identical to a churn-free
/// baseline, attach frontiers must be monotone and clear the watermark,
/// and every detach must reclaim its per-key sessions.
fn churn_section(cfg: &RunCfg) -> Json {
    let n = (cfg.events / 10).clamp(50_000, 400_000);
    let num_keys = 512usize;
    let window = 16i64;
    // Quantize payloads to multiples of 1/64 so the float window sums are
    // exact regardless of emission chunking: the churn run advances on a
    // different cycle cadence than the baseline (attach/detach messages
    // add cycles), and raw f64 sums would differ by ULPs.
    let stream: Vec<(u64, Event<Value>)> = gen::zipf_keyed_floats(n, num_keys, 1.2, 7)
        .into_iter()
        .map(|(k, mut e)| {
            if let Value::Float(f) = e.payload {
                e.payload = Value::Float((f * 64.0).round() / 64.0);
            }
            (k, e)
        })
        .collect();
    let end = Time::new(n as i64 + window);
    let config = RuntimeConfig { shards: 2, emit_interval: 64, ..RuntimeConfig::default() };
    let coalesced_events = |per_key: &PerKeyOutput| -> u64 {
        per_key.values().map(|evs| coalesce(evs).len() as u64).sum()
    };

    // Churn-free baseline: the survivor alone over the whole stream.
    let baseline = Single::start(sliding_sum(window), config);
    baseline.ingest(stream.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
    let base = baseline.finish_at(end);
    assert_eq!(base.stats.late_dropped, 0);
    let base_events = coalesced_events(&base.per_key);

    // Churn run: the same survivor, plus a tenant attaching after every
    // chunk and detaching two chunks later.
    let mut builder = StreamService::builder(config);
    let survivor = builder.register(sliding_sum(window));
    let service = builder.start().expect("register");
    let chunk = (stream.len() / 8).max(1);
    let mut frontiers: Vec<Time> = Vec::new();
    let mut frontiers_above_watermark = true;
    let mut tenants: std::collections::VecDeque<QueryHandle> = std::collections::VecDeque::new();
    let mut attached = 0u64;
    let mut detached = 0u64;
    for part in stream.chunks(chunk) {
        service.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
        let wm_before = service.stats().min_watermark;
        let tenant =
            service.attach(sliding_sum(window), QuerySettings::default()).expect("tenant attaches");
        attached += 1;
        frontiers_above_watermark &= tenant.frontier() >= wm_before;
        frontiers.push(tenant.frontier());
        tenants.push_back(tenant);
        if tenants.len() > 2 {
            let old = tenants.pop_front().expect("tenant queued");
            service.detach(old).expect("tenant detaches");
            detached += 1;
        }
    }
    let frontiers_monotone = frontiers.windows(2).all(|w| w[0] <= w[1]);
    let out = service.finish_at(end);
    let churn_events = coalesced_events(&out.per_query[survivor.index()]);
    let survivor_identical = base.per_key.len() == out.per_query[survivor.index()].len()
        && base.per_key.iter().all(|(k, evs)| {
            streams_equivalent(&coalesce(evs), &coalesce(&out.per_query[survivor.index()][k]))
        });

    assert!(frontiers_monotone, "attach frontiers regressed: {frontiers:?}");
    assert!(frontiers_above_watermark, "an attach frontier fell behind the watermark");
    assert!(survivor_identical, "churn changed the surviving query's output");
    assert_eq!(out.stats.attached, attached);
    assert_eq!(out.stats.detached, detached);
    assert!(out.stats.sessions_reclaimed > 0, "detach must reclaim sessions");
    assert_eq!(out.stats.late_dropped, 0, "in-order churn run must lose nothing");

    println!(
        "churn: {} tenants attached / {} detached under load; {} sessions reclaimed; \
         survivor emitted {} coalesced events (baseline {})",
        attached, detached, out.stats.sessions_reclaimed, churn_events, base_events
    );
    Json::obj([
        ("events", n.into()),
        ("attached", out.stats.attached.into()),
        ("attached_expected", attached.into()),
        ("detached", out.stats.detached.into()),
        ("detached_expected", detached.into()),
        ("queries_live", out.stats.queries_live.into()),
        ("sessions_reclaimed", out.stats.sessions_reclaimed.into()),
        ("frontiers_monotone", frontiers_monotone.into()),
        ("frontiers_above_watermark", frontiers_above_watermark.into()),
        ("survivor_identical", survivor_identical.into()),
        ("survivor_events", churn_events.into()),
        ("survivor_events_baseline", base_events.into()),
        ("late_dropped", out.stats.late_dropped.into()),
        ("baseline_late_dropped", base.stats.late_dropped.into()),
    ])
}

/// Section 5: the observability layer itself. Disorder-bearing Zipf load
/// with the full metrics layer on: conservation must balance exactly at
/// quiescence, the latency/lag histograms must be genuinely
/// distributional (no single-bucket degenerates), and the snapshot must
/// ship in both exposition formats.
fn observability_section(cfg: &RunCfg, shards: usize) -> Json {
    let n = (cfg.events / 10).clamp(50_000, 400_000);
    let num_keys = 1_024usize;
    let window = 16i64;
    let displacement = 128usize;

    // In-order Zipf traffic (one event per tick) scrambled by reversing
    // consecutive blocks: an event arrives up to `displacement - 1` ticks
    // behind the newest start its shard has seen — far inside the
    // lateness bound, so nothing is ever late no matter how shard advance
    // cycles interleave with acceptance, but the per-event ingest lag
    // spreads across many powers of two.
    let mut stream = gen::zipf_keyed_floats(n, num_keys, 1.2, 23);
    for block in stream.chunks_mut(displacement) {
        block.reverse();
    }

    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness: 2 * displacement as i64,
        emit_interval: 64,
        journal_capacity: 128,
        ..RuntimeConfig::default()
    });
    builder.register(sliding_sum(window));
    let service = builder.start().expect("single registration");
    // Geometrically growing bursts (n/128 up to n/4, cycling), each
    // drained before the next: finalization staleness at catch-up and
    // advance-cycle wall time both track the burst size, so the
    // watermark-lag and advance-time distributions spread across several
    // powers of two instead of collapsing into one giant catch-up cycle
    // per shard.
    let bursts: Vec<usize> = (0..6).map(|i| (stream.len() >> (7 - i)).max(1)).collect();
    let (_, ingest_time) = time_it(|| {
        let mut offset = 0;
        let mut i = 0;
        while offset < stream.len() {
            let len = bursts[i % bursts.len()].min(stream.len() - offset);
            let part = &stream[offset..offset + len];
            service.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
            let _ = wait_for(Duration::from_secs(10), || {
                service.stats().queue_depths.iter().sum::<usize>() == 0
            });
            offset += len;
            i += 1;
        }
    });
    let out = service.finish_at(Time::new(n as i64 + window));
    let throughput = meps(n, ingest_time);

    // Conservation: every ingested event must sit in exactly one terminal
    // counter once the service has quiesced.
    let balance = out.stats.conservation_balance();
    assert_eq!(
        balance,
        0,
        "event accounting must conserve: in={} consumed={} late={} backstop={} quarantine={} \
         detach={} pending={:?} queued={:?}",
        out.stats.events_in,
        out.stats.events_consumed,
        out.stats.late_dropped,
        out.stats.backstop_dropped,
        out.stats.quarantine_dropped,
        out.stats.detach_dropped,
        out.stats.reorder_pending,
        out.stats.queue_depths,
    );
    assert_eq!(out.stats.late_dropped, 0, "disorder stays inside the lateness bound");
    assert_eq!(out.stats.reorder_underflow, 0, "the pending gauge never went negative");

    // Histogram non-degeneracy, merged across shards: a lag distribution
    // that lands in one log2 bucket is a sign the instrumentation clamped
    // or never ran.
    let nonzero_buckets = |name: &str| -> usize {
        let mut merged: Vec<u64> = Vec::new();
        for s in out.metrics.samples.iter().filter(|s| s.name == name) {
            if let tilt_obs::SampleValue::Histogram(h) = &s.value {
                if merged.len() < h.buckets.len() {
                    merged.resize(h.buckets.len(), 0);
                }
                for (a, b) in merged.iter_mut().zip(&h.buckets) {
                    *a += b;
                }
            }
        }
        merged.iter().filter(|&&c| c > 0).count()
    };
    let ingest_lag_buckets = nonzero_buckets("tilt_ingest_lag_ticks");
    let watermark_lag_buckets = nonzero_buckets("tilt_watermark_lag_ticks");
    let advance_ns_buckets = nonzero_buckets("tilt_advance_ns");
    assert!(ingest_lag_buckets >= 2, "ingest lag degenerate: {ingest_lag_buckets} buckets");
    assert!(
        watermark_lag_buckets >= 2,
        "watermark lag degenerate: {watermark_lag_buckets} buckets"
    );
    assert!(advance_ns_buckets >= 2, "advance time degenerate: {advance_ns_buckets} buckets");
    assert!(!out.journal.events.is_empty(), "registration must be journaled");

    // Second exposition format: the Prometheus text artifact rides beside
    // the JSON report so CI uploads both.
    if let Some(path) = &cfg.json {
        let prom = path.with_extension("prom");
        if let Some(dir) = prom.parent() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
        std::fs::write(&prom, out.metrics.to_prometheus())
            .unwrap_or_else(|e| panic!("write {}: {e}", prom.display()));
        println!("observability: wrote Prometheus exposition to {}", prom.display());
    }

    println!(
        "observability: balance 0 over {} events; lag histograms occupy {}/{}/{} buckets \
         (ingest/watermark/advance), {} Mev/s ingest",
        out.stats.events_in,
        ingest_lag_buckets,
        watermark_lag_buckets,
        advance_ns_buckets,
        fmt_meps(throughput)
    );
    Json::obj([
        ("events", n.into()),
        ("keys", num_keys.into()),
        ("shards", shards.into()),
        ("displacement", displacement.into()),
        ("throughput_meps", throughput.into()),
        (
            "conservation",
            Json::obj([
                ("balance", balance.into()),
                ("events_in", out.stats.events_in.into()),
                ("events_consumed", out.stats.events_consumed.into()),
                ("late_dropped", out.stats.late_dropped.into()),
                ("backstop_dropped", out.stats.backstop_dropped.into()),
                ("quarantine_dropped", out.stats.quarantine_dropped.into()),
                ("detach_dropped", out.stats.detach_dropped.into()),
                ("reorder_pending", out.stats.reorder_pending.iter().sum::<usize>().into()),
                ("queued", out.stats.queue_depths.iter().sum::<usize>().into()),
                ("reorder_underflow", out.stats.reorder_underflow.into()),
            ]),
        ),
        ("ingest_lag_buckets", ingest_lag_buckets.into()),
        ("watermark_lag_buckets", watermark_lag_buckets.into()),
        ("advance_ns_buckets", advance_ns_buckets.into()),
        ("journal_entries", out.journal.events.len().into()),
        ("metrics", out.metrics.to_json()),
    ])
}

fn main() {
    let cfg = RunCfg::from_args(2_000_000);
    let shards = cfg.threads.clamp(1, 4);

    let (rows, eviction) = eviction_section(&cfg, shards);
    print_table(
        "Hardening — steady-state sessions under Zipf skew (idle eviction)",
        "sampled during ingest; the final row is the post-revival-sweep state",
        &["events_in", "keys_seen", "live_keys", "evictions", "buffered"],
        &rows,
    );
    let backstop = backstop_section(&cfg);
    let quarantine = quarantine_section(&cfg);
    let churn = churn_section(&cfg);
    let observability = observability_section(&cfg, shards);

    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "hardening".into()),
            ("eviction", eviction),
            ("backstop", backstop),
            ("quarantine", quarantine),
            ("churn", churn),
            ("observability", observability),
        ]),
    );
}
