//! Multi-query sharing: N queries over one ad stream through a shared
//! `StreamService` vs N independent single-query services that each
//! re-ingest, re-buffer, and re-watermark the same events.
//!
//! The query set is the multi-tenant shape the registry is built for:
//! YSB (per-campaign 10s view counts), a second tenant registering the
//! *identical* YSB query, and the correlated factor query (peak 10s count
//! per minute) whose pane-count prefix is structurally identical to YSB's.
//! The shared service ingests and reorder-buffers each event once and
//! executes the deduplicated pane kernel once per advance; the independent
//! setup pays all of it N times.
//!
//! ```sh
//! cargo run --release --bin multi_query -- --events 2000000
//! ```

use std::sync::Arc;

use tilt_bench::json::Json;
use tilt_bench::{best_throughput, fmt_meps, fmt_ratio, print_table, write_json_report, RunCfg};
use tilt_core::sharing::QueryGroup;
use tilt_core::Compiler;
use tilt_runtime::{RuntimeConfig, StreamService};
use tilt_workloads::ysb;

fn main() {
    let cfg = RunCfg::from_args(2_000_000);
    let campaigns = 1_000;
    let rate = 10_000; // events per "second"
    let window = ysb::window_ticks(rate);
    let displacement = 512usize;
    let lateness = 2 * displacement as i64 + 2;

    let events = ysb::generate(cfg.events, campaigns, 1);
    let shuffled = ysb::shuffle_bounded(&events, displacement, 2);
    let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;
    let end = ysb::extent(&events, ysb::FACTOR * window).end;

    // The registered set: YSB, a second tenant's identical YSB, the factor
    // query sharing YSB's pane prefix.
    let compile = |plan: (tilt_query::LogicalPlan, tilt_query::NodeId)| {
        let q = tilt_query::lower(&plan.0, plan.1).expect("plan lowers");
        Arc::new(Compiler::new().compile(&q).expect("plan compiles"))
    };
    let queries = [
        compile(ysb::plan(window)),
        compile(ysb::plan(window)),
        compile(ysb::factor_plan(window, ysb::FACTOR)),
    ];

    let runtime_cfg = |shards: usize| RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: window,
        ..RuntimeConfig::default()
    };

    // One probe run for the sharing accounting (identical every run).
    let plan_group = QueryGroup::new(queries.to_vec()).expect("queries share the ad stream");
    println!(
        "query set: {} queries, {} kernel instances, {} distinct after dedup ({} shared)",
        queries.len(),
        plan_group.kernel_instances(),
        plan_group.distinct_kernels(),
        plan_group.shared_kernels(),
    );
    let probe = {
        let mut builder = StreamService::builder(runtime_cfg(2));
        for cq in &queries {
            builder.register(Arc::clone(cq));
        }
        let svc = builder.start().expect("register");
        svc.ingest(ysb::keyed(&shuffled));
        svc.finish_at(end)
    };
    assert_eq!(probe.stats.late_dropped, 0, "lateness bound must absorb the shuffle");
    assert_eq!(
        probe.stats.reorder_buffered,
        events.len() as u64,
        "shared ingestion must buffer each event exactly once for all queries"
    );
    println!(
        "shared run: {} events reorder-buffered once for {} queries; kernels: {} run, \
         {} deduped away ({}% of the unshared schedule)\n",
        probe.stats.reorder_buffered,
        queries.len(),
        probe.stats.kernels_run,
        probe.stats.kernels_saved,
        100 * probe.stats.kernels_saved
            / (probe.stats.kernels_run + probe.stats.kernels_saved).max(1),
    );

    let shard_counts: [usize; 3] = [1, 2, 4];
    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    for &shards in &shard_counts {
        // Shared: one service, one ingestion pass, N outputs.
        let t_shared = best_throughput(cfg.events, cfg.runs, || {
            let mut builder = StreamService::builder(runtime_cfg(shards));
            let ysb_id = builder.register(Arc::clone(&queries[0]));
            for cq in &queries[1..] {
                builder.register(Arc::clone(cq));
            }
            let svc = builder.start().expect("register");
            svc.ingest(ysb::keyed(&shuffled));
            let out = svc.finish_at(end);
            let views = ysb::count_views(out.per_query[ysb_id.index()].values(), end, window);
            assert_eq!(views, expected, "shared YSB must count every view");
            views as usize
        });

        // Independent: N services, each re-ingesting the whole stream.
        let t_indep = best_throughput(cfg.events, cfg.runs, || {
            let mut reorder_total = 0u64;
            for cq in &queries {
                let mut builder = StreamService::builder(runtime_cfg(shards));
                builder.register(Arc::clone(cq));
                let svc = builder.start().expect("register");
                svc.ingest(ysb::keyed(&shuffled));
                let out = svc.finish_at(end);
                assert_eq!(out.stats.late_dropped, 0);
                reorder_total += out.stats.reorder_buffered;
            }
            assert_eq!(
                reorder_total,
                (queries.len() * events.len()) as u64,
                "independent services buffer every event once per query"
            );
            reorder_total as usize
        });

        rows.push(vec![
            shards.to_string(),
            fmt_meps(t_shared),
            fmt_meps(t_indep),
            fmt_ratio(t_shared / t_indep),
        ]);
        json_rows.push(Json::obj([
            ("shards", shards.into()),
            ("shared_meps", t_shared.into()),
            ("independent_meps", t_indep.into()),
        ]));
    }

    print_table(
        &format!("Multi-query — shared StreamService vs {} independent services", queries.len()),
        &format!(
            "{} events, {campaigns} campaigns, window {window} ticks, displacement \
             {displacement}; {} hardware threads",
            cfg.events,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ),
        &["shards", "shared", "independent", "speedup"],
        &rows,
    );

    // Machine-readable results; the kernel-dedup accounting and the
    // buffer-once guarantee are the guardrail invariants (throughput is
    // informational).
    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "multi_query".into()),
            ("events", cfg.events.into()),
            ("queries", queries.len().into()),
            ("window", window.into()),
            ("rows", Json::Arr(json_rows)),
            (
                "invariants",
                Json::obj([
                    ("late_dropped", probe.stats.late_dropped.into()),
                    ("reorder_buffered", probe.stats.reorder_buffered.into()),
                    ("events_ingested", events.len().into()),
                    ("kernels_run", probe.stats.kernels_run.into()),
                    ("kernels_saved", probe.stats.kernels_saved.into()),
                ]),
            ),
        ]),
    );
}
