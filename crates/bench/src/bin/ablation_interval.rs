//! Ablation: sensitivity of TiLT's parallel execution to the partition
//! interval size (§6.2 — "the data streams are partitioned based on the
//! resolved boundary conditions and a *user-defined interval size*").
//!
//! Small intervals mean more scheduling slots but a larger fraction of
//! duplicated lookback work per partition (the shaded regions of Fig. 6);
//! large intervals amortize the lookback but starve the workers. The sweet
//! spot sits where `interval >> lookback` while `#partitions >> #threads`.

use tilt_bench::{best_throughput, fmt_meps, print_table, RunCfg};
use tilt_core::Compiler;
use tilt_data::{SnapshotBuf, Time, TimeRange};
use tilt_workloads::all_apps;

fn main() {
    let cfg = RunCfg::from_args(1_000_000);
    let mut rows = Vec::new();
    for app in all_apps().into_iter().filter(|a| matches!(a.name, "Trading" | "FraudDet")) {
        let events = (app.dataset)(cfg.events, 1);
        let q = tilt_query::lower(&app.plan, app.output).expect("app lowers");
        let cq = Compiler::new().compile(&q).expect("app compiles");
        let lookback = cq.boundary().max_input_lookback(cq.query());
        let hi = events.iter().map(|e| e.end).max().unwrap_or(Time::ZERO);
        let range = TimeRange::new(Time::ZERO, hi.align_up(cq.grid()));
        let buf = SnapshotBuf::from_events(&events, range);
        for interval in [100i64, 1_000, 10_000, 100_000, 1_000_000] {
            let t = best_throughput(events.len(), cfg.runs, || {
                cq.run_parallel(&[&buf], range, cfg.threads, interval).len()
            });
            rows.push(vec![
                app.name.to_string(),
                interval.to_string(),
                format!("{:.1}%", 100.0 * lookback as f64 / interval as f64),
                fmt_meps(t),
            ]);
        }
    }
    print_table(
        "Ablation — partition interval size vs throughput (TiLT, Fig. 6 knob)",
        &format!(
            "{} events, {} threads; overhead = duplicated lookback / interval",
            cfg.events, cfg.threads
        ),
        &["app", "interval", "dup. overhead", "Mev/s"],
        &rows,
    );
}
