//! Fig. 8: multi-core scalability on the Yahoo Streaming Benchmark.
//!
//! Paper: TiLT scales near-linearly to 4–8 threads (then turns
//! memory-bound) peaking at 406 M ev/s (12-core) / 450 M ev/s (32-core);
//! LightSaber ~291–296; Grizzly and Trill scale poorly. Reproduced claim:
//! the *shapes* — TiLT/LightSaber rise with threads, Trill stays flat
//! (partition-limited), Grizzly saturates early on atomic contention.

use tilt_bench::{best_throughput, fmt_meps, print_table, RunCfg};
use tilt_workloads::ysb;

fn main() {
    let cfg = RunCfg::from_args(4_000_000);
    let campaigns = 100;
    let rate = 10_000;
    let window = ysb::window_ticks(rate);
    let events = ysb::generate(cfg.events, campaigns, 1);
    let range = ysb::extent(&events, window);
    let partitions = ysb::partition(&events, campaigns);

    // StreamBox: pipeline parallelism is fixed by the operator count, so it
    // contributes one horizontal line; measure once on a reduced slice.
    let sb_events = ysb::generate(cfg.events / 8, campaigns, 1);
    let sb_parts = ysb::partition(&sb_events, campaigns);
    let sb_range = ysb::extent(&sb_events, window);
    let streambox = best_throughput(sb_events.len(), cfg.runs, || {
        ysb::run_streambox(&sb_parts, 65_536, sb_range, window) as usize
    });

    let mut threads_axis = vec![1usize, 2, 4, 8, 16, 32];
    threads_axis.retain(|t| *t <= cfg.threads);
    if !threads_axis.contains(&cfg.threads) {
        threads_axis.push(cfg.threads);
    }

    let mut rows = Vec::new();
    for &t in &threads_axis {
        let tilt = best_throughput(cfg.events, cfg.runs, || {
            ysb::run_tilt(&partitions, range, t, window) as usize
        });
        let trill = best_throughput(cfg.events, cfg.runs, || {
            ysb::run_trill(&partitions, 65_536, t, range, window) as usize
        });
        let ls = best_throughput(cfg.events, cfg.runs, || {
            ysb::run_lightsaber(&events, range, t, window) as usize
        });
        let gz = best_throughput(cfg.events, cfg.runs, || {
            ysb::run_grizzly(&events, campaigns, range, t, window) as usize
        });
        rows.push(vec![
            t.to_string(),
            fmt_meps(tilt),
            fmt_meps(trill),
            fmt_meps(streambox),
            fmt_meps(ls),
            fmt_meps(gz),
        ]);
    }

    print_table(
        "Fig. 8 — YSB scalability vs worker threads (million events/sec)",
        &format!(
            "{} events, {campaigns} campaigns; StreamBox is pipeline-parallel (flat line, measured once at 1/8 scale)",
            cfg.events
        ),
        &["threads", "TiLT", "Trill", "StreamBox", "LightSaber", "Grizzly"],
        &rows,
    );
}
