//! CI regression guardrail: re-checks the **machine-independent
//! invariants** in the bench binaries' `--json` reports.
//!
//! Raw throughput depends on the runner (the CI container is 1-core, so
//! shard-scaling ratios are meaningless there); what must *never* regress
//! are the correctness-shaped facts the benches establish:
//!
//! * `runtime_shards`: zero late drops, in-order and with bounded
//!   disorder, at every shard count;
//! * `multi_query`: each event reorder-buffered exactly once for all
//!   registered queries, zero late drops, and a kernel-dedup ratio at
//!   least as good as the query set structurally guarantees (≥ 1/3 for
//!   YSB + tenant copy + factor query);
//! * `hardening`: `evictions == revivals` (> 0) with zero late drops
//!   under skew, both backstop policies holding their cap (drop-and-count
//!   exact, force-drain lossless), exactly one quarantined key with
//!   every healthy key's output intact, and — for the control-plane churn
//!   section — monotone attach frontiers that clear the watermark, every
//!   detach reclaiming sessions, and the surviving query's output
//!   unchanged (identical streams, equal coalesced event counts) under
//!   attach/detach churn — plus, for the observability section, exact
//!   event-accounting conservation, non-degenerate (multi-bucket)
//!   lag/latency histograms, and internally consistent histogram
//!   exports (count == Σ buckets, p50 ≤ p99 ≤ max);
//! * `obs_overhead`: the full metrics layer and the kernel profiler each
//!   cost < 5% throughput against their disabled twins (interleaved
//!   best-of ratios ≥ 0.95);
//! * `kernel_hot`: per-tick, batched, and interpreter outputs
//!   byte-identical on every plan; fallback counters exactly zero (and
//!   `fully_typed`) for the fully numeric plans, visibly nonzero for the
//!   `Str` fallback plan; every fully numeric kernel admitted to the
//!   batched tier (and the `Str` plan kept off it); and the
//!   map-once-per-element invariant — Subtract-on-Evict must re-use
//!   cached mapped values, never re-run the fused map, so `map_run_rate`
//!   (map executions / events) stays ≤ 1 up to warmup slack;
//! * `durability`: the state layer never changes an output event —
//!   restore-after-crash, cold spill, and live rebalancing each produce
//!   per-key streams identical to an undisturbed run; the books resume
//!   across a restore (`events_in` continues, lineage counted), every
//!   spill is matched by exactly one revival with nothing left on disk,
//!   the resident key set stays below the keys seen, and every migration
//!   is counted — all with conservation exact;
//! * `server_loopback`: remote subscribers' per-key output identical to
//!   the in-process run (the wire adds no reordering, loss, or
//!   duplication), exact event conservation and zero decode errors over
//!   TCP, and — for the starved section — shard backpressure visibly
//!   propagated to the remote producer (`Busy` replies and
//!   `credit_stalls` both nonzero).
//!
//! ```sh
//! cargo run --release --bin guardrail -- bench-artifacts/
//! cargo run --release --bin guardrail -- a.json b.json
//! ```
//!
//! Exits non-zero (after printing every violation) if any invariant fails,
//! if a file does not parse, or if no report was checked at all. In
//! directory mode every bench in `EXPECTED_BENCHES` must contribute a
//! recognized report — a missing or unreadable expected artifact is a
//! named failing check, not a silent skip.

use std::path::{Path, PathBuf};

use tilt_bench::json::{parse, Json};

/// Every bench whose artifact the CI lane is expected to produce. In
/// directory mode a missing or unparseable expected artifact is a named
/// failing check — a bench that silently stopped emitting its report
/// must fail the lane, not shrink it.
const EXPECTED_BENCHES: [&str; 8] = [
    "runtime_shards",
    "multi_query",
    "hardening",
    "obs_overhead",
    "kernel_hot",
    "server_loopback",
    "durability",
    "chaos",
];

/// One report's check results.
struct Outcome {
    file: PathBuf,
    bench: String,
    violations: Vec<String>,
    checked: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: guardrail <report.json | directory>...");
        std::process::exit(2);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    let mut directory_mode = false;
    for arg in &args {
        let path = Path::new(arg);
        if path.is_dir() {
            directory_mode = true;
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .unwrap_or_else(|e| panic!("read directory {arg}: {e}"))
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        eprintln!("guardrail: no .json reports found under {args:?}");
        std::process::exit(2);
    }

    let mut failed = false;
    let mut total_checks = 0usize;
    let mut seen_benches: Vec<String> = Vec::new();
    for file in files {
        let outcome = check_file(&file);
        total_checks += outcome.checked;
        seen_benches.push(outcome.bench.clone());
        if outcome.violations.is_empty() {
            println!(
                "ok   {} [{}]: {} invariants hold",
                outcome.file.display(),
                outcome.bench,
                outcome.checked
            );
        } else {
            failed = true;
            println!("FAIL {} [{}]:", outcome.file.display(), outcome.bench);
            for v in &outcome.violations {
                println!("     - {v}");
            }
        }
    }
    // Coverage check: when pointed at a directory, every expected bench
    // must have contributed a (parsed, recognized) report. A bench whose
    // artifact went missing or unreadable is a named failure, never a
    // silent skip.
    if directory_mode {
        for expected in EXPECTED_BENCHES {
            let hits = seen_benches.iter().filter(|b| b.as_str() == expected).count();
            if hits == 0 {
                failed = true;
                total_checks += 1;
                println!("FAIL <coverage> [{expected}]:");
                println!("     - expected bench artifact missing from the directory scan");
            }
        }
    }
    if total_checks == 0 {
        eprintln!("guardrail: reports parsed but nothing was checked — unknown bench names?");
        std::process::exit(2);
    }
    if failed {
        std::process::exit(1);
    }
}

fn check_file(file: &Path) -> Outcome {
    let mut outcome = Outcome {
        file: file.to_path_buf(),
        bench: "?".to_string(),
        violations: Vec::new(),
        checked: 0,
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            outcome.violations.push(format!("unreadable: {e}"));
            return outcome;
        }
    };
    let report = match parse(&text) {
        Ok(v) => v,
        Err(e) => {
            outcome.violations.push(format!("invalid JSON: {e}"));
            return outcome;
        }
    };
    let bench = report.get("bench").and_then(Json::as_str).unwrap_or("?").to_string();
    outcome.bench = bench.clone();
    let mut check = Checker { report: &report, outcome: &mut outcome };
    match bench.as_str() {
        "runtime_shards" => {
            check.eq_i64("invariants.late_dropped_inorder", 0);
            check.eq_i64("invariants.late_dropped_ooo", 0);
            check.is_true("invariants.views_match_expected");
        }
        "multi_query" => {
            check.eq_i64("invariants.late_dropped", 0);
            check.fields_equal("invariants.reorder_buffered", "invariants.events_ingested");
            // The YSB + tenant-copy + factor set structurally dedups at
            // least a third of kernel executions; the exact ratio is
            // schedule-independent (saved/run scale together per advance).
            check.ratio_at_least("invariants.kernels_saved", "invariants.kernels_run", 0.5);
        }
        "hardening" => {
            check.fields_equal("eviction.final.evictions", "eviction.final.revivals");
            check.gt_i64("eviction.final.evictions", 0);
            check.eq_i64("eviction.final.late_dropped", 0);
            check.lt_fields("eviction.steady_state.live_keys", "eviction.steady_state.keys_seen");
            check.fields_equal(
                "backstop.drop_newest.backstop_dropped",
                "backstop.drop_newest.expected_dropped",
            );
            check.le_fields("backstop.drop_newest.max_pending_sampled", "backstop.cap");
            check.eq_i64("backstop.force_drain.backstop_dropped", 0);
            check.eq_i64("backstop.force_drain.late_dropped", 0);
            check.gt_i64("backstop.force_drain.backstop_forced", 0);
            check.is_true("backstop.force_drain.lossless_vs_uncapped");
            check.eq_i64("quarantine.keys_quarantined", 1);
            check.le_fields("quarantine.quarantine_dropped_min", "quarantine.quarantine_dropped");
            check.is_true("quarantine.healthy_keys_intact");
            check.fields_equal("churn.attached", "churn.attached_expected");
            check.fields_equal("churn.detached", "churn.detached_expected");
            check.is_true("churn.frontiers_monotone");
            check.is_true("churn.frontiers_above_watermark");
            check.gt_i64("churn.sessions_reclaimed", 0);
            check.is_true("churn.survivor_identical");
            check.fields_equal("churn.survivor_events", "churn.survivor_events_baseline");
            check.eq_i64("churn.late_dropped", 0);
            check.eq_i64("churn.baseline_late_dropped", 0);
            check.eq_i64("observability.conservation.balance", 0);
            check.eq_i64("observability.conservation.reorder_underflow", 0);
            check.eq_i64("observability.conservation.late_dropped", 0);
            // The lag/latency distributions must be genuinely
            // distributional — a single-occupied-bucket histogram means
            // the instrumentation clamped or never ran.
            check.gt_i64("observability.ingest_lag_buckets", 1);
            check.gt_i64("observability.watermark_lag_buckets", 1);
            check.gt_i64("observability.advance_ns_buckets", 1);
            check.histograms_sane("observability.metrics.histograms");
        }
        "server_loopback" => {
            // The wire adds no reordering, loss, or duplication: remote
            // subscribers' streams equal the in-process run exactly, and
            // event accounting conserves over TCP.
            check.is_true("invariants.wire_identical");
            check.fields_equal("invariants.events_in", "invariants.events_sent");
            check.eq_i64("invariants.conservation_balance", 0);
            check.eq_i64("invariants.decode_errors", 0);
            check.gt_i64("invariants.bytes_in", 0);
            check.gt_i64("invariants.bytes_out", 0);
            // Shard backpressure must reach the remote producer: the
            // starved section has to see Busy replies client-side and
            // credit stalls server-side, with conservation still exact.
            check.gt_i64("backpressure.busy_replies", 0);
            check.gt_i64("backpressure.credit_stalls", 0);
            check.eq_i64("backpressure.decode_errors", 0);
            check.eq_i64("backpressure.conservation_balance", 0);
        }
        "durability" => {
            // Wall-clock timings are machine-dependent; what must hold
            // anywhere is the identity story — none of the three durable
            // mechanisms may change a single output event — plus exact
            // accounting across each of them.
            check.is_true("checkpoint.restore_identical");
            check.fields_equal("checkpoint.events_in_resumed", "checkpoint.events_before_crash");
            check.fields_equal("checkpoint.events_in_final", "checkpoint.events_total");
            check.eq_i64("checkpoint.checkpoints", 1);
            check.gt_i64("checkpoint.snapshot_bytes", 0);
            check.eq_i64("checkpoint.conservation_balance", 0);
            // The snapshot round-trips through the state layer: restore
            // reads at least the snapshot's bytes back off disk. (The
            // write side is counted *after* serialization, so the
            // restored books legitimately record it as 0.)
            check.le_fields("checkpoint.snapshot_bytes", "checkpoint.state_bytes_read");
            check.is_true("spill.spill_identical");
            check.gt_i64("spill.final.spills", 0);
            check.fields_equal("spill.final.spills", "spill.final.revivals");
            check.eq_i64("spill.final.spilled_pending", 0);
            check.eq_i64("spill.final.keys_quarantined", 0);
            check.eq_i64("spill.final.late_dropped", 0);
            check.eq_i64("spill.final.conservation_balance", 0);
            // The resident-set bound: the cold store must actually shrink
            // the in-memory key population under skew.
            check.lt_fields("spill.steady_state.live_keys", "spill.steady_state.keys_seen");
            check.is_true("rebalance.rebalance_identical");
            check.gt_i64("rebalance.moved", 0);
            check.fields_equal("rebalance.moved", "rebalance.migrations");
            check.eq_i64("rebalance.late_dropped", 0);
            check.eq_i64("rebalance.conservation_balance", 0);
        }
        "chaos" => {
            // Self-healing under seeded injection must be *exact*, not
            // best-effort: every schedule has to have actually fired
            // (injected > 0 — an unarmed run proves nothing), recovery
            // must reproduce the fault-free output byte-for-byte, and
            // the books must balance through every fault path.
            check.gt_i64("torn_checkpoint.injected", 0);
            check.is_true("torn_checkpoint.recovery_source_is_pre_fault");
            check.is_true("torn_checkpoint.recovered_identical");
            check.eq_i64("torn_checkpoint.conservation_balance", 0);
            check.gt_i64("reconnect.injected", 0);
            check.gt_i64("reconnect.reconnects", 0);
            check.eq_i64("reconnect.resume_gap", 0);
            check.gt_i64("reconnect.resume_replays", 0);
            check.is_true("reconnect.wire_identical");
            check.eq_i64("reconnect.conservation_balance", 0);
            check.gt_i64("spill_faults.injected", 0);
            check.eq_i64("spill_faults.keys_quarantined", 0);
            check.fields_equal("spill_faults.spills", "spill_faults.revivals");
            check.is_true("spill_faults.spill_identical");
            check.eq_i64("spill_faults.conservation_balance", 0);
        }
        "obs_overhead" => {
            // The < 5% observability-overhead acceptance bar. Raw Mev/s
            // are machine-dependent; the ratios transfer because each
            // pair ran interleaved in one process on one machine.
            check.ratio_at_least("runtime.metrics_on_meps", "runtime.metrics_off_meps", 0.95);
            check.ratio_at_least("kernel.profiled_meps", "kernel.unprofiled_meps", 0.95);
        }
        "kernel_hot" => {
            // Throughput is machine-dependent; what must hold anywhere is
            // that all three tiers agree byte-for-byte, the fallback
            // accounting is honest (zero for fully numeric plans, visible
            // with `fully_typed == false` when a plan leans on the
            // dynamic tier), the batch gate admits exactly the numeric
            // kernels, and fused maps run at most once per element.
            for plan in ["pointwise", "window_sum"] {
                check.is_true(&format!("plans.{plan}.outputs_identical"));
                check.is_true(&format!("plans.{plan}.batched_outputs_identical"));
                check.eq_i64(&format!("plans.{plan}.fallback_ops"), 0);
                check.is_true(&format!("plans.{plan}.fully_typed"));
                // Every kernel of a fully numeric plan must clear the
                // batch gate — a partial admit means the gate regressed.
                check.fields_equal(
                    &format!("plans.{plan}.batched_kernels"),
                    &format!("plans.{plan}.kernels"),
                );
            }
            check.is_true("plans.str_fallback.outputs_identical");
            check.is_true("plans.str_fallback.batched_outputs_identical");
            check.gt_i64("plans.str_fallback.fallback_ops", 0);
            check.is_false("plans.str_fallback.fully_typed");
            // String-carrying bodies must stay off the batched tier.
            check.eq_i64("plans.str_fallback.batched_kernels", 0);
            // Map-once-per-element (the Subtract-on-Evict fix): eviction
            // re-uses cached mapped values, so the fused map runs at most
            // once per ingested event. A re-mapping evictor would show
            // rate ≈ 2. Slack covers window warmup edge effects only.
            check.gt_i64("plans.window_sum.map_runs", 0);
            check.le_f64("plans.window_sum.map_run_rate", 1.05);
            check.le_f64("plans.str_fallback.map_run_rate", 1.05);
        }
        other => {
            check
                .outcome
                .violations
                .push(format!("unknown bench name {other:?} (guardrail needs updating?)"));
        }
    }
    outcome
}

/// Dotted-path invariant checks over one report.
struct Checker<'a> {
    report: &'a Json,
    outcome: &'a mut Outcome,
}

impl Checker<'_> {
    fn lookup(&mut self, path: &str) -> Option<Json> {
        let mut cur = self.report;
        for part in path.split('.') {
            match cur.get(part) {
                Some(v) => cur = v,
                None => {
                    self.outcome.violations.push(format!("missing field {path}"));
                    return None;
                }
            }
        }
        Some(cur.clone())
    }

    fn num(&mut self, path: &str) -> Option<f64> {
        let v = self.lookup(path)?;
        match v.as_f64() {
            Some(x) => Some(x),
            None => {
                self.outcome.violations.push(format!("{path} is not a number"));
                None
            }
        }
    }

    fn eq_i64(&mut self, path: &str, expect: i64) {
        self.outcome.checked += 1;
        if let Some(x) = self.num(path) {
            if x != expect as f64 {
                self.outcome.violations.push(format!("{path} = {x}, expected {expect}"));
            }
        }
    }

    fn gt_i64(&mut self, path: &str, floor: i64) {
        self.outcome.checked += 1;
        if let Some(x) = self.num(path) {
            if x <= floor as f64 {
                self.outcome.violations.push(format!("{path} = {x}, expected > {floor}"));
            }
        }
    }

    fn is_true(&mut self, path: &str) {
        self.outcome.checked += 1;
        if let Some(v) = self.lookup(path) {
            if v.as_bool() != Some(true) {
                self.outcome.violations.push(format!("{path} = {v}, expected true"));
            }
        }
    }

    fn is_false(&mut self, path: &str) {
        self.outcome.checked += 1;
        if let Some(v) = self.lookup(path) {
            if v.as_bool() != Some(false) {
                self.outcome.violations.push(format!("{path} = {v}, expected false"));
            }
        }
    }

    fn fields_equal(&mut self, a: &str, b: &str) {
        self.outcome.checked += 1;
        if let (Some(x), Some(y)) = (self.num(a), self.num(b)) {
            if x != y {
                self.outcome.violations.push(format!("{a} = {x} but {b} = {y}"));
            }
        }
    }

    fn le_fields(&mut self, a: &str, b: &str) {
        self.outcome.checked += 1;
        if let (Some(x), Some(y)) = (self.num(a), self.num(b)) {
            if x > y {
                self.outcome.violations.push(format!("{a} = {x} exceeds {b} = {y}"));
            }
        }
    }

    fn lt_fields(&mut self, a: &str, b: &str) {
        self.outcome.checked += 1;
        if let (Some(x), Some(y)) = (self.num(a), self.num(b)) {
            if x >= y {
                self.outcome.violations.push(format!("{a} = {x}, expected < {b} = {y}"));
            }
        }
    }

    fn le_f64(&mut self, path: &str, ceil: f64) {
        self.outcome.checked += 1;
        if let Some(x) = self.num(path) {
            if x > ceil {
                self.outcome.violations.push(format!("{path} = {x}, expected <= {ceil}"));
            }
        }
    }

    fn ratio_at_least(&mut self, num: &str, den: &str, floor: f64) {
        self.outcome.checked += 1;
        if let (Some(x), Some(y)) = (self.num(num), self.num(den)) {
            if y <= 0.0 || x / y < floor {
                self.outcome
                    .violations
                    .push(format!("{num} / {den} = {x}/{y}, expected ratio >= {floor}"));
            }
        }
    }

    /// Internal consistency of every exported histogram under `path` (a
    /// name → histogram object map, as `MetricsSnapshot::to_json` emits):
    /// the sample count must equal the sum of the bucket counts, and the
    /// quantile readout must be ordered (`p50 <= p99 <= max`).
    fn histograms_sane(&mut self, path: &str) {
        let Some(v) = self.lookup(path) else {
            self.outcome.checked += 1;
            return;
        };
        let Json::Obj(map) = v else {
            self.outcome.checked += 1;
            self.outcome.violations.push(format!("{path} is not an object"));
            return;
        };
        for (name, h) in &map {
            self.outcome.checked += 1;
            let field = |k: &str| h.get(k).and_then(Json::as_f64);
            let (Some(count), Some(p50), Some(p99), Some(max)) =
                (field("count"), field("p50"), field("p99"), field("max"))
            else {
                self.outcome.violations.push(format!("{path}.{name} is missing summary fields"));
                continue;
            };
            let bucket_sum: f64 = h
                .get("buckets")
                .and_then(Json::as_arr)
                .map(|buckets| {
                    buckets.iter().filter_map(|pair| pair.as_arr()?.get(1)?.as_f64()).sum()
                })
                .unwrap_or(f64::NAN);
            if bucket_sum != count {
                self.outcome.violations.push(format!(
                    "{path}.{name}: count = {count} but buckets sum to {bucket_sum}"
                ));
            }
            if !(p50 <= p99 && p99 <= max) {
                self.outcome.violations.push(format!(
                    "{path}.{name}: quantiles out of order (p50 {p50}, p99 {p99}, max {max})"
                ));
            }
        }
    }
}
