//! Per-kernel hot-loop throughput: interpreted vs per-tick typed vs
//! batched typed tier.
//!
//! Three plans probe the three-tier execution model:
//!
//! * `pointwise` — a fully fused numeric map/filter scoring chain (pure
//!   per-tick scalar evaluation, where enum interpretation hurts most and
//!   batching amortizes the remaining dispatch);
//! * `window_sum` — the map/filter/window-sum shape: the scoring chain
//!   fused into a strided trailing window sum (4-tick panes, the YSB
//!   shape) plus a dense per-event combine over the aggregate — typed
//!   bytecode, typed window maps, and unboxed accumulators together;
//! * `str_fallback` — a `Str`-driven filter, pinning that fallback
//!   subtrees stay correct *and visible* in the fallback counters (and
//!   are rejected by the batch gate).
//!
//! Tier measurements interleave round by round so shared-runner frequency
//! drift cannot bias the ratios. Throughput is machine-dependent and only
//! reported; the **machine-independent invariants** — all three tiers
//! byte-identical, fallback counters zero for the fully numeric plans,
//! nonzero (with `fully_typed == false`) for the `Str` plan, and window
//! maps executed at most once per accumulated element (`map_run_rate`) —
//! go into the `--json` report and are re-checked by the `guardrail`
//! binary in CI.

use tilt_bench::json::Json;
use tilt_bench::{best_throughput, fmt_meps, fmt_ratio, print_table, write_json_report, RunCfg};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler, ExecTier};
use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};

/// A fused numeric map/filter scoring chain (the normalization/clamping
/// math of the paper's signal-processing applications: ~45 scalar ops per
/// tick after fusion collapses it into one kernel).
fn pointwise_plan() -> Query {
    use tilt_core::ir::BinOp;
    let mut b = Query::builder();
    let x = b.input("x", DataType::Float);
    let scaled = b.temporal(
        "scaled",
        TDom::every_tick(),
        Expr::at(x).mul(Expr::c(1.0001)).add(Expr::c(0.5)),
    );
    let wrapped = b.temporal(
        "wrapped",
        TDom::every_tick(),
        Expr::if_else(
            Expr::at(scaled).gt(Expr::c(1.5)),
            Expr::at(scaled).sub(Expr::c(1.5)),
            Expr::at(scaled),
        ),
    );
    let poly = b.temporal(
        "poly",
        TDom::every_tick(),
        Expr::at(wrapped)
            .mul(Expr::at(wrapped))
            .mul(Expr::c(0.5))
            .add(Expr::at(wrapped).mul(Expr::c(0.25)))
            .add(Expr::c(0.125)),
    );
    let energy =
        b.temporal("energy", TDom::every_tick(), Expr::at(poly).abs().add(Expr::c(1.0)).sqrt());
    let clamped = b.temporal(
        "clamped",
        TDom::every_tick(),
        Expr::at(energy)
            .sub(Expr::c(0.3))
            .mul(Expr::c(2.5))
            .bin(BinOp::Max, Expr::c(-1.0))
            .bin(BinOp::Min, Expr::c(1.0)),
    );
    let cubic = b.temporal(
        "cubic",
        TDom::every_tick(),
        Expr::at(clamped)
            .mul(Expr::at(clamped))
            .mul(Expr::at(clamped))
            .add(Expr::at(clamped).mul(Expr::c(0.5)))
            .sub(Expr::c(0.25)),
    );
    let blend = b.temporal(
        "blend",
        TDom::every_tick(),
        Expr::at(cubic)
            .mul(Expr::c(0.75))
            .add(Expr::at(cubic).mul(Expr::at(cubic)).mul(Expr::c(0.125)))
            .sub(Expr::at(cubic).abs().mul(Expr::c(0.0625)))
            .add(Expr::c(0.001)),
    );
    let out = b.temporal(
        "score",
        TDom::every_tick(),
        Expr::if_else(
            Expr::at(blend).gt(Expr::c(-0.9)).and(Expr::at(blend).lt(Expr::c(0.9))),
            Expr::at(blend).mul(Expr::c(4.0)).add(Expr::at(blend).mul(Expr::at(blend))),
            Expr::null(),
        ),
    );
    b.finish(out).unwrap()
}

/// The full map/filter/window-sum shape: the per-event scoring chain of
/// [`pointwise_plan`] (materialized once — both the window and the combine
/// consume it), a filter fused into a strided trailing window sum (4-tick
/// panes, the YSB shape), and a dense combine enriching every event with
/// the pane aggregate.
fn window_sum_plan() -> Query {
    use tilt_core::ir::BinOp;
    let mut b = Query::builder();
    let x = b.input("x", DataType::Float);
    let scaled = b.temporal(
        "scaled",
        TDom::every_tick(),
        Expr::at(x).mul(Expr::c(1.0001)).add(Expr::c(0.5)),
    );
    let wrapped = b.temporal(
        "wrapped",
        TDom::every_tick(),
        Expr::if_else(
            Expr::at(scaled).gt(Expr::c(1.5)),
            Expr::at(scaled).sub(Expr::c(1.5)),
            Expr::at(scaled),
        ),
    );
    let poly = b.temporal(
        "poly",
        TDom::every_tick(),
        Expr::at(wrapped)
            .mul(Expr::at(wrapped))
            .mul(Expr::c(0.5))
            .add(Expr::at(wrapped).mul(Expr::c(0.25)))
            .add(Expr::c(0.125)),
    );
    let energy =
        b.temporal("energy", TDom::every_tick(), Expr::at(poly).abs().add(Expr::c(1.0)).sqrt());
    let score = b.temporal(
        "score",
        TDom::every_tick(),
        Expr::at(energy)
            .sub(Expr::c(0.3))
            .mul(Expr::c(2.5))
            .bin(BinOp::Max, Expr::c(-1.0))
            .bin(BinOp::Min, Expr::c(1.0))
            .mul(Expr::at(energy))
            .add(Expr::at(energy).mul(Expr::c(0.125))),
    );
    let hot = b.temporal(
        "hot",
        TDom::every_tick(),
        Expr::if_else(
            Expr::at(score).gt(Expr::c(0.2)).and(Expr::at(score).lt(Expr::c(2.5))),
            Expr::at(score),
            Expr::null(),
        ),
    );
    let wsum = b.temporal("wsum", TDom::unbounded(4), Expr::reduce_window(ReduceOp::Sum, hot, 64));
    let out = b.temporal(
        "out",
        TDom::every_tick(),
        Expr::if_else(
            Expr::at(wsum).is_present(),
            Expr::at(wsum)
                .mul(Expr::c(0.25))
                .add(Expr::at(x).mul(Expr::c(2.0)))
                .sub(Expr::c(1.0))
                .mul(Expr::at(wsum).add(Expr::c(64.0)).sqrt())
                .add(Expr::at(x).abs())
                .sub(Expr::at(x).mul(Expr::at(x)).mul(Expr::c(0.0625)))
                .mul(Expr::at(x).mul(Expr::c(0.5)).add(Expr::c(1.0)))
                .add(Expr::at(x).mul(Expr::at(x)).mul(Expr::at(x)).mul(Expr::c(0.03125)))
                .bin(BinOp::Max, Expr::at(x).neg())
                .bin(BinOp::Min, Expr::at(wsum)),
            Expr::null(),
        ),
    );
    b.finish(out).unwrap()
}

/// A `Str`-driven filter: the typed tier must route the comparison through
/// its boxed fallback registers.
fn str_fallback_plan() -> Query {
    let mut b = Query::builder();
    let s = b.input("s", DataType::Str);
    let flagged = b.temporal(
        "flagged",
        TDom::every_tick(),
        Expr::if_else(Expr::at(s).eq(Expr::c("hot")), Expr::c(1.0), Expr::c(0.0)),
    );
    let smoothed = b.temporal(
        "smoothed",
        TDom::every_tick(),
        Expr::reduce_window(ReduceOp::Mean, flagged, 32),
    );
    b.finish(smoothed).unwrap()
}

fn float_events(n: usize) -> Vec<Event<Value>> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (1..=n as i64)
        .map(|t| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (state >> 33) as f64 / (1u64 << 31) as f64;
            Event::point(Time::new(t), Value::Float(x))
        })
        .collect()
}

fn str_events(n: usize) -> Vec<Event<Value>> {
    let words = ["hot", "cold", "warm", "hot"];
    (1..=n as i64)
        .map(|t| Event::point(Time::new(t), Value::str(words[(t % 4) as usize])))
        .collect()
}

struct PlanResult {
    name: &'static str,
    kernels: usize,
    batched_kernels: usize,
    interp_meps: f64,
    compiled_meps: f64,
    batched_meps: f64,
    /// Per-tick typed output == interpreted output, byte for byte.
    outputs_identical: bool,
    /// Batched output == per-tick typed output, byte for byte.
    batched_identical: bool,
    fallback_ops: u64,
    fully_typed: bool,
    /// Fused window-map executions in one pass over `profiled_events`
    /// events, on the batched tier. The map-once-per-element invariant
    /// keeps `map_runs / events` at most ~1 regardless of window size.
    map_runs: u64,
    /// Per-kernel profiles from one *timed* pass on a fresh compile (the
    /// throughput rounds above run untimed, so the bench numbers never
    /// carry clock-read overhead), plus that pass's event count.
    profile: Vec<tilt_core::KernelProfile>,
    profiled_events: usize,
}

fn run_plan(name: &'static str, q: &Query, events: &[Event<Value>], runs: usize) -> PlanResult {
    let batched = Compiler::new().compile(q).expect("plan compiles (batched)");
    let compiled =
        Compiler::new().with_tier(ExecTier::Compiled).compile(q).expect("plan compiles (typed)");
    let interp = Compiler::interpreted().compile(q).expect("plan compiles (interp)");
    let hi = events.last().expect("non-empty dataset").end;
    let range = TimeRange::new(Time::ZERO, (hi + 8).align_up(batched.grid()));
    let input = SnapshotBuf::from_events(events, range);

    let out_b = batched.run(&[&input], range);
    let out_c = compiled.run(&[&input], range);
    let out_i = interp.run(&[&input], range);
    let outputs_identical = out_c == out_i;
    let batched_identical = out_b == out_c;

    // Interleave the tiers round by round so frequency drift on a shared
    // runner cannot systematically favor whichever tier ran later.
    let one =
        |cq: &CompiledQuery| best_throughput(events.len(), 1, || cq.run(&[&input], range).len());
    let mut interp_meps = 0f64;
    let mut compiled_meps = 0f64;
    let mut batched_meps = 0f64;
    for _ in 0..runs.max(1) {
        interp_meps = interp_meps.max(one(&interp));
        compiled_meps = compiled_meps.max(one(&compiled));
        batched_meps = batched_meps.max(one(&batched));
    }

    // One profiled pass on a fresh compile: counters start at zero, so
    // invocations/nanos/fallback_ops/map_runs describe exactly this pass.
    let profiled = Compiler::new().compile(q).expect("plan compiles (profiled)");
    profiled.set_profiling(true);
    profiled.run(&[&input], range);
    let profile = profiled.kernel_profiles();

    PlanResult {
        name,
        kernels: batched.num_kernels(),
        batched_kernels: batched.batched_kernels(),
        interp_meps,
        compiled_meps,
        batched_meps,
        outputs_identical,
        batched_identical,
        fallback_ops: compiled.fallback_ops() + batched.fallback_ops(),
        fully_typed: batched.fully_typed(),
        map_runs: profiled.map_runs(),
        profile,
        profiled_events: events.len(),
    }
}

fn main() {
    let cfg = RunCfg::from_args(400_000);
    let floats = float_events(cfg.events);
    let strs = str_events(cfg.events);

    let results = [
        run_plan("pointwise", &pointwise_plan(), &floats, cfg.runs),
        run_plan("window_sum", &window_sum_plan(), &floats, cfg.runs),
        run_plan("str_fallback", &str_fallback_plan(), &strs, cfg.runs),
    ];

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}/{}", r.batched_kernels, r.kernels),
                fmt_meps(r.interp_meps),
                fmt_meps(r.compiled_meps),
                fmt_meps(r.batched_meps),
                fmt_ratio(r.compiled_meps / r.interp_meps),
                fmt_ratio(r.batched_meps / r.compiled_meps),
                (r.outputs_identical && r.batched_identical).to_string(),
                r.fallback_ops.to_string(),
                r.fully_typed.to_string(),
            ]
        })
        .collect();
    print_table(
        "kernel_hot — interpreter vs per-tick typed vs batched typed (million events/sec)",
        &format!(
            "{} events/plan, single worker; outputs must be byte-identical across all tiers",
            cfg.events
        ),
        &[
            "plan",
            "batched/kernels",
            "interp",
            "per_tick",
            "batched",
            "typed_speedup",
            "batch_speedup",
            "identical",
            "fallback_ops",
            "fully_typed",
        ],
        &rows,
    );

    let plans = Json::Obj(
        results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    Json::obj([
                        ("kernels", r.kernels.into()),
                        ("batched_kernels", r.batched_kernels.into()),
                        ("interp_meps", r.interp_meps.into()),
                        ("compiled_meps", r.compiled_meps.into()),
                        ("batched_meps", r.batched_meps.into()),
                        ("speedup", (r.compiled_meps / r.interp_meps).into()),
                        ("batched_speedup", (r.batched_meps / r.compiled_meps).into()),
                        ("outputs_identical", r.outputs_identical.into()),
                        ("batched_outputs_identical", r.batched_identical.into()),
                        ("fallback_ops", r.fallback_ops.into()),
                        ("fully_typed", r.fully_typed.into()),
                        ("map_runs", r.map_runs.into()),
                        ("map_run_rate", (r.map_runs as f64 / r.profiled_events as f64).into()),
                        (
                            "profile",
                            Json::Arr(
                                r.profile
                                    .iter()
                                    .map(|k| {
                                        let per_ev = (k.invocations * r.profiled_events as u64)
                                            .max(1)
                                            as f64;
                                        Json::obj([
                                            ("kernel", k.name.as_str().into()),
                                            ("compiled", k.compiled.into()),
                                            ("batched", k.batched.into()),
                                            ("fully_typed", k.fully_typed.into()),
                                            ("invocations", k.invocations.into()),
                                            ("nanos", k.nanos.into()),
                                            ("ns_per_op", (k.nanos as f64 / per_ev).into()),
                                            (
                                                "fallback_op_rate",
                                                (k.fallback_ops as f64 / per_ev).into(),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let report = Json::obj([
        ("bench", "kernel_hot".into()),
        ("events", cfg.events.into()),
        ("runs", cfg.runs.into()),
        ("plans", plans),
    ]);
    write_json_report(&cfg, &report);
}
