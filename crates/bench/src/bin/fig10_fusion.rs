//! Fig. 10: effectiveness of operator fusion — the trend-analysis query in
//! four configurations, single-threaded, normalized to un-optimized Trill.
//!
//! Paper: Trill-Opt 1.06× (graph-level fusion barely helps: the pipeline
//! breakers block it), TiLT-UnOpt 2.61× (compiled per-operator kernels beat
//! interpreted operators), TiLT-Opt 8.55× (fusion across the breakers).
//! Reproduced claim: Trill-Opt ≈ Trill-UnOpt, TiLT-UnOpt in between,
//! TiLT-Opt clearly on top.

use tilt_bench::{fmt_meps, fmt_ratio, print_table, RunCfg};
use tilt_core::ir::Expr;
use tilt_core::Compiler;
use tilt_data::{SnapshotBuf, Time, TimeRange};
use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan, NodeId};
use tilt_workloads::gen;

/// The un-optimized query of Fig. 2a: Sum → Select(÷10/÷20) → Join → Where.
fn trend_unopt() -> (LogicalPlan, NodeId) {
    let mut plan = LogicalPlan::new();
    let stock = plan.source("stock", tilt_core::ir::DataType::Float);
    let sum10 = plan.window(stock, 10, 1, Agg::Sum);
    let sum20 = plan.window(stock, 20, 1, Agg::Sum);
    let avg10 = plan.select(sum10, elem().div(Expr::c(10.0)));
    let avg20 = plan.select(sum20, elem().div(Expr::c(20.0)));
    let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
    let up = plan.where_(diff, elem().gt(Expr::c(0.0)));
    (plan, up)
}

/// The graph-level-fused query of Fig. 2b: the Selects folded into the Join
/// (the only fusion an event-centric optimizer can do here).
fn trend_opt() -> (LogicalPlan, NodeId) {
    let mut plan = LogicalPlan::new();
    let stock = plan.source("stock", tilt_core::ir::DataType::Float);
    let sum10 = plan.window(stock, 10, 1, Agg::Sum);
    let sum20 = plan.window(stock, 20, 1, Agg::Sum);
    let diff = plan.join(sum10, sum20, lhs().div(Expr::c(10.0)).sub(rhs().div(Expr::c(20.0))));
    let up = plan.where_(diff, elem().gt(Expr::c(0.0)));
    (plan, up)
}

fn main() {
    let cfg = RunCfg::from_args(500_000);
    let events = gen::stock_walk(cfg.events, 1);
    let range = TimeRange::new(Time::ZERO, Time::new(cfg.events as i64));
    let buf = SnapshotBuf::from_events(&events, range);

    let measure_trill = |plan: &LogicalPlan, out: NodeId| {
        tilt_bench::best_throughput(events.len(), cfg.runs, || {
            spe_trill::run_single(plan, out, &events, 65_536).len()
        })
    };
    let measure_tilt = |plan: &LogicalPlan, out: NodeId, compiler: Compiler| {
        let q = tilt_query::lower(plan, out).expect("trend lowers");
        let cq = compiler.compile(&q).expect("trend compiles");
        tilt_bench::best_throughput(events.len(), cfg.runs, || cq.run(&[&buf], range).len())
    };

    let (unopt_plan, unopt_out) = trend_unopt();
    let (opt_plan, opt_out) = trend_opt();

    let trill_unopt = measure_trill(&unopt_plan, unopt_out);
    let trill_opt = measure_trill(&opt_plan, opt_out);
    let tilt_unopt = measure_tilt(&unopt_plan, unopt_out, Compiler::unoptimized());
    let tilt_opt = measure_tilt(&unopt_plan, unopt_out, Compiler::new());

    // Sanity: report kernel counts so the ablation is visibly structural.
    let q = tilt_query::lower(&unopt_plan, unopt_out).expect("trend lowers");
    let k_unopt = Compiler::unoptimized().compile(&q).expect("compiles").num_kernels();
    let k_opt = Compiler::new().compile(&q).expect("compiles").num_kernels();

    let base = trill_unopt.max(1e-9);
    let rows = vec![
        vec!["Trill UnOpt".into(), fmt_meps(trill_unopt), fmt_ratio(1.0), "1.00x".into()],
        vec!["Trill Opt".into(), fmt_meps(trill_opt), fmt_ratio(trill_opt / base), "1.06x".into()],
        vec![
            format!("TiLT UnOpt ({k_unopt} kernels)"),
            fmt_meps(tilt_unopt),
            fmt_ratio(tilt_unopt / base),
            "2.61x".into(),
        ],
        vec![
            format!("TiLT Opt ({k_opt} kernel)"),
            fmt_meps(tilt_opt),
            fmt_ratio(tilt_opt / base),
            "8.55x".into(),
        ],
    ];
    print_table(
        "Fig. 10 — operator-fusion ablation on the trend query (single thread)",
        &format!("{} events; speedups normalized to un-optimized Trill", cfg.events),
        &["configuration", "Mev/s", "speedup", "paper"],
        &rows,
    );
}
