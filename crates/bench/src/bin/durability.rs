//! The durable state layer end to end: **checkpoint/restore** (kill a
//! service mid-stream, rebuild it from the snapshot, finish the stream),
//! **cold spill** (TTL-evicted keys park on disk and revive
//! transparently), and **live rebalancing** (keys migrate off a loaded
//! shard under traffic). Timings are informational; what the guardrail
//! re-checks is the identity story: none of the three mechanisms may
//! change a single output event.
//!
//! Three sections:
//!
//! 1. *Checkpoint/restore*: ingest half a keyed stream, snapshot, drop
//!    the service (no drain — a simulated crash), restore from the file,
//!    ingest the rest. The books resume (`events_in` continues from the
//!    dead process's count, lineage counts the checkpoint) and per-key
//!    output is identical to a run that never stopped.
//! 2. *Spill*: Zipf-skewed traffic with `key_ttl` and a spill directory —
//!    the long tail parks on disk (bounded resident set) and every spill
//!    is matched by exactly one revival (`spills == spill_revivals`,
//!    the final flush revives stragglers); output is identical to a run
//!    that kept every key resident.
//! 3. *Rebalance*: a key population deliberately skewed onto one shard is
//!    migrated off it by repeated `rebalance()` calls under load; the
//!    moves are counted and the output is identical to never moving.
//!
//! ```sh
//! cargo run --release --bin durability -- --events 1000000 --json out.json
//! ```
//!
//! The `--json` report carries machine-independent invariants that the CI
//! `guardrail` binary re-checks; wall-clock numbers are informational.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tilt_bench::json::Json;
use tilt_bench::{fmt_meps, meps, print_table, time_it, write_json_report, RunCfg};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, PerKeyOutput, RuntimeConfig, RuntimeStats, StreamService};
use tilt_workloads::gen;

fn sliding_sum(window: i64) -> Arc<CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

fn wait_for(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

/// Per-key output identity after coalescing: the one contract all three
/// durability mechanisms share.
fn identical(a: &PerKeyOutput, b: &PerKeyOutput) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, evs)| {
            b.get(k).is_some_and(|other| streams_equivalent(&coalesce(evs), &coalesce(other)))
        })
}

/// Deterministic round-robin keyed traffic with payloads quantized to
/// multiples of 1/4, so float window sums are exact regardless of how
/// emission chunks the evaluation.
fn round_robin(keys: u64, ticks: i64) -> Vec<KeyedEvent> {
    let mut out = Vec::new();
    for t in 1..=ticks {
        for k in 0..keys {
            if !(t as u64 + k).is_multiple_of(5) {
                let v = ((t as u64 * 7 + k * 13) % 64) as f64 * 0.25;
                out.push(KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v))));
            }
        }
    }
    out
}

/// Section 1: kill-and-restart. Snapshot at the halfway point, lose the
/// process, restore, finish — then diff against an uninterrupted run.
fn checkpoint_section(cfg: &RunCfg, shards: usize) -> Json {
    let keys = 64u64;
    let ticks = ((cfg.events / keys as usize).max(1) as i64).clamp(500, 50_000);
    let window = 16i64;
    let config = RuntimeConfig {
        shards,
        allowed_lateness: 8,
        emit_interval: 64,
        ..RuntimeConfig::default()
    };
    let query = sliding_sum(window);
    let arrivals = round_robin(keys, ticks);
    let split = arrivals.len() / 2;
    let horizon = Time::new(ticks + 2 * window);
    let snapshot =
        std::env::temp_dir().join(format!("tilt-bench-durability-{}.tiltsnp", std::process::id()));

    // Epoch 1: half the stream, one snapshot, then a crash (drop without
    // drain — nothing is flushed, the file is all that survives).
    let mut builder = StreamService::builder(config);
    let q = builder.register(Arc::clone(&query));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals[..split].iter().cloned());
    let (bytes, checkpoint_time) =
        time_it(|| service.checkpoint(&snapshot).expect("checkpoint writes"));
    drop(service);

    // Epoch 2: rebuild from the file, finish the stream.
    let (service, restore_time) = time_it(|| {
        StreamService::restore(&snapshot, &[Arc::clone(&query)]).expect("snapshot restores")
    });
    let resumed_stats = service.stats();
    service.ingest(arrivals[split..].iter().cloned());
    let resumed = service.finish_at(horizon);

    // The uninterrupted reference.
    let mut builder = StreamService::builder(config);
    let q2 = builder.register(Arc::clone(&query));
    let reference = builder.start().expect("single registration");
    reference.ingest(arrivals.iter().cloned());
    let straight = reference.finish_at(horizon);

    // No sink was installed, so epoch 1's finalized output accumulated
    // inside the service and rode the snapshot: the restored run's
    // collected output is the complete stream.
    let restore_identical =
        identical(&resumed.per_query[q.index()], &straight.per_query[q2.index()]);
    assert!(restore_identical, "restored run diverged from the uninterrupted run");
    assert_eq!(resumed_stats.events_in as usize, split, "the books must resume, not reset");
    assert_eq!(resumed.stats.events_in, arrivals.len() as u64);
    assert_eq!(resumed.stats.checkpoints, 1, "the snapshot remembers its lineage");
    assert_eq!(resumed.stats.conservation_balance(), 0, "books balance across the restore");
    std::fs::remove_file(&snapshot).ok();

    println!(
        "checkpoint: {} events snapshotted into {} bytes in {:.1} ms, restored in {:.1} ms; \
         output identical across the crash",
        split,
        bytes,
        checkpoint_time.as_secs_f64() * 1e3,
        restore_time.as_secs_f64() * 1e3,
    );
    Json::obj([
        ("events", arrivals.len().into()),
        ("shards", shards.into()),
        ("snapshot_bytes", bytes.into()),
        ("checkpoint_ms", (checkpoint_time.as_secs_f64() * 1e3).into()),
        ("restore_ms", (restore_time.as_secs_f64() * 1e3).into()),
        ("events_before_crash", split.into()),
        ("events_in_resumed", resumed_stats.events_in.into()),
        ("events_in_final", resumed.stats.events_in.into()),
        ("events_total", arrivals.len().into()),
        ("checkpoints", resumed.stats.checkpoints.into()),
        ("restore_identical", restore_identical.into()),
        ("conservation_balance", resumed.stats.conservation_balance().into()),
        ("state_bytes_read", resumed.stats.state_bytes_read.into()),
    ])
}

/// Section 2: cold spill under Zipf skew. The long tail parks on disk,
/// the resident set stays bounded, and nothing changes in the output.
fn spill_section(cfg: &RunCfg, shards: usize) -> (Vec<Vec<String>>, Json) {
    let num_keys = (cfg.events / 100).clamp(1_000, 20_000);
    let ttl = 4_096i64;
    let window = 16i64;
    // Quantize payloads to multiples of 1/64 so float window sums are
    // exact: the spill run's advance cadence differs from the baseline's
    // (TTL sweeps add cycles) and raw f64 sums would differ by ULPs.
    let stream: Vec<(u64, Event<Value>)> = gen::zipf_keyed_floats(cfg.events, num_keys, 1.2, 42)
        .into_iter()
        .map(|(k, mut e)| {
            if let Value::Float(f) = e.payload {
                e.payload = Value::Float((f * 64.0).round() / 64.0);
            }
            (k, e)
        })
        .collect();
    let stream_end = Time::new(cfg.events as i64);
    let horizon = Time::new(stream_end.ticks() + window);
    let config = RuntimeConfig {
        shards,
        allowed_lateness: 0,
        emit_interval: 256,
        ..RuntimeConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("tilt-bench-spill-{}", std::process::id()));

    // The spill run: TTL eviction with a cold store behind it. Ingest in
    // chunks, sampling the resident-set gauges — the bounded-memory story
    // is the row series, not one number.
    let mut builder =
        StreamService::builder(RuntimeConfig { key_ttl: Some(ttl), ..config }).spill_to(&dir);
    let q = builder.register(sliding_sum(window));
    let service = builder.start().expect("single registration");
    let mut samples: Vec<RuntimeStats> = Vec::new();
    let chunk = (stream.len() / 8).max(1);
    let (_, ingest_time) = time_it(|| {
        for part in stream.chunks(chunk) {
            service.ingest(part.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
            samples.push(service.stats());
        }
    });
    // Let the watermark reach the stream head so the TTL sweeps have
    // observed the idle tail before we sample the steady state.
    let settled = wait_for(Duration::from_secs(60), || {
        let s = service.stats();
        s.min_watermark >= Time::new(stream_end.ticks() - 8 * 256) && s.spills > 0
    });
    assert!(settled, "watermark never reached the stream head (or nothing spilled)");
    let steady = service.stats();
    // The final flush revives every still-spilled key so their tails
    // emit: spills == revivals holds at quiescence by construction.
    let out = service.finish_at(horizon);

    // The baseline keeps every key resident forever.
    let mut builder = StreamService::builder(config);
    let bq = builder.register(sliding_sum(window));
    let baseline = builder.start().expect("single registration");
    baseline.ingest(stream.iter().map(|(k, e)| KeyedEvent::new(*k, 0, e.clone())));
    let base = baseline.finish_at(horizon);

    let spill_identical = identical(&out.per_query[q.index()], &base.per_query[bq.index()]);
    assert!(spill_identical, "spill/revival changed the output");
    assert!(out.stats.spills > 0, "the idle tail must spill under skew");
    assert_eq!(out.stats.spills, out.stats.spill_revivals, "every spill revives exactly once");
    assert_eq!(out.stats.spilled_pending, 0, "no events left on disk at quiescence");
    assert_eq!(out.stats.keys_quarantined, 0, "spill must not quarantine");
    assert_eq!(out.stats.late_dropped, 0, "in-order skewed stream must lose nothing");
    assert_eq!(out.stats.conservation_balance(), 0, "conservation holds through the cold store");
    assert!(steady.live_keys < steady.keys, "the resident set must stay below keys seen");
    let _ = std::fs::remove_dir_all(&dir);

    let throughput = meps(cfg.events, ingest_time);
    let mut rows = Vec::new();
    for s in &samples {
        rows.push(vec![
            s.events_in.to_string(),
            s.keys.to_string(),
            s.live_keys.to_string(),
            s.spills.to_string(),
            s.spill_revivals.to_string(),
        ]);
    }
    rows.push(vec![
        format!("{} (final)", out.stats.events_in),
        out.stats.keys.to_string(),
        out.stats.live_keys.to_string(),
        out.stats.spills.to_string(),
        out.stats.spill_revivals.to_string(),
    ]);
    println!(
        "spill: {} keys, steady-state {} resident ({} spills / {} revivals at quiescence), \
         {} Mev/s ingest; output identical to the always-resident run",
        steady.keys,
        steady.live_keys,
        out.stats.spills,
        out.stats.spill_revivals,
        fmt_meps(throughput)
    );
    let json = Json::obj([
        ("events", cfg.events.into()),
        ("keys", num_keys.into()),
        ("zipf_exponent", 1.2.into()),
        ("ttl", ttl.into()),
        ("shards", shards.into()),
        ("throughput_meps", throughput.into()),
        (
            "steady_state",
            Json::obj([
                ("keys_seen", steady.keys.into()),
                ("live_keys", steady.live_keys.into()),
                ("spills", steady.spills.into()),
            ]),
        ),
        (
            "final",
            Json::obj([
                ("spills", out.stats.spills.into()),
                ("revivals", out.stats.spill_revivals.into()),
                ("spilled_pending", out.stats.spilled_pending.into()),
                ("keys_quarantined", out.stats.keys_quarantined.into()),
                ("late_dropped", out.stats.late_dropped.into()),
                ("conservation_balance", out.stats.conservation_balance().into()),
                ("state_bytes_written", out.stats.state_bytes_written.into()),
                ("state_bytes_read", out.stats.state_bytes_read.into()),
            ]),
        ),
        ("spill_identical", spill_identical.into()),
    ]);
    (rows, json)
}

/// Replicates the runtime's SplitMix64 key router so the bench can build
/// a population that lands on one shard (the runtime's hash is stable
/// across runs by design — see `shard_index`).
fn routes_to(key: u64, shard: usize, shards: usize) -> bool {
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z % shards as u64) as usize == shard
}

/// Section 3: live rebalancing. A key population deliberately hashed
/// onto shard 0 is migrated off it under load; output never changes.
fn rebalance_section(cfg: &RunCfg) -> Json {
    let shards = 4usize;
    let window = 16i64;
    // 60 keys on shard 0, one on each other shard: a census gap the
    // rebalancer cannot ignore.
    let mut keys: Vec<u64> = (0u64..).filter(|k| routes_to(*k, 0, shards)).take(60).collect();
    for s in 1..shards {
        keys.push((0u64..).find(|k| routes_to(*k, s, shards)).expect("every shard is reachable"));
    }
    let ticks = ((cfg.events / keys.len()).max(1) as i64).clamp(500, 20_000);
    let mut arrivals = Vec::new();
    for t in 1..=ticks {
        for (i, k) in keys.iter().enumerate() {
            if !(t as usize + i).is_multiple_of(4) {
                let v = ((t as u64 * 11 + *k * 3) % 64) as f64 * 0.25;
                arrivals.push(KeyedEvent::new(*k, 0, Event::point(Time::new(t), Value::Float(v))));
            }
        }
    }
    let horizon = Time::new(ticks + 2 * window);
    let config = RuntimeConfig {
        shards,
        allowed_lateness: 8,
        emit_interval: 64,
        ..RuntimeConfig::default()
    };

    // Rebalanced run: migrate between ingest chunks (the driver is
    // single-threaded, as the migration contract requires).
    let mut builder = StreamService::builder(config);
    let q = builder.register(sliding_sum(window));
    let service = builder.start().expect("single registration");
    let chunk = (arrivals.len() / 6).max(1);
    let mut moved = 0usize;
    let mut calls = 0usize;
    for part in arrivals.chunks(chunk) {
        service.ingest(part.iter().cloned());
        let drained = wait_for(Duration::from_secs(60), || {
            service.stats().queue_depths.iter().sum::<usize>() == 0
        });
        assert!(drained, "shard never drained its ingest queue");
        moved += service.rebalance();
        calls += 1;
    }
    let out = service.finish_at(horizon);

    // The never-moving baseline.
    let mut builder = StreamService::builder(config);
    let bq = builder.register(sliding_sum(window));
    let baseline = builder.start().expect("single registration");
    baseline.ingest(arrivals.iter().cloned());
    let base = baseline.finish_at(horizon);

    let rebalance_identical = identical(&out.per_query[q.index()], &base.per_query[bq.index()]);
    assert!(rebalance_identical, "rebalancing changed the output");
    assert!(moved > 0, "the skewed population must trigger migrations");
    assert_eq!(out.stats.migrations as usize, moved, "every move is counted exactly once");
    assert_eq!(out.stats.late_dropped, 0, "in-order rebalanced run must lose nothing");
    assert_eq!(out.stats.conservation_balance(), 0, "conservation holds through migration");

    println!(
        "rebalance: {} keys moved off the loaded shard across {} calls; \
         output identical to never moving",
        moved, calls
    );
    Json::obj([
        ("events", arrivals.len().into()),
        ("shards", shards.into()),
        ("keys", keys.len().into()),
        ("moved", moved.into()),
        ("calls", calls.into()),
        ("migrations", out.stats.migrations.into()),
        ("rebalance_identical", rebalance_identical.into()),
        ("late_dropped", out.stats.late_dropped.into()),
        ("conservation_balance", out.stats.conservation_balance().into()),
    ])
}

fn main() {
    let cfg = RunCfg::from_args(1_000_000);
    let shards = cfg.threads.clamp(1, 4);

    let checkpoint = checkpoint_section(&cfg, shards);
    let (rows, spill) = spill_section(&cfg, shards);
    print_table(
        "Durability — resident keys under Zipf skew (TTL spill to cold store)",
        "sampled during ingest; the final row is the post-flush state (every spill revived)",
        &["events_in", "keys_seen", "live_keys", "spills", "revivals"],
        &rows,
    );
    let rebalance = rebalance_section(&cfg);

    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "durability".into()),
            ("checkpoint", checkpoint),
            ("spill", spill),
            ("rebalance", rebalance),
        ]),
    );
}
