//! Fig. 7a: throughput of the primitive temporal operations
//! (Select, Where, WSum, Join) on every engine that supports them.
//!
//! Paper highlights (16 threads, 160 M synthetic events): TiLT ≈ baselines
//! on Select/Where; on WSum TiLT beats Trill 6.64×, StreamBox 18.3×,
//! Grizzly 7.44×, LightSaber 1.87×; on Join TiLT beats Trill 13.87× and
//! StreamBox 321.94× (LightSaber/Grizzly do not support Join).

use tilt_bench::{best_throughput, fmt_meps, print_table, RunCfg};
use tilt_workloads::ops::{self, PrimitiveOp};

fn main() {
    let cfg = RunCfg::from_args(2_000_000);
    let interval = 50_000i64;
    let mut rows = Vec::new();

    for op in PrimitiveOp::ALL {
        let inputs = ops::datasets(op, cfg.events, 1);
        let range = ops::range_for(&inputs);
        let total: usize = inputs.iter().map(|v| v.len()).sum();

        let tilt = best_throughput(total, cfg.runs, || {
            ops::run_tilt(op, &inputs, range, cfg.threads, interval)
        });
        let trill = best_throughput(total, cfg.runs, || ops::run_trill(op, &inputs, 65_536));

        // StreamBox's O(n²) join cannot finish 2 M events; scale it down and
        // normalize (noted in the output).
        let sb_scale = if op == PrimitiveOp::Join { 100 } else { 1 };
        let sb_inputs = ops::datasets(op, cfg.events / sb_scale, 1);
        let sb_total: usize = sb_inputs.iter().map(|v| v.len()).sum();
        let streambox =
            best_throughput(sb_total, cfg.runs, || ops::run_streambox(op, &sb_inputs, 65_536));

        let lightsaber = ops::run_lightsaber(op, &inputs, range, cfg.threads).map(|_| {
            best_throughput(total, cfg.runs, || {
                ops::run_lightsaber(op, &inputs, range, cfg.threads).unwrap_or(0)
            })
        });
        let grizzly = ops::run_grizzly(op, &inputs, range, cfg.threads).map(|_| {
            best_throughput(total, cfg.runs, || {
                ops::run_grizzly(op, &inputs, range, cfg.threads).unwrap_or(0)
            })
        });

        rows.push(vec![
            op.name().to_string(),
            fmt_meps(tilt),
            fmt_meps(trill),
            if sb_scale > 1 { format!("{}*", fmt_meps(streambox)) } else { fmt_meps(streambox) },
            lightsaber.map_or("n/a".into(), fmt_meps),
            grizzly.map_or("n/a".into(), fmt_meps),
        ]);
    }

    print_table(
        "Fig. 7a — primitive temporal operations (million events/sec)",
        &format!(
            "{} events, {} threads; * = StreamBox Join measured at 1/100 scale (O(n²))",
            cfg.events, cfg.threads
        ),
        &["op", "TiLT", "Trill", "StreamBox", "LightSaber", "Grizzly"],
        &rows,
    );
}
