//! Table 1: Yahoo Streaming Benchmark throughput across scale-up SPEs.
//!
//! Paper (32 cores, 160 M events, million events/sec):
//! Trill 34.07, StreamBox 167.19, Grizzly 118.74, LightSaber 296.40;
//! TiLT peaks at 450 (Fig. 8b). The claim reproduced here is the *ordering*
//! (interpreted Trill slowest; TiLT at or above the compiled baselines)
//! rather than the absolute numbers (see DESIGN.md substitutions 1 & 3).

use tilt_bench::{best_throughput, fmt_meps, print_table, RunCfg};
use tilt_workloads::ysb;

fn main() {
    let cfg = RunCfg::from_args(4_000_000);
    let campaigns = 100;
    let rate = 10_000; // events per "second"
    let window = ysb::window_ticks(rate);

    let events = ysb::generate(cfg.events, campaigns, 1);
    let range = ysb::extent(&events, window);
    let partitions = ysb::partition(&events, campaigns);

    // StreamBox buffers whole windows per stage; give it a smaller slice and
    // normalize by its own event count.
    let sb_events = ysb::generate(cfg.events / 8, campaigns, 1);
    let sb_range = ysb::extent(&sb_events, window);
    let sb_parts = ysb::partition(&sb_events, campaigns);

    let rows = vec![
        vec![
            "Trill".to_string(),
            fmt_meps(best_throughput(cfg.events, cfg.runs, || {
                ysb::run_trill(&partitions, 65_536, cfg.threads, range, window) as usize
            })),
            "34.07".to_string(),
        ],
        vec![
            "StreamBox".to_string(),
            fmt_meps(best_throughput(sb_events.len(), cfg.runs, || {
                ysb::run_streambox(&sb_parts, 65_536, sb_range, window) as usize
            })),
            "167.19".to_string(),
        ],
        vec![
            "Grizzly".to_string(),
            fmt_meps(best_throughput(cfg.events, cfg.runs, || {
                ysb::run_grizzly(&events, campaigns, range, cfg.threads, window) as usize
            })),
            "118.74".to_string(),
        ],
        vec![
            "LightSaber".to_string(),
            fmt_meps(best_throughput(cfg.events, cfg.runs, || {
                ysb::run_lightsaber(&events, range, cfg.threads, window) as usize
            })),
            "296.40".to_string(),
        ],
        vec![
            "TiLT".to_string(),
            fmt_meps(best_throughput(cfg.events, cfg.runs, || {
                ysb::run_tilt(&partitions, range, cfg.threads, window) as usize
            })),
            "450 (Fig. 8b)".to_string(),
        ],
    ];
    print_table(
        "Table 1 — YSB throughput (million events/sec)",
        &format!(
            "{} events, {campaigns} campaigns, {} threads; paper column: 32-core m5.8xlarge",
            cfg.events, cfg.threads
        ),
        &["engine", "measured", "paper"],
        &rows,
    );
}
