//! Client/server integration bench over loopback TCP: the network front
//! door (`tilt-server`) must deliver **byte-identical output** to an
//! in-process run, conserve every event, and surface shard backpressure
//! to remote producers as explicit `Busy` credit grants.
//!
//! Two sections:
//!
//! 1. *Identity*: four producer connections with disjoint key ranges
//!    push one keyed workload into a 2-shard service while two
//!    independent subscriber connections stream the query's per-key
//!    output. Both subscribers' collected streams must be identical to
//!    each other **and** to an in-process `StreamService` run over the
//!    same events drained through the same horizon — the wire adds no
//!    reordering, loss, or duplication. Conservation must balance to
//!    exactly 0 over the wire and the decode-error counter must be 0.
//! 2. *Backpressure*: a deliberately starved service (1 shard, tiny
//!    ingest queue, output-heavy query) feeds a subscriber that naps
//!    before draining. Shard output blocks on the subscriber's socket,
//!    the two-slot ingest queue fills, and the producer must observe
//!    `Busy` replies while the server counts `credit_stalls` — the
//!    wire-level proof that backpressure propagates producer-ward
//!    instead of ballooning memory.
//!
//! ```sh
//! cargo run --release --bin server_loopback -- --quick --json out.json
//! ```
//!
//! Throughput numbers are informational; the `--json` invariants are
//! re-checked by the CI `guardrail` binary.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use tilt_bench::json::Json;
use tilt_bench::{fmt_meps, meps, print_table, time_it, write_json_report, RunCfg};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};
use tilt_server::{Client, Server};

fn sliding_sum(window: i64) -> Arc<CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

/// The identity workload: `keys` back-to-back unit-length events per
/// key, values quantized to multiples of 0.25 so float aggregation is
/// exact across any grouping of the arithmetic.
fn workload(events: usize, keys: u64) -> Vec<KeyedEvent> {
    let per_key = (events as u64 / keys).max(1);
    let mut out = Vec::with_capacity((per_key * keys) as usize);
    for key in 0..keys {
        for i in 0..per_key {
            let t = i as i64 + 1;
            let v = ((key.wrapping_mul(31).wrapping_add(i * 7)) % 64) as f64 * 0.25;
            out.push(KeyedEvent::new(key, 0, Event::point(Time::new(t), Value::Float(v))));
        }
    }
    out
}

fn span_of(events: &[KeyedEvent]) -> i64 {
    events.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0)
}

/// In-process reference: one registered query, drained through `end`.
fn in_process(
    cq: &Arc<CompiledQuery>,
    events: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> HashMap<u64, Vec<Event<Value>>> {
    let mut builder = StreamService::builder(cfg);
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(events.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

fn streams_identical(
    a: &HashMap<u64, Vec<Event<Value>>>,
    b: &HashMap<u64, Vec<Event<Value>>>,
) -> bool {
    let mut keys: Vec<u64> = a.keys().chain(b.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    keys.iter().all(|k| {
        let x = a.get(k).cloned().unwrap_or_default();
        let y = b.get(k).cloned().unwrap_or_default();
        streams_equivalent(&coalesce(&x), &coalesce(&y))
    })
}

/// Section 1: M producers + K subscribers over the wire vs one
/// in-process run.
fn identity_section(cfg: &RunCfg) -> (Vec<Vec<String>>, Json) {
    const PRODUCERS: usize = 4;
    const KEYS: u64 = 64;
    let events = workload(cfg.events, KEYS);
    let total = events.len();
    let span = span_of(&events);
    let end = Time::new(span + 16);
    // Lateness covering the whole span: producer connections interleave
    // keys arbitrarily, and nothing may be dropped for it.
    let service_cfg = RuntimeConfig {
        shards: 2,
        allowed_lateness: span,
        start: Time::ZERO,
        ..RuntimeConfig::default()
    };
    let cq = sliding_sum(8);

    let local = in_process(&cq, &events, service_cfg, end);

    let server =
        Server::start(service_cfg, vec![("sliding_sum".into(), Arc::clone(&cq))]).expect("server");
    let control = Client::connect(server.addr()).expect("control client");
    let q = control.attach("sliding_sum", None, None).expect("attach");
    let consumer_a = Client::connect(server.addr()).expect("consumer a");
    let consumer_b = Client::connect(server.addr()).expect("consumer b");
    let sub_a = consumer_a.subscribe(q).expect("subscribe a");
    let sub_b = consumer_b.subscribe(q).expect("subscribe b");

    // Disjoint key ranges per producer connection.
    let mut chunks: Vec<Vec<KeyedEvent>> = (0..PRODUCERS).map(|_| Vec::new()).collect();
    for ke in &events {
        chunks[(ke.key % PRODUCERS as u64) as usize].push(ke.clone());
    }
    let addr = server.addr();
    let (busy_total, ingest_dur) = time_it(|| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                std::thread::spawn(move || {
                    let producer = Client::connect(addr).expect("producer");
                    producer.ingest(chunk).expect("producer ingest").busy
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("producer thread")).sum::<usize>()
    });

    let live = control.stats().expect("stats");
    control.shutdown(Some(end)).expect("shutdown");
    let wire_a = sub_a.collect_per_key();
    let wire_b = sub_b.collect_per_key();
    let after = control.stats().expect("final stats");
    server.stop();

    let identical = streams_identical(&wire_a, &local) && streams_identical(&wire_a, &wire_b);
    let stat = |name: &str| after.get(name).unwrap_or(-1);
    let rows = vec![vec![
        total.to_string(),
        fmt_meps(meps(total, ingest_dur)),
        identical.to_string(),
        stat("conservation_balance").to_string(),
        stat("bytes_in").to_string(),
        stat("bytes_out").to_string(),
        busy_total.to_string(),
    ]];
    let json = Json::obj([
        ("wire_identical", identical.into()),
        ("events_sent", (total as i64).into()),
        ("events_in", live.get("events_in").unwrap_or(-1).into()),
        ("conservation_balance", stat("conservation_balance").into()),
        ("decode_errors", stat("decode_errors").into()),
        ("bytes_in", stat("bytes_in").into()),
        ("bytes_out", stat("bytes_out").into()),
        ("producers", (PRODUCERS as i64).into()),
        ("subscribers", 2i64.into()),
        ("ingest_meps", meps(total, ingest_dur).into()),
    ]);
    (rows, json)
}

/// Section 2: a starved service and a napping subscriber must produce
/// `Busy` replies client-side and `credit_stalls` server-side.
fn backpressure_section(cfg: &RunCfg) -> (Vec<Vec<String>>, Json) {
    let events_n = (cfg.events / 4).max(4_000);
    // Long events make the every-tick output stream much larger than the
    // input, so the subscriber's socket is guaranteed to fill while it
    // naps — that is what blocks the shard and backs the queue up.
    const LEN: i64 = 64;
    let mut events = Vec::with_capacity(events_n);
    let mut t = 0i64;
    for i in 0..events_n {
        events.push(KeyedEvent::new(
            (i % 4) as u64,
            0,
            Event::new(Time::new(t), Time::new(t + LEN), Value::Float((i % 16) as f64 * 0.25)),
        ));
        t += LEN;
    }
    let service_cfg = RuntimeConfig {
        shards: 1,
        allowed_lateness: 0,
        emit_interval: 1,
        // Two ingest-queue slots (capacity / ingest_batch): the smallest
        // legal queue, so a stalled shard is visible almost immediately.
        channel_capacity: 512,
        ingest_batch: 256,
        start: Time::ZERO,
        ..RuntimeConfig::default()
    };
    let server =
        Server::start(service_cfg, vec![("sliding_sum".into(), sliding_sum(128))]).expect("server");
    let control = Client::connect(server.addr()).expect("control client");
    let q = control.attach("sliding_sum", None, None).expect("attach");

    let addr = server.addr();
    let consumer = std::thread::spawn(move || {
        let consumer = Client::connect(addr).expect("consumer");
        let sub = consumer.subscribe(q).expect("subscribe");
        // Nap first: let the socket fill and the shard block on it.
        std::thread::sleep(Duration::from_millis(300));
        let mut frames = 0usize;
        while sub.next().is_some() {
            frames += 1;
        }
        frames
    });
    // Give the consumer time to subscribe before producing.
    std::thread::sleep(Duration::from_millis(50));

    let total = events.len();
    let (report, dur) = time_it(|| control.ingest(events).expect("ingest"));
    let live = control.stats().expect("stats");
    control.shutdown(None).expect("shutdown");
    let frames = consumer.join().expect("consumer thread");
    let after = control.stats().expect("final stats");
    server.stop();

    let stat = |name: &str| after.get(name).unwrap_or(-1);
    let rows = vec![vec![
        total.to_string(),
        fmt_meps(meps(total, dur)),
        report.busy.to_string(),
        stat("credit_stalls").to_string(),
        frames.to_string(),
    ]];
    let json = Json::obj([
        ("events", (total as i64).into()),
        ("busy_replies", (report.busy as i64).into()),
        ("ingest_frames", (report.frames as i64).into()),
        ("credit_stalls", stat("credit_stalls").into()),
        ("decode_errors", stat("decode_errors").into()),
        ("conservation_balance", stat("conservation_balance").into()),
        ("output_frames", (frames as i64).into()),
        ("events_in", live.get("events_in").unwrap_or(-1).into()),
    ]);
    (rows, json)
}

fn main() {
    let cfg = RunCfg::from_args(200_000);

    let (identity_rows, invariants) = identity_section(&cfg);
    print_table(
        "Server loopback — wire vs in-process identity (4 producers, 2 subscribers)",
        "remote per-key output must equal the in-process run exactly",
        &["events", "Mev/s", "identical", "balance", "bytes_in", "bytes_out", "busy"],
        &identity_rows,
    );

    let (bp_rows, backpressure) = backpressure_section(&cfg);
    print_table(
        "Server loopback — backpressure under a napping subscriber",
        "a starved 1-shard service must answer Busy and count credit stalls",
        &["events", "Mev/s", "busy_replies", "credit_stalls", "output_frames"],
        &bp_rows,
    );

    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "server_loopback".into()),
            ("invariants", invariants),
            ("backpressure", backpressure),
        ]),
    );
}
