//! The self-healing story under seeded fault injection, end to end:
//! **torn checkpoints** (a snapshot killed mid-write must roll recovery
//! back to the last published lineage member), **killed connections**
//! (a subscriber's socket dies mid-stream; the client redials and
//! `Resume`s with zero gap), and **spill-write faults** (error-every-Nth
//! cold-store writes degrade to in-memory eviction). Timings are
//! incidental; what the `guardrail` binary re-checks is that recovery is
//! *exact*: recovered output identical to the fault-free run,
//! `reconnects > 0` with `resume_gap == 0`, and conservation balance
//! `== 0` under every schedule.
//!
//! The schedules are seeded from `FAULT_SEED` (env, decimal or
//! `0x`-hex); CI runs this binary under several seeds.
//!
//! ```sh
//! FAULT_SEED=2 cargo run --release --bin chaos -- --json out.json
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tilt_bench::json::Json;
use tilt_bench::{write_json_report, RunCfg};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_fault as fault;
use tilt_fault::Policy;
use tilt_runtime::{KeyedEvent, Lineage, PerKeyOutput, RuntimeConfig, StreamService};
use tilt_server::{Client, ClientConfig, RetryPolicy, Server, ServerConfig};

fn sliding_sum(window: i64) -> Arc<CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

/// Deterministic round-robin keyed traffic, payloads quantized to
/// multiples of 1/4 so float window sums are exact.
fn round_robin(keys: u64, ticks: i64) -> Vec<KeyedEvent> {
    let mut out = Vec::new();
    for t in 1..=ticks {
        for k in 0..keys {
            if !(t as u64 + k).is_multiple_of(5) {
                let v = ((t as u64 * 7 + k * 13) % 64) as f64 * 0.25;
                out.push(KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v))));
            }
        }
    }
    out
}

fn identical(a: &PerKeyOutput, b: &PerKeyOutput) -> bool {
    let keys: Vec<u64> = a.keys().chain(b.keys()).copied().collect();
    keys.iter().all(|k| {
        let x = a.get(k).map_or(&[][..], |v| v);
        let y = b.get(k).map_or(&[][..], |v| v);
        streams_equivalent(&coalesce(x), &coalesce(y))
    })
}

fn reference_run(
    cq: &Arc<CompiledQuery>,
    arrivals: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> PerKeyOutput {
    let mut builder = StreamService::builder(cfg);
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

fn drain(service: &StreamService) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().queue_depths.iter().sum::<usize>() > 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// Section 1: a checkpoint dies mid-write (torn record, then a failed
/// rename on the retry) — recovery must fall back to the snapshot
/// published before the fault and finish with identical output.
fn torn_checkpoint_section(cfg: &RunCfg, seed: u64, shards: usize) -> Json {
    let keys = 32u64;
    let ticks = ((cfg.events / keys as usize).max(1) as i64).clamp(300, 20_000);
    let window = 16i64;
    let config = RuntimeConfig {
        shards,
        allowed_lateness: 8,
        emit_interval: 64,
        ..RuntimeConfig::default()
    };
    let query = sliding_sum(window);
    let arrivals = round_robin(keys, ticks);
    let (prefix, rest) = arrivals.split_at(arrivals.len() / 3);
    let horizon = Time::new(ticks + 2 * window);
    let want = reference_run(&query, &arrivals, config, horizon);

    let dir = std::env::temp_dir().join(format!("tilt-bench-chaos-{}", std::process::id()));
    let lineage = Lineage::open(&dir, 3).expect("lineage directory");
    let mut builder = StreamService::builder(config);
    let q = builder.register(Arc::clone(&query));
    let service = builder.start().expect("single registration");
    service.ingest(prefix.iter().cloned());
    let (good, snapshot_bytes) = service.checkpoint_to(&lineage).expect("clean checkpoint");
    service.ingest(rest.iter().cloned());

    // Two consecutive schedules against the same lineage: a torn record
    // write, then (after that fails) a failed publish rename.
    fault::arm("state.snapshot.write_record", fault::seeded_torn(seed, "state.snapshot", 512));
    let torn = service.checkpoint_to(&lineage);
    assert!(torn.is_err(), "torn write must fail the checkpoint, got {torn:?}");
    fault::disarm("state.snapshot.write_record");
    fault::arm("state.snapshot.rename", Policy::ErrorOnce);
    let unpublished = service.checkpoint_to(&lineage);
    assert!(unpublished.is_err(), "failed rename must fail the checkpoint");
    fault::disarm("state.snapshot.rename");
    let injected =
        fault::injected("state.snapshot.write_record") + fault::injected("state.snapshot.rename");
    drop(service); // crash: memory after the good checkpoint is gone

    let (restored, from) =
        StreamService::restore_latest(&lineage, &[Arc::clone(&query)]).expect("recovery");
    let recovery_source_is_pre_fault = from == good;
    restored.ingest(rest.iter().cloned());
    let mut out = restored.finish_at(horizon);
    let recovered_identical = identical(&out.per_query[q.index()], &want);
    assert!(recovered_identical, "recovered run diverged from the fault-free run");
    let balance = out.stats.conservation_balance();
    let retained = lineage.paths().len();
    let _ = std::fs::remove_dir_all(&dir);
    let got = out.per_query.swap_remove(q.index());
    drop(got);

    println!(
        "torn checkpoint: {injected} snapshot faults injected, recovery restored \
         {} ({snapshot_bytes} bytes) and replayed {} events; output identical",
        good.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        rest.len(),
    );
    Json::obj([
        ("events", arrivals.len().into()),
        ("shards", shards.into()),
        ("injected", injected.into()),
        ("snapshot_bytes", snapshot_bytes.into()),
        ("snapshots_retained", retained.into()),
        ("recovery_source_is_pre_fault", recovery_source_is_pre_fault.into()),
        ("recovered_identical", recovered_identical.into()),
        ("replayed_events", rest.len().into()),
        ("conservation_balance", balance.into()),
    ])
}

/// Section 2: the first output frame after arming dies on the server's
/// socket write. The client must redial, re-handshake, and `Resume`
/// with zero gap; the subscriber's stream stays identical.
fn reconnect_section(cfg: &RunCfg, seed: u64) -> Json {
    let keys = 8u64;
    let ticks = ((cfg.events / (keys as usize * 16)).max(1) as i64).clamp(100, 2_000);
    let window = 8i64;
    let config = RuntimeConfig {
        shards: 2,
        allowed_lateness: 1,
        emit_interval: 4,
        ..RuntimeConfig::default()
    };
    let query = sliding_sum(window);
    let arrivals = round_robin(keys, ticks);
    let horizon = Time::new(ticks + 2 * window);
    let want = reference_run(&query, &arrivals, config, horizon);

    let server = Server::start_with(
        ServerConfig { runtime: config, replay_ring_capacity: 65_536, ..ServerConfig::default() },
        vec![("sum".into(), Arc::clone(&query))],
    )
    .expect("server starts");
    let retry = RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(40),
        seed,
    };
    let client = Client::connect_with(
        server.addr(),
        ClientConfig { retry: Some(retry), ..ClientConfig::default() },
    )
    .expect("client connects");
    let q = client.attach("sum", None, None).expect("attach");
    let sub = client.subscribe(q).expect("subscribe");
    client.ingest(arrivals.iter().cloned()).expect("ingest");

    fault::arm("server.conn.write", Policy::ErrorOnce);
    client.watermark(0, horizon).expect("watermark");
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.reconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let injected = fault::injected("server.conn.write");
    fault::disarm("server.conn.write");

    client.shutdown(Some(horizon)).expect("shutdown");
    let stats = client.stats().expect("post-shutdown stats");
    let reconnects = client.reconnects();
    let resume_gap = client.resume_gaps();
    let resume_replays = stats.get("resume_replays").unwrap_or(0);
    let balance = stats.get("conservation_balance").unwrap_or(i64::MAX);
    let got: HashMap<u64, Vec<Event<Value>>> = sub.collect_per_key();
    server.stop();
    let wire_identical = identical(&got, &want);
    assert!(wire_identical, "resumed subscriber's stream diverged from the fault-free run");

    println!(
        "reconnect: {injected} socket fault injected, {reconnects} reconnect(s), \
         {resume_replays} frame(s) replayed, resume gap {resume_gap}; stream identical"
    );
    Json::obj([
        ("events", arrivals.len().into()),
        ("injected", injected.into()),
        ("reconnects", reconnects.into()),
        ("resume_gap", resume_gap.into()),
        ("resume_replays", resume_replays.into()),
        ("wire_identical", wire_identical.into()),
        ("conservation_balance", balance.into()),
    ])
}

/// Section 3: error-every-Nth spill writes. Failed saves degrade to
/// plain in-memory eviction — no quarantine, identical output.
fn spill_fault_section(seed: u64, shards: usize) -> Json {
    let window = 6i64;
    let query = sliding_sum(window);
    let phase = |keys: std::ops::Range<u64>, ticks: std::ops::Range<i64>| {
        let mut evs = Vec::new();
        for t in ticks {
            for k in keys.clone() {
                evs.push(KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float((k + t as u64) as f64)),
                ));
            }
        }
        evs
    };
    let phases = [phase(0..8, 1..50), phase(8..16, 50..150), phase(0..16, 150..200)];
    let all: Vec<KeyedEvent> = phases.iter().flatten().cloned().collect();
    let horizon = Time::new(220);
    let config =
        RuntimeConfig { shards, allowed_lateness: 0, emit_interval: 4, ..RuntimeConfig::default() };
    let want = reference_run(&query, &all, config, horizon);

    let dir = std::env::temp_dir().join(format!("tilt-bench-chaos-spill-{}", std::process::id()));
    fault::arm("state.spill.write", fault::seeded_nth(seed, "state.spill.write", 2, 4));
    let mut builder =
        StreamService::builder(RuntimeConfig { key_ttl: Some(16), ..config }).spill_to(&dir);
    let q = builder.register(Arc::clone(&query));
    let service = builder.start().expect("single registration");
    for p in &phases {
        service.ingest(p.iter().cloned());
        drain(&service);
    }
    let out = service.finish_at(horizon);
    let injected = fault::injected("state.spill.write");
    fault::disarm("state.spill.write");
    let _ = std::fs::remove_dir_all(&dir);

    let spill_identical = identical(&out.per_query[q.index()], &want);
    assert!(spill_identical, "spill-write faults changed the output");
    let s = &out.stats;
    println!(
        "spill faults: {injected} write fault(s) injected across {} spill attempts; \
         {} spills / {} revivals, 0 quarantined; output identical",
        s.spills + injected,
        s.spills,
        s.spill_revivals,
    );
    Json::obj([
        ("events", all.len().into()),
        ("shards", shards.into()),
        ("injected", injected.into()),
        ("spills", s.spills.into()),
        ("revivals", s.spill_revivals.into()),
        ("keys_quarantined", s.keys_quarantined.into()),
        ("spill_identical", spill_identical.into()),
        ("conservation_balance", s.conservation_balance().into()),
    ])
}

fn main() {
    let cfg = RunCfg::from_args(200_000);
    let shards = cfg.threads.clamp(1, 4);
    let seed = fault::seed_from_env(0xC0A5_C0DE);
    // One scenario for the whole run: clean registry in, clean out.
    let _scenario = fault::Scenario::setup();
    println!("chaos schedules seeded with 0x{seed:X} (override with FAULT_SEED)");

    let torn = torn_checkpoint_section(&cfg, seed, shards);
    let reconnect = reconnect_section(&cfg, seed);
    let spill = spill_fault_section(seed, shards);

    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "chaos".into()),
            ("seed", format!("0x{seed:X}").into()),
            ("torn_checkpoint", torn),
            ("reconnect", reconnect),
            ("spill_faults", spill),
        ]),
    );
}
