//! Fig. 9: latency-bounded throughput — throughput as a function of the
//! batch/snapshot-buffer size, TiLT vs Trill, on the eight applications.
//!
//! Paper: TiLT holds high throughput across the whole spectrum (10 … 1 M
//! events per batch) while Trill slows 18–227× at small batches (per-batch,
//! per-operator overhead dominates). Reproduced claim: the TiLT curve is
//! flat-ish; the Trill curve collapses as batches shrink.

use tilt_bench::{fmt_meps, print_table, time_it, RunCfg};
use tilt_core::Compiler;
use tilt_data::Time;
use tilt_workloads::all_apps;

fn main() {
    let cfg = RunCfg::from_args(200_000);
    let batch_sizes: &[usize] = if cfg.quick {
        &[10, 1_000, 100_000]
    } else {
        &[10, 100, 1_000, 10_000, 100_000, 1_000_000]
    };

    let mut rows = Vec::new();
    for app in all_apps() {
        let events = (app.dataset)(cfg.events, 1);
        let q = tilt_query::lower(&app.plan, app.output).expect("app lowers");
        let cq = Compiler::new().compile(&q).expect("app compiles");

        for &batch in batch_sizes {
            let batch = batch.min(events.len());
            // TiLT: batched streaming sessions with carried lookback.
            let (_, tilt_dur) = time_it(|| {
                let mut session = cq.stream_session(Time::ZERO);
                let mut sink = 0usize;
                let mut last = tilt_data::Time::ZERO;
                for chunk in events.chunks(batch) {
                    session.push_events(0, chunk);
                    let upto = chunk.last().expect("non-empty chunk").end;
                    if upto > session.watermark() {
                        sink += session.advance_to(upto).len();
                    }
                    last = upto;
                }
                sink += session.flush_to(last.max(session.watermark() + 1)).len();
                std::hint::black_box(sink)
            });

            // Trill: the same micro-batches through the operator graph.
            let (_, trill_dur) = time_it(|| {
                let mut engine = spe_trill::TrillEngine::new(&app.plan, app.output);
                let src = app.plan.sources()[0];
                for chunk in events.chunks(batch) {
                    engine.push_batch(src, chunk);
                }
                std::hint::black_box(engine.finish().len())
            });

            rows.push(vec![
                app.name.to_string(),
                batch.to_string(),
                fmt_meps(tilt_bench::meps(events.len(), tilt_dur)),
                fmt_meps(tilt_bench::meps(events.len(), trill_dur)),
            ]);
        }
    }

    print_table(
        "Fig. 9 — latency-bounded throughput (million events/sec)",
        &format!(
            "{} events/app, single worker; paper: Trill degrades 18-227x at small batches",
            cfg.events
        ),
        &["app", "batch", "TiLT", "Trill"],
        &rows,
    );
}
