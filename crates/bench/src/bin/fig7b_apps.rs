//! Fig. 7b: the eight real-world applications, TiLT vs Trill.
//!
//! Paper (16 threads): TiLT outperforms Trill 6.29–326.30× (20.49× average);
//! per-app Trill numbers 18.0 / 11.7 / 40.0 / 30.0 / 0.9 / 9.8 / 5.6 / 15.7
//! against TiLT 227.9 / 207.9 / 251.5 / 289.6 / 295.4 / 115.3 / 207.5 /
//! 254.0 million events/sec. Reproduced claim: TiLT wins on every
//! application, with the largest gap on Resample (Trill's chop/interp path).
//!
//! Trill parallelizes only over partitioned streams, so it receives
//! `threads` independent partitions (e.g. different stock symbols); TiLT
//! processes one unpartitioned stream with boundary-resolved partitions.

use tilt_bench::{best_throughput, fmt_meps, fmt_ratio, print_table, RunCfg};
use tilt_core::Compiler;
use tilt_data::{SnapshotBuf, Time, TimeRange, Value};
use tilt_workloads::all_apps;

fn main() {
    let cfg = RunCfg::from_args(1_000_000);
    let interval = 50_000i64;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();

    for app in all_apps() {
        // TiLT: one stream, synchronization-free time partitions.
        let events = (app.dataset)(cfg.events, 1);
        let hi = events.iter().map(|e| e.end).max().unwrap_or(Time::ZERO);
        let q = tilt_query::lower(&app.plan, app.output).expect("app lowers");
        let cq = Compiler::new().compile(&q).expect("app compiles");
        let range = TimeRange::new(Time::ZERO, hi.align_up(cq.grid().max(1)));
        let buf = SnapshotBuf::from_events(&events, range);
        let tilt = best_throughput(events.len(), cfg.runs, || {
            cq.run_parallel(&[&buf], range, cfg.threads, interval).len()
        });

        // Trill: per-partition operator graphs.
        let per = (cfg.events / cfg.threads.max(1)).max(1);
        let partitions: Vec<Vec<tilt_data::Event<Value>>> =
            (0..cfg.threads.max(1)).map(|k| (app.dataset)(per, 100 + k as u64)).collect();
        let total: usize = partitions.iter().map(|p| p.len()).sum();
        let trill = best_throughput(total, cfg.runs, || {
            spe_trill::run_partitioned(&app.plan, app.output, &partitions, 65_536, cfg.threads)
                .iter()
                .map(|o| o.len())
                .sum()
        });

        let ratio = tilt / trill.max(1e-9);
        ratios.push(ratio);
        rows.push(vec![app.name.to_string(), fmt_meps(tilt), fmt_meps(trill), fmt_ratio(ratio)]);
    }

    let geo: f64 = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    rows.push(vec!["(geo-mean)".into(), String::new(), String::new(), fmt_ratio(geo)]);

    print_table(
        "Fig. 7b — real-world applications, TiLT vs Trill (million events/sec)",
        &format!(
            "{} events/app, {} threads; paper: 6.29-326.30x, avg 20.49x",
            cfg.events, cfg.threads
        ),
        &["app", "TiLT", "Trill", "speedup"],
        &rows,
    );
}
