//! Observability overhead: the metrics layer must be effectively free.
//!
//! Two interleaved A/B comparisons:
//!
//! * *runtime*: the keyed out-of-order YSB stream through a
//!   [`StreamService`] with the full metrics layer on (lag/latency
//!   histograms, the control-plane journal, per-query attribution,
//!   `metrics: true`) vs base counters only (`metrics: false`);
//! * *kernel*: one compiled sliding-sum query over a snapshot with the
//!   per-kernel profiler on vs off.
//!
//! Rounds alternate the two sides within one process so frequency drift
//! on a shared runner cannot systematically favor whichever ran later,
//! and each side keeps its best-of-N throughput. The absolute numbers are
//! machine-dependent; the machine-independent invariant is the **ratio**
//! (instrumented / plain), which CI's `guardrail` holds to >= 0.95 — the
//! "< 5% overhead" acceptance bar for shipping the instrumentation
//! always-on in production configurations.
//!
//! ```sh
//! cargo run --release --bin obs_overhead -- --events 1000000 --json out.json
//! ```

use std::sync::Arc;

use tilt_bench::json::Json;
use tilt_bench::{
    best_throughput, fmt_meps, meps, print_table, time_it, write_json_report, RunCfg,
};
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
use tilt_runtime::{RuntimeConfig, StreamService};
use tilt_workloads::ysb;

/// Full-service YSB throughput with the metrics layer on or off: one
/// fresh service per measurement, end-to-end (ingest through shutdown
/// flush), so the shard-side instrumentation is on the measured path.
fn service_meps(
    cq: &Arc<CompiledQuery>,
    keyed: &[tilt_runtime::KeyedEvent],
    end: Time,
    shards: usize,
    window: i64,
    lateness: i64,
    metrics: bool,
) -> f64 {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: window,
        metrics,
        ..RuntimeConfig::default()
    });
    builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    let (out, dur) = time_it(|| {
        service.ingest(keyed.iter().cloned());
        service.finish_at(end)
    });
    assert_eq!(out.stats.late_dropped, 0, "lateness covers the bounded disorder");
    meps(keyed.len(), dur)
}

fn sliding_sum_query(window: i64) -> Query {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    b.finish(out).expect("sliding sum builds")
}

fn main() {
    let cfg = RunCfg::from_args(1_000_000);
    let shards = cfg.threads.clamp(1, 4);
    let rounds = cfg.runs.max(2);
    let window = ysb::window_ticks(1_000);
    let displacement = 64usize;

    // Runtime side: out-of-order arrivals keep the reorder buffers (and
    // their residency/lag instrumentation) on the hot path.
    let events = ysb::generate(cfg.events, 100, 11);
    let arrivals = ysb::shuffle_bounded(&events, displacement, 13);
    let keyed = ysb::keyed(&arrivals);
    let end = ysb::extent(&events, window).end;
    let lateness = 2 * displacement as i64 + 2;
    let (plan, out) = ysb::plan(window);
    let cq = Arc::new(
        Compiler::new().compile(&tilt_query::lower(&plan, out).expect("YSB lowers")).expect("YSB"),
    );
    let mut svc_on = 0f64;
    let mut svc_off = 0f64;
    // Alternate which side goes first each round: the second run of a
    // pair sees a hotter (and possibly thermally throttled) machine, and
    // a fixed order would bias the ratio systematically.
    for round in 0..rounds {
        let mut one = |metrics: bool| {
            let m = service_meps(&cq, &keyed, end, shards, window, lateness, metrics);
            if metrics {
                svc_on = svc_on.max(m);
            } else {
                svc_off = svc_off.max(m);
            }
        };
        one(round % 2 == 0);
        one(round % 2 != 0);
    }
    let svc_ratio = svc_on / svc_off;

    // Kernel side: same compiled artifact twice, profiler flipped on one.
    let q = sliding_sum_query(32);
    let ticks: Vec<Event<Value>> = (1..=cfg.events as i64)
        .map(|t| Event::point(Time::new(t), Value::Float((t % 97) as f64)))
        .collect();
    let plain = Compiler::new().compile(&q).expect("compiles (plain)");
    let profiled = Compiler::new().compile(&q).expect("compiles (profiled)");
    profiled.set_profiling(true);
    let range = TimeRange::new(
        Time::ZERO,
        (ticks.last().expect("non-empty").end + 8).align_up(plain.grid()),
    );
    let input = SnapshotBuf::from_events(&ticks, range);
    let one = |k: &CompiledQuery| best_throughput(ticks.len(), 1, || k.run(&[&input], range).len());
    let mut kern_plain = 0f64;
    let mut kern_prof = 0f64;
    for round in 0..rounds {
        if round % 2 == 0 {
            kern_plain = kern_plain.max(one(&plain));
            kern_prof = kern_prof.max(one(&profiled));
        } else {
            kern_prof = kern_prof.max(one(&profiled));
            kern_plain = kern_plain.max(one(&plain));
        }
    }
    let kern_ratio = kern_prof / kern_plain;
    let profile = profiled.kernel_profiles();
    assert!(profile.iter().all(|k| k.invocations > 0), "the profiled side must have counted");

    let overhead = |ratio: f64| format!("{:+.1}%", (1.0 - ratio) * 100.0);
    print_table(
        "Observability overhead — instrumented vs plain (best of interleaved rounds)",
        "ratio is instrumented/plain; CI guardrail requires >= 0.95 on any machine",
        &["side", "plain Mev/s", "instrumented Mev/s", "ratio", "overhead"],
        &[
            vec![
                "runtime (metrics + journal)".into(),
                fmt_meps(svc_off),
                fmt_meps(svc_on),
                format!("{svc_ratio:.3}"),
                overhead(svc_ratio),
            ],
            vec![
                "kernel (profiler)".into(),
                fmt_meps(kern_plain),
                fmt_meps(kern_prof),
                format!("{kern_ratio:.3}"),
                overhead(kern_ratio),
            ],
        ],
    );

    write_json_report(
        &cfg,
        &Json::obj([
            ("bench", "obs_overhead".into()),
            (
                "runtime",
                Json::obj([
                    ("events", cfg.events.into()),
                    ("shards", shards.into()),
                    ("rounds", rounds.into()),
                    ("displacement", displacement.into()),
                    ("metrics_on_meps", svc_on.into()),
                    ("metrics_off_meps", svc_off.into()),
                    ("ratio", svc_ratio.into()),
                ]),
            ),
            (
                "kernel",
                Json::obj([
                    ("events", cfg.events.into()),
                    ("rounds", rounds.into()),
                    ("profiled_meps", kern_prof.into()),
                    ("unprofiled_meps", kern_plain.into()),
                    ("ratio", kern_ratio.into()),
                ]),
            ),
        ]),
    );
}
