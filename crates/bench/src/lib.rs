//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--events N` — base event count (each binary documents its default);
//! * `--threads N` — maximum worker threads (default: available cores);
//! * `--quick` — shrink the run ~10× for smoke testing;
//! * `--runs N` — measurement repetitions (default 3; the paper averages 5);
//! * `--json PATH` — additionally write the results and their
//!   machine-independent invariants as JSON (see [`json`]); CI uploads
//!   these as workflow artifacts and the `guardrail` binary re-checks the
//!   invariants.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub mod json;

/// Parsed command-line configuration.
#[derive(Clone, Debug)]
pub struct RunCfg {
    /// Base number of events.
    pub events: usize,
    /// Maximum worker threads.
    pub threads: usize,
    /// Number of measurement repetitions.
    pub runs: usize,
    /// Quick (smoke-test) mode.
    pub quick: bool,
    /// Where to write the machine-readable results, if anywhere.
    pub json: Option<std::path::PathBuf>,
}

impl RunCfg {
    /// Parses `std::env::args`, applying `default_events` when `--events`
    /// is absent.
    ///
    /// # Panics
    ///
    /// Panics on malformed flag values (this is a benchmark CLI).
    pub fn from_args(default_events: usize) -> RunCfg {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = RunCfg {
            events: default_events,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            runs: 3,
            quick: false,
            json: None,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--events" => {
                    i += 1;
                    cfg.events = args[i].parse().expect("--events takes a number");
                }
                "--threads" => {
                    i += 1;
                    cfg.threads = args[i].parse().expect("--threads takes a number");
                }
                "--runs" => {
                    i += 1;
                    cfg.runs = args[i].parse().expect("--runs takes a number");
                }
                "--quick" => cfg.quick = true,
                "--json" => {
                    i += 1;
                    cfg.json = Some(std::path::PathBuf::from(&args[i]));
                }
                other => {
                    panic!(
                        "unknown flag {other}; supported: --events --threads --runs --quick --json"
                    )
                }
            }
            i += 1;
        }
        if cfg.quick {
            cfg.events = (cfg.events / 10).max(10_000);
            cfg.runs = 1;
        }
        cfg
    }
}

/// Writes `report` to `cfg.json` when `--json` was given, creating parent
/// directories; a no-op otherwise.
///
/// # Panics
///
/// Panics when the file cannot be written (this is a benchmark CLI).
pub fn write_json_report(cfg: &RunCfg, report: &json::Json) {
    let Some(path) = &cfg.json else { return };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create --json parent directory");
        }
    }
    std::fs::write(path, format!("{report}\n")).expect("write --json report");
    println!("wrote {}", path.display());
}

/// Times a closure.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Runs `f` `runs` times and returns the best (max) throughput in million
/// events per second, using `sink` to keep results observable.
pub fn best_throughput(events: usize, runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..runs.max(1) {
        let (sink, dur) = time_it(&mut f);
        std::hint::black_box(sink);
        let meps = events as f64 / dur.as_secs_f64() / 1e6;
        best = best.max(meps);
    }
    best
}

/// Million events per second.
pub fn meps(events: usize, dur: Duration) -> f64 {
    events as f64 / dur.as_secs_f64() / 1e6
}

/// Prints a fixed-width table with a title and a one-line provenance note.
pub fn print_table(title: &str, note: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    if !note.is_empty() {
        println!("   {note}");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("  {s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a throughput cell.
pub fn fmt_meps(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a ratio cell like `12.3x`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meps_math() {
        let x = meps(2_000_000, Duration::from_secs(1));
        assert!((x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_runs_best_of() {
        let t = best_throughput(1_000_000, 2, || 42);
        assert!(t > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_meps(123.4), "123");
        assert_eq!(fmt_meps(12.34), "12.3");
        assert_eq!(fmt_meps(1.234), "1.23");
        assert_eq!(fmt_ratio(2.5), "2.50x");
    }
}
