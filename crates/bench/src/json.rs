//! Re-export of the dependency-free JSON value, which moved to
//! `tilt_obs` so that metrics exposition, bench reports, and the
//! `guardrail` checker share one format without an import cycle
//! (`tilt_bench` depends on `tilt_runtime`, which depends on
//! `tilt_obs`). All existing `tilt_bench::json::{Json, parse}` call
//! sites keep working unchanged.

pub use tilt_obs::json::*;
