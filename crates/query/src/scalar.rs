//! Scalar expression fragments and a small reference interpreter.
//!
//! Frontend operators carry their per-event logic as TiLT IR [`Expr`]
//! fragments with *hole* variables standing for the operator's inputs:
//! [`elem`] for unary operators (Select, Where) and [`lhs`]/[`rhs`] for
//! binary ones (Join). Lowering substitutes the holes with temporal
//! accesses; the baseline engines instead interpret the fragments per event
//! with [`eval_scalar`] — the per-event interpretation overhead that defines
//! an interpreted SPE.

use tilt_core::ir::{Expr, VarId};
use tilt_data::Value;

/// Hole variable for the single input of Select/Where fragments.
pub const HOLE_ELEM: VarId = hole(0);
/// Hole variable for the left input of Join fragments.
pub const HOLE_LEFT: VarId = hole(1);
/// Hole variable for the right input of Join fragments.
pub const HOLE_RIGHT: VarId = hole(2);

const fn hole(i: u32) -> VarId {
    // High ids keep holes clearly out of the range QueryBuilder allocates.
    VarId::from_raw(u32::MAX - 16 + i)
}

/// The element hole: the current event's payload in Select/Where fragments.
pub fn elem() -> Expr {
    Expr::Var(HOLE_ELEM)
}

/// The left-payload hole of a Join fragment.
pub fn lhs() -> Expr {
    Expr::Var(HOLE_LEFT)
}

/// The right-payload hole of a Join fragment.
pub fn rhs() -> Expr {
    Expr::Var(HOLE_RIGHT)
}

/// Whether a fragment reads the clock ([`Expr::Time`]).
pub fn uses_time(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        if matches!(n, Expr::Time) {
            found = true;
        }
    });
    found
}

/// Interprets a scalar fragment: holes and let-bound variables are resolved
/// through `env`, the clock through `t`.
///
/// This is the slow per-event path used by the interpreted baseline engines
/// and the reference evaluator; the TiLT pipeline compiles fragments instead.
///
/// # Panics
///
/// Panics on temporal accesses (`At`/`Reduce`) — fragments are scalar — and
/// on unbound variables.
pub fn eval_scalar(e: &Expr, t: i64, env: &mut Vec<(VarId, Value)>) -> Value {
    match e {
        Expr::Const(v) => v.clone(),
        Expr::Time => Value::Int(t),
        Expr::Var(v) => env
            .iter()
            .rev()
            .find(|(var, _)| var == v)
            .map(|(_, val)| val.clone())
            .unwrap_or_else(|| panic!("unbound variable {v} in scalar fragment")),
        Expr::Unary(op, a) => op.apply(&eval_scalar(a, t, env)),
        Expr::Binary(op, a, b) => {
            let va = eval_scalar(a, t, env);
            let vb = eval_scalar(b, t, env);
            op.apply(&va, &vb)
        }
        Expr::If(c, th, el) => match eval_scalar(c, t, env) {
            Value::Bool(true) => eval_scalar(th, t, env),
            Value::Bool(false) => eval_scalar(el, t, env),
            _ => Value::Null,
        },
        Expr::Let { var, value, body } => {
            let v = eval_scalar(value, t, env);
            env.push((*var, v));
            let out = eval_scalar(body, t, env);
            env.pop();
            out
        }
        Expr::Field(a, i) => eval_scalar(a, t, env).field(*i),
        Expr::Tuple(items) => Value::tuple(items.iter().map(|it| eval_scalar(it, t, env))),
        Expr::At { .. } | Expr::Reduce { .. } => {
            panic!("temporal access in scalar fragment")
        }
    }
}

/// Evaluates a unary fragment on one payload.
pub fn apply1(f: &Expr, payload: &Value, t: i64) -> Value {
    let mut env = vec![(HOLE_ELEM, payload.clone())];
    eval_scalar(f, t, &mut env)
}

/// Evaluates a binary (join) fragment on two payloads.
pub fn apply2(f: &Expr, left: &Value, right: &Value, t: i64) -> Value {
    let mut env = vec![(HOLE_LEFT, left.clone()), (HOLE_RIGHT, right.clone())];
    eval_scalar(f, t, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply1_select_fragment() {
        let f = elem().add(Expr::c(1.0));
        assert_eq!(apply1(&f, &Value::Float(2.0), 0), Value::Float(3.0));
        assert_eq!(apply1(&f, &Value::Null, 0), Value::Null);
    }

    #[test]
    fn apply2_join_fragment() {
        let f = lhs().sub(rhs());
        assert_eq!(apply2(&f, &Value::Float(5.0), &Value::Float(2.0), 0), Value::Float(3.0));
    }

    #[test]
    fn time_reads_clock() {
        let f = Expr::Time.mul(Expr::c(2i64));
        assert_eq!(apply1(&f, &Value::Int(0), 21), Value::Int(42));
        assert!(uses_time(&f));
        assert!(!uses_time(&elem()));
    }

    #[test]
    fn lets_shadow_and_restore() {
        let v = VarId::from_raw(3);
        let f = Expr::Let {
            var: v,
            value: Box::new(elem().mul(Expr::c(10.0))),
            body: Box::new(Expr::Var(v).add(Expr::Var(v))),
        };
        assert_eq!(apply1(&f, &Value::Float(1.5), 0), Value::Float(30.0));
    }

    #[test]
    #[should_panic(expected = "temporal access")]
    fn temporal_access_rejected() {
        let mut b = tilt_core::ir::Query::builder();
        let obj = b.input("x", tilt_core::ir::DataType::Float);
        let f = Expr::at(obj);
        let _ = apply1(&f, &Value::Null, 0);
    }
}
