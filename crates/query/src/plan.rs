//! The event-centric logical plan: the operator vocabulary of §2.
//!
//! A [`LogicalPlan`] is the query as a user of an SPE writes it — a DAG of
//! the classic temporal operators (Fig. 1 of the paper) plus the extras the
//! benchmark suite needs (`Shift`, `Chop`, `Merge`). The same plan is
//! consumed by three executors: the TiLT compiler (via [`crate::lower`]),
//! the interpreted baseline engines, and the naive reference evaluator.

use std::sync::Arc;

use tilt_core::ir::{CustomReduce, Expr, ReduceOp};
use tilt_data::Value;

/// Identifier of a node within a [`LogicalPlan`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index within its plan.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An aggregate function usable in [`OpNode::Window`].
#[derive(Clone, Debug)]
pub enum Agg {
    /// Sum of event payloads.
    Sum,
    /// Number of events.
    Count,
    /// Arithmetic mean of event payloads.
    Mean,
    /// Population standard deviation.
    StdDev,
    /// Minimum payload.
    Min,
    /// Maximum payload.
    Max,
    /// A user-defined reduction (paper §6.1.2 template).
    Custom(Arc<CustomReduce>),
}

impl Agg {
    /// The TiLT reduction this aggregate lowers to.
    pub fn reduce_op(&self) -> ReduceOp {
        match self {
            Agg::Sum => ReduceOp::Sum,
            Agg::Count => ReduceOp::Count,
            Agg::Mean => ReduceOp::Mean,
            Agg::StdDev => ReduceOp::StdDev,
            Agg::Min => ReduceOp::Min,
            Agg::Max => ReduceOp::Max,
            Agg::Custom(c) => ReduceOp::Custom(c.clone()),
        }
    }

    /// Folds the aggregate over a window's payloads the obvious way — the
    /// specification the incremental implementations are tested against.
    /// φ payloads are skipped; an effectively empty window yields φ.
    pub fn apply_naive(&self, values: &[Value]) -> Value {
        let vals: Vec<&Value> = values.iter().filter(|v| !matches!(v, Value::Null)).collect();
        if vals.is_empty() {
            return Value::Null;
        }
        let n = vals.len() as i64;
        match self {
            Agg::Sum => vals.iter().fold(Value::Int(0), |acc, v| acc.add(v)),
            Agg::Count => Value::Int(n),
            Agg::Mean => {
                vals.iter().fold(Value::Int(0), |acc, v| acc.add(v)).to_float().div(&Value::Int(n))
            }
            Agg::StdDev => {
                let xs: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
                Value::Float(var.sqrt())
            }
            Agg::Min => vals.iter().fold(Value::Null, |acc, v| {
                if matches!(acc, Value::Null) {
                    (*v).clone()
                } else {
                    acc.min_v(v)
                }
            }),
            Agg::Max => vals.iter().fold(Value::Null, |acc, v| {
                if matches!(acc, Value::Null) {
                    (*v).clone()
                } else {
                    acc.max_v(v)
                }
            }),
            Agg::Custom(c) => {
                let mut state = c.init.clone();
                for v in &vals {
                    state = (c.acc)(&state, v, 1);
                }
                (c.result)(&state, n)
            }
        }
    }
}

/// One operator of the event-centric plan.
#[derive(Clone, Debug)]
pub enum OpNode {
    /// An input stream.
    Source {
        /// Stream name.
        name: String,
        /// Payload type.
        ty: tilt_core::ir::DataType,
    },
    /// Per-event projection: payload ↦ `f[elem := payload]` (Fig. 1a).
    Select {
        /// Upstream node.
        input: NodeId,
        /// Unary fragment over [`crate::elem`].
        f: Expr,
    },
    /// Per-event filtering by a predicate (Fig. 1b).
    Where {
        /// Upstream node.
        input: NodeId,
        /// Boolean fragment over [`crate::elem`].
        pred: Expr,
    },
    /// Moves validity intervals by `delta` ticks (positive = later).
    Shift {
        /// Upstream node.
        input: NodeId,
        /// Tick offset.
        delta: i64,
    },
    /// Splits events into `period`-length chunks on the aligned grid
    /// (the non-standard operator of the resampling benchmark).
    Chop {
        /// Upstream node.
        input: NodeId,
        /// Chunk length in ticks.
        period: i64,
    },
    /// Windowed aggregation (Fig. 1d): every `stride` ticks, aggregate the
    /// events of the last `size` ticks.
    Window {
        /// Upstream node.
        input: NodeId,
        /// Window length in ticks.
        size: i64,
        /// Output stride in ticks (= `size` for tumbling windows).
        stride: i64,
        /// The aggregate function.
        agg: Agg,
    },
    /// Temporal join (Fig. 1c): emits `f(l, r)` over strictly overlapping
    /// validity regions.
    Join {
        /// Left upstream.
        left: NodeId,
        /// Right upstream.
        right: NodeId,
        /// Binary fragment over [`crate::lhs`] / [`crate::rhs`].
        f: Expr,
    },
    /// Temporal coalesce: the left value where present, otherwise the right
    /// (used by the imputation benchmark).
    Merge {
        /// Preferred upstream.
        left: NodeId,
        /// Fallback upstream.
        right: NodeId,
    },
}

impl OpNode {
    /// The upstream nodes of this operator.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            OpNode::Source { .. } => vec![],
            OpNode::Select { input, .. }
            | OpNode::Where { input, .. }
            | OpNode::Shift { input, .. }
            | OpNode::Chop { input, .. }
            | OpNode::Window { input, .. } => vec![*input],
            OpNode::Join { left, right, .. } | OpNode::Merge { left, right } => {
                vec![*left, *right]
            }
        }
    }

    /// Whether this operator requires partial materialization before the
    /// next operator can run — a *soft pipeline breaker* in the sense of §3.
    pub fn is_pipeline_breaker(&self) -> bool {
        matches!(self, OpNode::Window { .. } | OpNode::Join { .. } | OpNode::Merge { .. })
    }
}

/// An event-centric query: a DAG of [`OpNode`]s.
///
/// # Examples
///
/// ```
/// use tilt_query::{elem, Agg, LogicalPlan};
/// use tilt_core::ir::{DataType, Expr};
///
/// let mut plan = LogicalPlan::new();
/// let src = plan.source("prices", DataType::Float);
/// let avg = plan.window(src, 10, 1, Agg::Mean);
/// let up = plan.where_(avg, elem().gt(Expr::c(100.0)));
/// assert_eq!(plan.node(up).inputs(), vec![avg]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LogicalPlan {
    nodes: Vec<OpNode>,
}

impl LogicalPlan {
    /// An empty plan.
    pub fn new() -> LogicalPlan {
        LogicalPlan::default()
    }

    /// All nodes, in creation (hence topological) order.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The source nodes in declaration order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, OpNode::Source { .. }))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Number of soft pipeline breakers (how hard this plan is to fuse for
    /// an event-centric optimizer; cf. Table 2's 2–6 per application).
    pub fn pipeline_breakers(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_pipeline_breaker()).count()
    }

    fn push(&mut self, node: OpNode) -> NodeId {
        for dep in node.inputs() {
            assert!(dep.0 < self.nodes.len(), "operator references a later node");
        }
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Declares an input stream.
    pub fn source(&mut self, name: &str, ty: tilt_core::ir::DataType) -> NodeId {
        self.push(OpNode::Source { name: name.to_string(), ty })
    }

    /// Adds a Select (projection) operator.
    pub fn select(&mut self, input: NodeId, f: Expr) -> NodeId {
        self.push(OpNode::Select { input, f })
    }

    /// Adds a Where (filter) operator.
    pub fn where_(&mut self, input: NodeId, pred: Expr) -> NodeId {
        self.push(OpNode::Where { input, pred })
    }

    /// Adds a Shift operator (`delta > 0` moves events later).
    pub fn shift(&mut self, input: NodeId, delta: i64) -> NodeId {
        self.push(OpNode::Shift { input, delta })
    }

    /// Adds a Chop operator with the given chunk period.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn chop(&mut self, input: NodeId, period: i64) -> NodeId {
        assert!(period > 0, "chop period must be positive");
        self.push(OpNode::Chop { input, period })
    }

    /// Adds a windowed aggregation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < stride <= size`.
    pub fn window(&mut self, input: NodeId, size: i64, stride: i64, agg: Agg) -> NodeId {
        assert!(stride > 0 && size >= stride, "require 0 < stride <= size");
        self.push(OpNode::Window { input, size, stride, agg })
    }

    /// Adds a temporal join.
    pub fn join(&mut self, left: NodeId, right: NodeId, f: Expr) -> NodeId {
        self.push(OpNode::Join { left, right, f })
    }

    /// Adds a temporal coalesce (left where present, else right).
    pub fn merge(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.push(OpNode::Merge { left, right })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem;
    use tilt_core::ir::DataType;

    #[test]
    fn plan_tracks_structure() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let sel = plan.select(src, elem().add(Expr::c(1.0)));
        let win = plan.window(sel, 10, 5, Agg::Sum);
        let win2 = plan.window(sel, 20, 5, Agg::Sum);
        let joined = plan.join(win, win2, crate::lhs().sub(crate::rhs()));
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.sources(), vec![src]);
        assert_eq!(plan.pipeline_breakers(), 3);
        assert_eq!(plan.node(joined).inputs(), vec![win, win2]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn bad_window_rejected() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let _ = plan.window(src, 5, 10, Agg::Sum);
    }

    #[test]
    fn naive_aggs_match_definitions() {
        let vals: Vec<Value> = [1.0, 2.0, 3.0, 4.0].iter().map(|&x| Value::Float(x)).collect();
        assert_eq!(Agg::Sum.apply_naive(&vals), Value::Float(10.0));
        assert_eq!(Agg::Count.apply_naive(&vals), Value::Int(4));
        assert_eq!(Agg::Mean.apply_naive(&vals), Value::Float(2.5));
        assert_eq!(Agg::Min.apply_naive(&vals), Value::Float(1.0));
        assert_eq!(Agg::Max.apply_naive(&vals), Value::Float(4.0));
        let Value::Float(sd) = Agg::StdDev.apply_naive(&vals) else { panic!() };
        assert!((sd - 1.118033988749895).abs() < 1e-12);
        assert_eq!(Agg::Sum.apply_naive(&[]), Value::Null);
        assert_eq!(Agg::Sum.apply_naive(&[Value::Null]), Value::Null);
    }
}
