//! Lowering the event-centric plan to TiLT IR (paper §4.2 / Fig. 3a).
//!
//! Every operator becomes one temporal expression over an unbounded time
//! domain, using the translations of Fig. 4:
//!
//! | operator          | temporal expression                                        |
//! |-------------------|------------------------------------------------------------|
//! | `Select(f)`       | `~o[t] = f(~i[t])`                                         |
//! | `Where(p)`        | `~o[t] = p(~i[t]) ? ~i[t] : φ`                             |
//! | `Shift(d)`        | `~o[t] = ~i[t-d]`                                          |
//! | `Chop(p)`         | `~o[t] = ~i[t]` on a *sampled* domain of precision `p`     |
//! | `Window(w, s, ⊕)` | `~o[t] = ⊕(~i[t-w : t])` on a domain of precision `s`      |
//! | `Join(f)`         | `~o[t] = (~l[t]≠φ ∧ ~r[t]≠φ) ? f(~l[t], ~r[t]) : φ`        |
//! | `Merge`           | `~o[t] = (~l[t]≠φ) ? ~l[t] : ~r[t]`                        |

use std::collections::HashMap;

use tilt_core::ir::{Expr, Query, QueryBuilder, TDom, TObjId, VarId};
use tilt_core::Result;

use crate::plan::{LogicalPlan, NodeId, OpNode};
use crate::scalar::{HOLE_ELEM, HOLE_LEFT, HOLE_RIGHT};

/// Lowers `plan` (with `output` as the result node) to a TiLT IR query.
///
/// # Errors
///
/// Propagates structural errors from the query builder (the plan DAG itself
/// is valid by construction).
pub fn lower(plan: &LogicalPlan, output: NodeId) -> Result<Query> {
    let mut b = Query::builder();
    let mut objs: Vec<Option<TObjId>> = vec![None; plan.len()];
    for (i, node) in plan.nodes().iter().enumerate() {
        let at = |id: NodeId, objs: &[Option<TObjId>]| {
            Expr::at(objs[id.index()].expect("plan nodes are in topological order"))
        };
        let obj = match node {
            OpNode::Source { name, ty } => b.input(name, ty.clone()),
            OpNode::Select { input, f } => {
                let body = bind(f, &mut b, &[(HOLE_ELEM, at(*input, &objs))]);
                b.temporal(&format!("select_{i}"), TDom::every_tick(), body)
            }
            OpNode::Where { input, pred } => {
                let p = bind(pred, &mut b, &[(HOLE_ELEM, at(*input, &objs))]);
                let body = Expr::if_else(p, at(*input, &objs), Expr::null());
                b.temporal(&format!("where_{i}"), TDom::every_tick(), body)
            }
            OpNode::Shift { input, delta } => {
                let src = objs[input.index()].expect("topological order");
                b.temporal(&format!("shift_{i}"), TDom::every_tick(), Expr::at_off(src, -delta))
            }
            OpNode::Chop { input, period } => {
                let body = at(*input, &objs);
                b.temporal_sampled(&format!("chop_{i}"), TDom::unbounded(*period), body)
            }
            OpNode::Window { input, size, stride, agg } => {
                let src = objs[input.index()].expect("topological order");
                let body = Expr::reduce_window(agg.reduce_op(), src, *size);
                b.temporal(&format!("window_{i}"), TDom::unbounded(*stride), body)
            }
            OpNode::Join { left, right, f } => {
                let l = at(*left, &objs);
                let r = at(*right, &objs);
                let applied = bind(f, &mut b, &[(HOLE_LEFT, l.clone()), (HOLE_RIGHT, r.clone())]);
                let cond = l.is_present().and(r.is_present());
                let body = Expr::if_else(cond, applied, Expr::null());
                b.temporal(&format!("join_{i}"), TDom::every_tick(), body)
            }
            OpNode::Merge { left, right } => {
                let l = at(*left, &objs);
                let r = at(*right, &objs);
                let body = Expr::if_else(l.clone().is_present(), l, r);
                b.temporal(&format!("merge_{i}"), TDom::every_tick(), body)
            }
        };
        objs[i] = Some(obj);
    }
    b.finish(objs[output.index()].expect("output node exists"))
}

/// Renames the fragment's own let-variables to builder-fresh ids and then
/// substitutes the holes, so fragments from different operators never share
/// variable ids inside one query.
fn bind(f: &Expr, b: &mut QueryBuilder, holes: &[(VarId, Expr)]) -> Expr {
    // Collect the fragment's bound variables (Let and reduce-map binders).
    let mut bound: Vec<VarId> = Vec::new();
    f.walk(&mut |e| match e {
        Expr::Let { var, .. } => bound.push(*var),
        Expr::Reduce { window, .. } => {
            if let Some((var, _)) = &window.map {
                bound.push(*var);
            }
        }
        _ => {}
    });
    bound.sort();
    bound.dedup();
    let renames: HashMap<VarId, VarId> = bound.into_iter().map(|v| (v, b.var())).collect();
    let mut renamed = f.clone().rewrite(&mut |e| match e {
        Expr::Var(v) => match renames.get(&v) {
            Some(nv) => Expr::Var(*nv),
            None => Expr::Var(v),
        },
        Expr::Let { var, value, body } => {
            Expr::Let { var: *renames.get(&var).unwrap_or(&var), value, body }
        }
        other => other,
    });
    for (hole, replacement) in holes {
        renamed = renamed.subst_var(*hole, replacement);
    }
    renamed
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::plan::Agg;
    use crate::{elem, lhs, rhs};
    use tilt_core::ir::{print_query, DataType};
    use tilt_core::Compiler;
    use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};

    /// The paper's trend query, written as an event-centric plan.
    pub(crate) fn trend_plan() -> (LogicalPlan, NodeId) {
        let mut plan = LogicalPlan::new();
        let stock = plan.source("stock", DataType::Float);
        let sum10 = plan.window(stock, 10, 1, Agg::Sum);
        let sum20 = plan.window(stock, 20, 1, Agg::Sum);
        let avg10 = plan.select(sum10, elem().div(Expr::c(10.0)));
        let avg20 = plan.select(sum20, elem().div(Expr::c(20.0)));
        let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
        let up = plan.where_(diff, elem().gt(Expr::c(0.0)));
        (plan, up)
    }

    #[test]
    fn trend_plan_lowers_and_fuses_to_one_kernel() {
        let (plan, out) = trend_plan();
        assert_eq!(plan.pipeline_breakers(), 3);
        let q = lower(&plan, out).unwrap();
        assert_eq!(q.exprs().len(), 6, "{}", print_query(&q));
        let compiled = Compiler::new().compile(&q).unwrap();
        assert_eq!(compiled.num_kernels(), 1, "fusion across breakers expected");
    }

    #[test]
    fn lowered_trend_executes() {
        let (plan, out) = trend_plan();
        let q = lower(&plan, out).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        // Rising prices: short avg > long avg, so every steady-state tick
        // should pass the filter.
        let events: Vec<Event<Value>> =
            (1..=100).map(|t| Event::point(Time::new(t), Value::Float(t as f64))).collect();
        let range = TimeRange::new(Time::new(0), Time::new(100));
        let input = SnapshotBuf::from_events(&events, range);
        let result = cq.run(&[&input], range);
        assert_eq!(result.value_at(Time::new(50)), Value::Float(5.0)); // avg10-avg20 = 5 in steady state
    }

    #[test]
    fn fragment_lets_are_renamed_apart() {
        // Two operators using the same local var id must not collide.
        let local = VarId::from_raw(0);
        let frag = |k: f64| Expr::Let {
            var: local,
            value: Box::new(elem().mul(Expr::c(k))),
            body: Box::new(Expr::Var(local).add(Expr::Var(local))),
        };
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let a = plan.select(src, frag(2.0));
        let bnode = plan.select(a, frag(3.0));
        let q = lower(&plan, bnode).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let range = TimeRange::new(Time::new(0), Time::new(2));
        let input =
            SnapshotBuf::from_events(&[Event::point(Time::new(1), Value::Float(1.0))], range);
        let out = cq.run(&[&input], range);
        // ((1*2)+(1*2)) = 4, then (4*3)+(4*3) = 24.
        assert_eq!(out.value_at(Time::new(1)), Value::Float(24.0));
    }

    #[test]
    fn merge_prefers_left() {
        let mut plan = LogicalPlan::new();
        let a = plan.source("a", DataType::Float);
        let b_src = plan.source("b", DataType::Float);
        let m = plan.merge(a, b_src);
        let q = lower(&plan, m).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let range = TimeRange::new(Time::new(0), Time::new(10));
        let left = SnapshotBuf::from_events(
            &[Event::new(Time::new(2), Time::new(5), Value::Float(1.0))],
            range,
        );
        let right = SnapshotBuf::from_events(
            &[Event::new(Time::new(0), Time::new(10), Value::Float(9.0))],
            range,
        );
        let out = cq.run(&[&left, &right], range);
        assert_eq!(out.value_at(Time::new(1)), Value::Float(9.0));
        assert_eq!(out.value_at(Time::new(4)), Value::Float(1.0));
        assert_eq!(out.value_at(Time::new(7)), Value::Float(9.0));
    }

    #[test]
    fn chop_lowers_to_sampled_domain() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let c = plan.chop(src, 4);
        let q = lower(&plan, c).unwrap();
        let te = &q.exprs()[0];
        assert!(te.sample);
        assert_eq!(te.dom.precision, 4);
    }
}
