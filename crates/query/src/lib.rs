//! `tilt-query` — the event-centric temporal query frontend.
//!
//! This crate is the "SQL-like temporal query language" layer of the paper
//! (§2): users describe streaming computations as a DAG of classic temporal
//! operators ([`LogicalPlan`]), and the plan is then executed by any of the
//! workspace engines:
//!
//! * lowered to TiLT IR with [`lower`] and compiled by `tilt_core::Compiler`
//!   (the paper's system);
//! * interpreted operator-by-operator by the baseline SPEs (`spe-trill`,
//!   `spe-streambox`, …);
//! * evaluated naively by [`reference::evaluate`] for differential testing.
//!
//! # Example
//!
//! ```
//! use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan};
//! use tilt_core::ir::{DataType, Expr};
//! use tilt_core::Compiler;
//!
//! // Moving-average crossover (the paper's running example).
//! let mut plan = LogicalPlan::new();
//! let stock = plan.source("stock", DataType::Float);
//! let avg10 = plan.window(stock, 10, 1, Agg::Mean);
//! let avg20 = plan.window(stock, 20, 1, Agg::Mean);
//! let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
//! let up = plan.where_(diff, elem().gt(Expr::c(0.0)));
//!
//! let query = tilt_query::lower(&plan, up)?;
//! let compiled = Compiler::new().compile(&query)?;
//! assert_eq!(compiled.num_kernels(), 1); // fused across 3 pipeline breakers
//! # Ok::<(), tilt_core::CompileError>(())
//! ```

#![warn(missing_docs)]

mod lower;
mod plan;
pub mod reference;
mod scalar;

pub use lower::lower;
pub use plan::{Agg, LogicalPlan, NodeId, OpNode};
pub use scalar::{
    apply1, apply2, elem, eval_scalar, lhs, rhs, uses_time, HOLE_ELEM, HOLE_LEFT, HOLE_RIGHT,
};
