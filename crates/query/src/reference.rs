//! A naive, obviously-correct reference evaluator for logical plans.
//!
//! This evaluator defines the ground-truth semantics the TiLT compiler and
//! every baseline engine are differentially tested against. It favours
//! clarity over speed: joins are pairwise O(n²), windows re-scan all events
//! per grid tick, and time-dependent fragments fall back to per-tick
//! evaluation. Use it on small inputs only.

use tilt_data::{sort_stream, Event, Time, TimeRange, Value};

use crate::plan::{LogicalPlan, NodeId, OpNode};
use crate::scalar::{apply1, apply2, uses_time};

/// Evaluates `plan` over event-list inputs (one per source, in
/// [`LogicalPlan::sources`] order), producing the events of `output` within
/// `range`.
///
/// # Panics
///
/// Panics if the number of inputs does not match the number of sources.
pub fn evaluate(
    plan: &LogicalPlan,
    output: NodeId,
    inputs: &[Vec<Event<Value>>],
    range: TimeRange,
) -> Vec<Event<Value>> {
    let sources = plan.sources();
    assert_eq!(inputs.len(), sources.len(), "one input per source required");
    // Grid-based operators (Window, Chop, Merge) must be evaluated beyond
    // `range`: a downstream window's lookback can read panes before
    // `range.start`, and shifts can move events across either edge. Extend
    // every intermediate by the plan's total temporal reach and clip only
    // the final output — the event-list analogue of the compiler's
    // boundary-resolved partition extension (Fig. 6).
    let reach: i64 = plan
        .nodes()
        .iter()
        .map(|n| match n {
            OpNode::Window { size, stride, .. } => size + stride,
            OpNode::Chop { period, .. } => 2 * period,
            OpNode::Shift { delta, .. } => delta.abs(),
            _ => 0,
        })
        .sum();
    let eval = TimeRange::new(range.start.saturating_add(-reach), range.end.saturating_add(reach));
    let mut memo: Vec<Option<Vec<Event<Value>>>> = vec![None; plan.len()];
    let mut source_iter = inputs.iter();
    for (i, node) in plan.nodes().iter().enumerate() {
        let get = |id: NodeId, memo: &[Option<Vec<Event<Value>>>]| -> Vec<Event<Value>> {
            memo[id.index()].clone().expect("topological order")
        };
        let computed = match node {
            OpNode::Source { .. } => {
                let evs = source_iter.next().expect("checked above");
                clip(evs, range)
            }
            OpNode::Select { input, f } => {
                let mut out = Vec::new();
                for e in get(*input, &memo) {
                    if uses_time(f) {
                        for t in ticks(e.interval()) {
                            push_nonnull(&mut out, t - 1, t, apply1(f, &e.payload, t.ticks()));
                        }
                    } else {
                        push_nonnull(
                            &mut out,
                            e.start,
                            e.end,
                            apply1(f, &e.payload, e.end.ticks()),
                        );
                    }
                }
                out
            }
            OpNode::Where { input, pred } => {
                let mut out = Vec::new();
                for e in get(*input, &memo) {
                    if uses_time(pred) {
                        for t in ticks(e.interval()) {
                            if apply1(pred, &e.payload, t.ticks()) == Value::Bool(true) {
                                out.push(Event::new(t - 1, t, e.payload.clone()));
                            }
                        }
                    } else if apply1(pred, &e.payload, e.end.ticks()) == Value::Bool(true) {
                        out.push(e);
                    }
                }
                out
            }
            OpNode::Shift { input, delta } => get(*input, &memo)
                .into_iter()
                .map(|e| Event::new(e.start + *delta, e.end + *delta, e.payload))
                .collect(),
            OpNode::Chop { input, period } => {
                let evs = get(*input, &memo);
                let mut out = Vec::new();
                let mut g = Time::new(eval.start.ticks() + 1).align_up(*period);
                while g <= eval.end {
                    if let Some(e) = evs.iter().find(|e| e.is_active_at(g)) {
                        out.push(Event::new(g - *period, g, e.payload.clone()));
                    }
                    g += *period;
                }
                out
            }
            OpNode::Window { input, size, stride, agg } => {
                let evs = get(*input, &memo);
                let mut out = Vec::new();
                let mut g = Time::new(eval.start.ticks() + 1).align_up(*stride);
                while g <= eval.end {
                    let win = TimeRange::new(g - *size, g);
                    let payloads: Vec<Value> = evs
                        .iter()
                        .filter(|e| e.interval().overlaps(&win))
                        .map(|e| e.payload.clone())
                        .collect();
                    let v = agg.apply_naive(&payloads);
                    if !matches!(v, Value::Null) {
                        out.push(Event::new(g - *stride, g, v));
                    }
                    g += *stride;
                }
                out
            }
            OpNode::Join { left, right, f } => {
                let ls = get(*left, &memo);
                let rs = get(*right, &memo);
                let mut out = Vec::new();
                for el in &ls {
                    for er in &rs {
                        let iv = el.interval().intersect(&er.interval());
                        if iv.is_empty() {
                            continue;
                        }
                        if uses_time(f) {
                            for t in ticks(iv) {
                                push_nonnull(
                                    &mut out,
                                    t - 1,
                                    t,
                                    apply2(f, &el.payload, &er.payload, t.ticks()),
                                );
                            }
                        } else {
                            push_nonnull(
                                &mut out,
                                iv.start,
                                iv.end,
                                apply2(f, &el.payload, &er.payload, iv.end.ticks()),
                            );
                        }
                    }
                }
                sort_stream(&mut out);
                out
            }
            OpNode::Merge { left, right } => {
                let ls = get(*left, &memo);
                let rs = get(*right, &memo);
                let mut out = Vec::new();
                for t in ticks(eval) {
                    let v = ls
                        .iter()
                        .find(|e| e.is_active_at(t))
                        .or_else(|| rs.iter().find(|e| e.is_active_at(t)))
                        .map(|e| e.payload.clone());
                    if let Some(v) = v {
                        out.push(Event::new(t - 1, t, v));
                    }
                }
                out
            }
        };
        memo[i] = Some(computed);
    }
    // The query's observable output is its restriction to `range` (shifts
    // can push intermediate events outside it).
    clip(&memo[output.index()].take().expect("output computed"), range)
}

fn clip(events: &[Event<Value>], range: TimeRange) -> Vec<Event<Value>> {
    events
        .iter()
        .filter_map(|e| {
            let iv = e.interval().intersect(&range);
            if iv.is_empty() {
                None
            } else {
                Some(Event::new(iv.start, iv.end, e.payload.clone()))
            }
        })
        .collect()
}

fn ticks(range: TimeRange) -> impl Iterator<Item = Time> {
    let (a, b) = (range.start.ticks(), range.end.ticks());
    (a + 1..=b).map(Time::new)
}

fn push_nonnull(out: &mut Vec<Event<Value>>, start: Time, end: Time, v: Value) {
    if !matches!(v, Value::Null) {
        out.push(Event::new(start, end, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Agg;
    use crate::{elem, lhs, rhs};
    use tilt_core::ir::{DataType, Expr};
    use tilt_core::Compiler;
    use tilt_data::{streams_equivalent, SnapshotBuf};

    fn pts(points: &[(i64, f64)]) -> Vec<Event<Value>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect()
    }

    /// Differential helper: run the plan through both the reference
    /// evaluator and the TiLT compiler, assert equivalence.
    fn check(plan: &LogicalPlan, out: NodeId, inputs: &[Vec<Event<Value>>], hi: i64) {
        let range = TimeRange::new(Time::new(0), Time::new(hi));
        let expected = evaluate(plan, out, inputs, range);
        let q = crate::lower(plan, out).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let bufs: Vec<SnapshotBuf<Value>> =
            inputs.iter().map(|evs| SnapshotBuf::from_events(evs, range)).collect();
        let refs: Vec<&SnapshotBuf<Value>> = bufs.iter().collect();
        let got = cq.run(&refs, range).to_events();
        assert!(streams_equivalent(&expected, &got), "reference {expected:?}\n!= tilt {got:?}");
    }

    #[test]
    fn select_where_agree_with_tilt() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let sel = plan.select(src, elem().mul(Expr::c(3.0)));
        let out = plan.where_(sel, elem().gt(Expr::c(10.0)));
        check(&plan, out, &[pts(&[(1, 2.0), (3, 4.0), (5, 6.0)])], 8);
    }

    #[test]
    fn window_agrees_with_tilt() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.window(src, 6, 2, Agg::Mean);
        check(&plan, out, &[pts(&[(1, 1.0), (2, 5.0), (4, 3.0), (9, 7.0)])], 12);
    }

    #[test]
    fn join_agrees_with_tilt() {
        let mut plan = LogicalPlan::new();
        let a = plan.source("a", DataType::Float);
        let b = plan.source("b", DataType::Float);
        let out = plan.join(a, b, lhs().add(rhs()));
        let left = vec![Event::new(Time::new(0), Time::new(6), Value::Float(1.0))];
        let right = vec![
            Event::new(Time::new(2), Time::new(4), Value::Float(10.0)),
            Event::new(Time::new(5), Time::new(9), Value::Float(20.0)),
        ];
        check(&plan, out, &[left, right], 10);
    }

    #[test]
    fn shift_and_merge_agree_with_tilt() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let lagged = plan.shift(src, 3);
        let out = plan.merge(src, lagged);
        check(&plan, out, &[pts(&[(2, 1.0), (7, 2.0)])], 12);
    }

    #[test]
    fn chop_agrees_with_tilt() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.chop(src, 3);
        let input = vec![Event::new(Time::new(1), Time::new(11), Value::Float(4.0))];
        check(&plan, out, &[input], 12);
    }

    #[test]
    fn time_dependent_select_agrees_with_tilt() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        // payload + t: changes every tick inside an event.
        let out =
            plan.select(src, elem().add(Expr::Time.bin(tilt_core::ir::BinOp::Mul, Expr::c(1i64))));
        let input = vec![Event::new(Time::new(0), Time::new(5), Value::Float(10.0))];
        check(&plan, out, &[input], 6);
    }

    #[test]
    fn trend_query_reference_matches_tilt() {
        let (plan, out) = crate::lower::tests::trend_plan();
        let events: Vec<Event<Value>> = (1..=60)
            .map(|t| {
                let v = 100.0 + ((t * 7919) % 13) as f64 - 6.0;
                Event::point(Time::new(t), Value::Float(v))
            })
            .collect();
        check(&plan, out, &[events], 60);
    }
}
