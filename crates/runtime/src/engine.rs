//! Pluggable per-key execution engines for shard workers.
//!
//! A shard owns the *stream-management* half of the runtime — reorder
//! buffers, watermark tracking, emission scheduling — and delegates the
//! *query-execution* half to an [`Engine`]: either one compiled query
//! (the original single-query runtime) or a [`QueryGroup`] serving N
//! registered queries with structurally identical kernel prefixes
//! executed once. Keeping the two runtimes on the same shard code but
//! different engines is what makes the differential harness meaningful:
//! the shared path is validated against the standalone path it replaces.

use std::sync::Arc;

use tilt_core::sharing::{QueryGroup, SharedGroupSession};
use tilt_core::{CompiledQuery, SharedStreamSession};
use tilt_data::{Event, SnapshotBuf, Time, Value};

/// How a shard executes registered queries over one key's stream.
///
/// An engine is shared read-only across all shard threads; each key gets
/// its own [`Engine::Session`].
pub(crate) trait Engine: Clone + Send + Sync + 'static {
    /// Per-key execution state.
    type Session: Send + 'static;

    /// Number of registered queries (one output stream each).
    fn n_queries(&self) -> usize;

    /// Number of input sources the engine reads.
    fn n_sources(&self) -> usize;

    /// The grid emission horizons must align to.
    fn grid(&self) -> i64;

    /// The input lookahead emission must trail the watermark by.
    fn lookahead(&self) -> i64;

    /// The quiet stretch (ticks) after which a fresh session is
    /// observationally identical to one that lived through it — the floor
    /// every idle-eviction TTL is clamped to (see
    /// [`tilt_core::CompiledQuery::state_horizon`]).
    fn state_horizon(&self) -> i64;

    /// Opens a fresh session for one key, rooted at `start` (the runtime
    /// start for first contact, or the eviction frontier on revival).
    fn open(&self, start: Time) -> Self::Session;

    /// The session's emission watermark.
    fn watermark(session: &Self::Session) -> Time;

    /// Appends in-order matured events to one source.
    fn push(session: &mut Self::Session, source: usize, events: &[Event<Value>]);

    /// Advances emission toward `upto`; returns one finalized buffer per
    /// query, in registration order.
    fn advance(session: &mut Self::Session, upto: Time) -> Vec<SnapshotBuf<Value>>;

    /// End-of-stream flush through `end`; one buffer per query.
    fn flush(session: &mut Self::Session, end: Time) -> Vec<SnapshotBuf<Value>>;

    /// `(kernels executed, kernel executions saved by dedup)` per session
    /// advance — the observable accounting of prefix sharing.
    fn kernel_counts(&self) -> (u64, u64);
}

impl Engine for Arc<CompiledQuery> {
    type Session = SharedStreamSession;

    fn n_queries(&self) -> usize {
        1
    }

    fn n_sources(&self) -> usize {
        self.query().inputs().len()
    }

    fn grid(&self) -> i64 {
        CompiledQuery::grid(self)
    }

    fn lookahead(&self) -> i64 {
        self.boundary().max_input_lookahead(self.query())
    }

    fn state_horizon(&self) -> i64 {
        CompiledQuery::state_horizon(self)
    }

    fn open(&self, start: Time) -> SharedStreamSession {
        self.shared_stream_session(start)
    }

    fn watermark(session: &SharedStreamSession) -> Time {
        session.watermark()
    }

    fn push(session: &mut SharedStreamSession, source: usize, events: &[Event<Value>]) {
        session.push_events(source, events);
    }

    fn advance(session: &mut SharedStreamSession, upto: Time) -> Vec<SnapshotBuf<Value>> {
        vec![session.advance_to(upto)]
    }

    fn flush(session: &mut SharedStreamSession, end: Time) -> Vec<SnapshotBuf<Value>> {
        vec![session.flush_to(end)]
    }

    fn kernel_counts(&self) -> (u64, u64) {
        (self.num_kernels() as u64, 0)
    }
}

impl Engine for Arc<QueryGroup> {
    type Session = SharedGroupSession;

    fn n_queries(&self) -> usize {
        self.num_queries()
    }

    fn n_sources(&self) -> usize {
        QueryGroup::n_sources(self)
    }

    fn grid(&self) -> i64 {
        QueryGroup::grid(self)
    }

    fn lookahead(&self) -> i64 {
        self.max_input_lookahead()
    }

    fn state_horizon(&self) -> i64 {
        QueryGroup::state_horizon(self)
    }

    fn open(&self, start: Time) -> SharedGroupSession {
        self.shared_session(start)
    }

    fn watermark(session: &SharedGroupSession) -> Time {
        session.watermark()
    }

    fn push(session: &mut SharedGroupSession, source: usize, events: &[Event<Value>]) {
        session.push_events(source, events);
    }

    fn advance(session: &mut SharedGroupSession, upto: Time) -> Vec<SnapshotBuf<Value>> {
        session.advance_to(upto)
    }

    fn flush(session: &mut SharedGroupSession, end: Time) -> Vec<SnapshotBuf<Value>> {
        session.flush_to(end)
    }

    fn kernel_counts(&self) -> (u64, u64) {
        let distinct = self.distinct_kernels() as u64;
        (distinct, self.kernel_instances() as u64 - distinct)
    }
}
