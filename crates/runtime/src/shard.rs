//! The shard worker: one thread owning a disjoint subset of keys.
//!
//! Each shard receives batches of keyed events over a bounded channel,
//! buffers them per key and per source in a reorder buffer, and serves a
//! dynamic set of **cells** — execution units pairing a
//! [`tilt_core::sharing::QueryGroup`] with per-query settings (allowed
//! lateness, emission cadence) and a *join frontier*. Queries registered
//! before start with identical settings share one cell (and therefore
//! kernel-prefix dedup); a query attached to the running service gets its
//! own cell rooted at the negotiated frontier, so its output from that
//! frontier onward is identical to a standalone run over the post-frontier
//! suffix.
//!
//! Per cell, per source, the watermark is `max event start seen − the
//! cell's allowed lateness`, floored by explicit watermark messages; the
//! cell watermark is the minimum over the sources its group reads, and —
//! whenever it crosses a new emission grid point — the matured prefix of
//! every active key's buffer drains into that key's cell session and the
//! session advances. Reorder buffers are **shared across cells**: each
//! event is buffered once and released only once every cell has matured
//! past it (a per-event `taken` flag tracks whether *any* cell consumed
//! it, so fully unconsumed events are still dropped-and-counted exactly
//! once).
//!
//! Attach and detach arrive as in-band control messages, so their position
//! in each shard's message stream is deterministic relative to event
//! batches. Detach edits the cell's [`QueryGroup`] incrementally
//! ([`QueryGroup::without_member`]) and migrates live sessions in place;
//! removing a cell's last member tears the cell's per-key sessions and
//! tombstone outputs down (the reclamation counted in
//! `RuntimeStats::sessions_reclaimed`).
//!
//! Keys never migrate between shards, so shards share nothing and run
//! synchronization-free, the runtime analogue of the paper's §6.2
//! partition workers. The hardening mechanisms of PR 3 — idle eviction
//! (now also wall-clock driven via `RuntimeConfig::wall_clock_ttl`),
//! reorder-buffer backstop caps, and per-key panic quarantine — all
//! operate per key, across every cell the key touches.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::Instant;

use tilt_core::sharing::{GroupSessionIn, QueryGroup, SharedGroupSession};
use tilt_data::{BufPool, Event, SnapshotBuf, Time, Value};
use tilt_state::{Dec, Enc, StateError};

use crate::durability::SpillStore;
use crate::stats::{ControlEvent, QueryCounters, SharedStats, SinkTable};
use crate::{BackstopPolicy, KeyedEvent, RuntimeConfig};

/// Messages flowing from the service handle to a shard worker.
pub(crate) enum ShardMsg {
    /// A batch of events, already routed to this shard.
    Batch(Vec<KeyedEvent>),
    /// An explicit promise that source `source` will deliver no further
    /// events *starting* at or before `time`.
    Watermark { source: usize, time: Time },
    /// A query joins the running service as a new cell.
    Attach(Arc<CellSpec>),
    /// A query leaves the running service.
    Detach {
        /// The global query slot being detached.
        qid: usize,
    },
    /// Serialize the shard's full state (keys, tombstones, watermarks,
    /// emission progress) and reply with the record payload. In-band, so
    /// the snapshot reflects exactly the messages enqueued before it.
    /// After replying the shard parks on `resume` until the coordinator
    /// has read the service-wide counters — otherwise a shard could keep
    /// advancing (consuming events its payload still carries as pending)
    /// while the counters are being recorded, tearing the snapshot's
    /// conservation ledger.
    Checkpoint {
        /// Where the serialized shard record goes.
        reply: SyncSender<Vec<u8>>,
        /// Barrier: dropped or signalled by the coordinator once the
        /// counter snapshot is taken.
        resume: std::sync::mpsc::Receiver<()>,
    },
    /// Install a previously checkpointed shard record; sent as a shard's
    /// first message after a restore spawn.
    Restore {
        /// The shard record written by [`ShardMsg::Checkpoint`].
        payload: Vec<u8>,
        /// Install outcome (decode/roster errors travel back typed).
        reply: SyncSender<Result<(), StateError>>,
    },
    /// Serialize one key out of this shard for migration and forget it;
    /// replies `None` when the key holds no live state here.
    MigrateOut {
        /// The key leaving this shard.
        key: u64,
        /// Where the serialized key bundle goes.
        reply: SyncSender<Option<Vec<u8>>>,
    },
    /// Splice a migrated key's state into this shard.
    MigrateIn {
        /// The key arriving on this shard.
        key: u64,
        /// The bundle produced by [`ShardMsg::MigrateOut`].
        bundle: Vec<u8>,
    },
    /// Report per-key load scores (the input to
    /// [`crate::StreamService::rebalance`]).
    Census {
        /// Where the `(key, score)` list goes.
        reply: SyncSender<Vec<(u64, u64)>>,
    },
    /// Final horizon: flush every session through `time` when the channel
    /// closes.
    FinishAt(Time),
}

/// Everything a shard needs to instantiate one cell: built once by the
/// control plane, shared read-only by every shard.
pub(crate) struct CellSpec {
    /// The (deduplicated) execution plan for the cell's member queries.
    pub(crate) group: Arc<QueryGroup>,
    /// Global query slot per group member, in member order.
    pub(crate) qids: Vec<usize>,
    /// The join frontier: per-key sessions root here, and events starting
    /// before it never reach this cell.
    pub(crate) root: Time,
    /// The cell's allowed lateness (ticks).
    pub(crate) lateness: i64,
    /// The cell's emission cadence (minimum watermark advance between
    /// kernel re-runs).
    pub(crate) emit_interval: i64,
}

/// How many channel messages a shard folds into one watermark
/// recomputation / emission cycle: after a blocking `recv`, anything
/// already queued is drained (up to this bound, so sink latency stays
/// bounded) before `maybe_advance` runs once for the whole batch.
const MAX_MSGS_PER_CYCLE: usize = 64;

/// One buffered out-of-order event plus whether any cell consumed it.
#[derive(Debug)]
pub(crate) struct Buffered {
    pub(crate) event: Event<Value>,
    /// Set when some cell pushed the event into its session; events
    /// released with this still unset were useful to nobody and are
    /// counted as late-dropped (exactly once, however many cells exist).
    pub(crate) taken: bool,
}

/// A per-key, per-source reorder buffer kept sorted by `(start, end)` at
/// insertion time (monotone/binary insertion), so maturity scans never
/// re-sort.
///
/// Streams are mostly in order in practice: the fast path is an O(1)
/// append, and a displaced event pays a shift bounded by how far out of
/// order it actually arrived.
#[derive(Debug, Default)]
pub(crate) struct ReorderBuf {
    events: Vec<Buffered>,
}

impl ReorderBuf {
    /// Inserts `ev` at its sorted position; ties keep arrival order
    /// (stable, matching a stable sort).
    pub(crate) fn insert(&mut self, ev: Event<Value>) {
        let key = (ev.start, ev.end);
        let item = Buffered { event: ev, taken: false };
        if self.events.last().is_none_or(|last| (last.event.start, last.event.end) <= key) {
            self.events.push(item);
            return;
        }
        let i = self.events.partition_point(|e| (e.event.start, e.event.end) <= key);
        self.events.insert(i, item);
    }

    /// The matured prefix for one cell: every buffered event starting
    /// before `upto`, in time order, mutable so consumers can mark events
    /// taken. Events starting at or after the watermark stay out of reach —
    /// an earlier-starting straggler could still arrive and must sort in
    /// front of them.
    pub(crate) fn matured_mut(&mut self, upto: Time) -> &mut [Buffered] {
        let n = self.events.partition_point(|e| e.event.start < upto);
        &mut self.events[..n]
    }

    /// Removes every event starting before `upto` — callers pass the
    /// minimum maturity over all consuming cells, so nothing a cell still
    /// needs is released. Returns `(released, untaken)`.
    pub(crate) fn release(&mut self, upto: Time) -> (usize, usize) {
        self.release_with(upto, |_| {})
    }

    /// Like [`ReorderBuf::release`], calling `observe` on each released
    /// event first (the residency-histogram hook; the observation pass
    /// rides the drop scan the release pays anyway).
    pub(crate) fn release_with(
        &mut self,
        upto: Time,
        mut observe: impl FnMut(&Buffered),
    ) -> (usize, usize) {
        let n = self.events.partition_point(|e| e.event.start < upto);
        let mut untaken = 0;
        for e in &self.events[..n] {
            if !e.taken {
                untaken += 1;
            }
            observe(e);
        }
        self.events.drain(..n);
        (n, untaken)
    }

    /// Removes and returns the `n` oldest buffered events (the backstop's
    /// force-drain path), in time order.
    pub(crate) fn drain_oldest(&mut self, n: usize) -> Vec<Buffered> {
        let n = n.min(self.events.len());
        self.events.drain(..n).collect()
    }

    /// Whether any events are pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }
}

/// One cell as a shard serves it: the shared plan plus per-shard emission
/// progress.
struct Cell {
    group: Arc<QueryGroup>,
    /// Global query slot per group member, in member order.
    qids: Vec<usize>,
    root: Time,
    lateness: i64,
    emit_interval: i64,
    // Cached from `group` (refreshed after incremental edits).
    grid: i64,
    lookahead: i64,
    n_sources: usize,
    kernel_counts: (u64, u64),
    /// Per member (parallel to `qids`): the cached attribution counters,
    /// so emit/advance paths never touch the per-query table lock.
    counters: Vec<QueryCounters>,
    /// Kernel work charged to each member per advance, in millikernels
    /// (`distinct × 1000 / members` — shared-kernel work splits evenly).
    millis_per_member: u64,
    /// The last emission target this shard advanced the cell's keys to.
    emitted: Time,
    /// False once every member detached; dead cells hold no sessions.
    alive: bool,
}

impl Cell {
    fn new(spec: &CellSpec, stats: &SharedStats) -> Cell {
        let mut cell = Cell {
            group: Arc::clone(&spec.group),
            qids: spec.qids.clone(),
            root: spec.root,
            lateness: spec.lateness,
            emit_interval: spec.emit_interval,
            grid: 1,
            lookahead: 0,
            n_sources: 0,
            kernel_counts: (0, 0),
            counters: Vec::new(),
            millis_per_member: 0,
            emitted: spec.root,
            alive: true,
        };
        cell.refresh(stats);
        cell
    }

    /// Re-derives the cached plan facts after the group was edited.
    fn refresh(&mut self, stats: &SharedStats) {
        self.grid = self.group.grid();
        self.lookahead = self.group.max_input_lookahead();
        self.n_sources = self.group.n_sources();
        let distinct = self.group.distinct_kernels() as u64;
        self.kernel_counts = (distinct, self.group.kernel_instances() as u64 - distinct);
        self.counters = stats.query_counters(&self.qids);
        self.millis_per_member =
            if self.qids.is_empty() { 0 } else { distinct * 1000 / self.qids.len() as u64 };
    }

    /// Accounts one advance/flush of this cell's kernels: the shard-wide
    /// run/saved counters, plus (with detailed instrumentation) the
    /// per-member millikernel attribution.
    fn note_kernels(&self, stats: &SharedStats) {
        stats.kernels_run.add(self.kernel_counts.0);
        stats.kernels_saved.add(self.kernel_counts.1);
        if stats.detailed {
            for qc in &self.counters {
                qc.kernel_millis.add(self.millis_per_member);
            }
        }
    }

    /// The cell's low-watermark: the min across its sources of
    /// `max(max_start − allowed_lateness, explicit)`. No future event this
    /// cell accepts may start before it.
    fn watermark(&self, max_start: &[Time], explicit: &[Time]) -> Time {
        (0..self.n_sources)
            .map(|s| max_start[s].saturating_add(-self.lateness).max(explicit[s]))
            .min()
            .unwrap_or(Time::MIN)
    }
}

/// One emission cycle's view of a cell.
#[derive(Clone, Copy)]
struct CellPlan {
    alive: bool,
    wm: Time,
    target: Time,
    due: bool,
}

/// One key's state within one cell: the group session plus per-source push
/// frontiers.
struct CellSession {
    session: SharedGroupSession,
    /// End of the last event pushed into the session, per source: the
    /// frontier behind which arrivals are unsalvageably late *for this
    /// cell*.
    pushed_end: Vec<Time>,
    /// Whether events were pushed since the session last advanced.
    dirty: bool,
}

impl CellSession {
    fn open(cell: &Cell, root: Time) -> CellSession {
        CellSession {
            session: cell.group.shared_session(root),
            pushed_end: vec![root; cell.n_sources],
            dirty: false,
        }
    }
}

/// Per-key state: the shared reorder buffers plus one session per cell the
/// key participates in.
struct KeyState {
    /// Out-of-order arrivals per source, held until every cell's watermark
    /// passes them. Shared across cells: each event is buffered once.
    pending: Vec<ReorderBuf>,
    /// Parallel to the shard's cell roster; `None` until the cell sees an
    /// event for this key at or after its root.
    cells: Vec<Option<CellSession>>,
    /// Finalized output events per global query slot (drained by `finish`
    /// unless that query has a sink).
    out: Vec<Vec<Event<Value>>>,
    /// The newest event end accepted for this key (event-time idleness
    /// clock for the eviction sweep).
    last_end: Time,
    /// When this key last received an event (wall-clock idleness clock).
    last_touch: Instant,
    /// Whether the key is already on the shard's active-visit queue.
    queued: bool,
}

/// A retired key: evicted for idleness (revivable per cell at its
/// frontier) or quarantined after a kernel panic (never revived). Holds
/// only the accumulated non-sink output and per-cell frontiers — the
/// sessions and buffers are gone.
struct Retired {
    /// Per cell index at eviction time: where a revival re-creates the
    /// cell's session; arrivals starting before every frontier are
    /// unsalvageably late. `None` for cells the key had no session in.
    frontiers: Vec<Option<Time>>,
    /// Accumulated per-query output (returned at shutdown).
    out: Vec<Vec<Event<Value>>>,
    /// Whether the key was quarantined by a kernel panic (refuses all
    /// further events).
    quarantined: bool,
}

/// A key's durable state, decoded from a checkpoint, spill, or migration
/// bundle but not yet attached to a shard roster (cell indices are slots
/// in the roster the bundle was written against).
struct DecodedKey {
    last_end: Time,
    queued: bool,
    pending: Vec<ReorderBuf>,
    cells: Vec<Option<DecodedSession>>,
    out: Vec<Vec<Event<Value>>>,
}

/// One cell session's durable state: everything `GroupSessionIn` needs to
/// rebuild, plus the shard-side push frontiers and dirty flag.
struct DecodedSession {
    watermark: Time,
    histories: Vec<SnapshotBuf<Value>>,
    pushed_end: Vec<Time>,
    dirty: bool,
}

/// Everything a shard returns when it drains and exits.
pub(crate) struct ShardOutput {
    /// Finalized output per key, one vector per global query slot (empty
    /// when a sink consumed them; inner vectors may be shorter than the
    /// final slot count — the service pads).
    pub(crate) per_key: Vec<(u64, Vec<Vec<Event<Value>>>)>,
}

pub(crate) struct Shard {
    id: usize,
    cfg: RuntimeConfig,
    cells: Vec<Cell>,
    /// Max sources over all cells ever attached (monotone).
    n_sources: usize,
    /// The effective event-time idle TTL: `cfg.key_ttl` clamped up to the
    /// widest live cell's state horizon, so a retired-then-revived session
    /// is observationally identical to one that lived through the gap.
    ttl: Option<i64>,
    keys: HashMap<u64, KeyState>,
    /// Evicted and quarantined keys (see [`Retired`]).
    retired: HashMap<u64, Retired>,
    /// Per source: the largest event *start* observed on this shard.
    ///
    /// Watermarks are defined over starts, not ends: an event contributes
    /// value all the way back to its start, so a not-yet-arrived event with
    /// `start ≥ wm` can never change any tick at or before `wm` — which is
    /// exactly the finality emission needs.
    max_start: Vec<Time>,
    /// The largest event end observed (final flush horizon).
    max_end: Time,
    /// Per source: the largest explicit watermark received.
    explicit: Vec<Time>,
    /// The most conservative cell's emission progress (sweep cadence).
    emitted: Time,
    /// Where the last idle-eviction sweep ran (sweeps are amortized to at
    /// most one full key scan per `ttl / 2` ticks of emission progress).
    last_sweep: Time,
    /// When the last wall-clock sweep ran.
    last_wall_sweep: Instant,
    /// Keys needing a visit on the next emission cycle. Emission cost
    /// scales with this set, not with the total key population.
    active: Vec<u64>,
    /// The cold store evictions spill to instead of flushing, when the
    /// service was built with one.
    spill: Option<Arc<SpillStore>>,
    /// Keys currently living in the spill store: no in-memory state at
    /// all, revived verbatim from disk on their next arrival.
    spilled: HashSet<u64>,
    sinks: Arc<SinkTable>,
    stats: Arc<SharedStats>,
    /// Recycles intermediate kernel buffers across every advance on this
    /// shard (one pool per worker, not per key — no per-key memory).
    pool: BufPool<Value>,
    /// Scratch for batching drained events into `push_events` calls.
    scratch: Vec<Event<Value>>,
    /// Thread-local buffer for the per-event ingest-lag samples; drained
    /// into the shared registry once per emission cycle so the accept hot
    /// path pays one array increment instead of three atomic RMWs.
    ingest_lag_scratch: tilt_obs::LocalHistogram,
    /// Same batching for per-event reorder-residency samples.
    residency_scratch: tilt_obs::LocalHistogram,
}

impl Shard {
    pub(crate) fn new(
        id: usize,
        cells: &[Arc<CellSpec>],
        cfg: RuntimeConfig,
        sinks: Arc<SinkTable>,
        stats: Arc<SharedStats>,
        spill: Option<Arc<SpillStore>>,
    ) -> Self {
        let cells: Vec<Cell> = cells.iter().map(|spec| Cell::new(spec, &stats)).collect();
        let n_sources = cells.iter().map(|c| c.n_sources).max().unwrap_or(0);
        let mut shard = Shard {
            id,
            cfg,
            cells,
            n_sources,
            ttl: None,
            keys: HashMap::new(),
            retired: HashMap::new(),
            max_start: vec![Time::MIN; n_sources],
            max_end: Time::MIN,
            explicit: vec![Time::MIN; n_sources],
            emitted: cfg.start,
            last_sweep: cfg.start,
            last_wall_sweep: Instant::now(),
            active: Vec::new(),
            spill,
            spilled: HashSet::new(),
            sinks,
            stats,
            pool: BufPool::new(),
            scratch: Vec::new(),
            ingest_lag_scratch: tilt_obs::LocalHistogram::new(),
            residency_scratch: tilt_obs::LocalHistogram::new(),
        };
        shard.refresh_ttl();
        shard
    }

    /// Re-derives the effective TTL after the cell roster changed: the
    /// configured TTL clamped up to the widest live cell's state horizon.
    fn refresh_ttl(&mut self) {
        let horizon = self
            .cells
            .iter()
            .filter(|c| c.alive)
            .map(|c| c.group.state_horizon())
            .max()
            .unwrap_or(0);
        self.ttl = self.cfg.key_ttl.map(|t| t.max(horizon).max(1));
    }

    /// The shard main loop: drain the channel, then flush and exit.
    ///
    /// Watermark recomputation is batched: after each blocking `recv`,
    /// every message already sitting in the channel (bounded by
    /// [`MAX_MSGS_PER_CYCLE`]) is folded in before `maybe_advance`
    /// recomputes cell watermarks and visits active keys once. With a
    /// wall-clock TTL configured, the blocking receive times out so idle
    /// shards still get to run their wall-clock sweeps.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMsg>) -> ShardOutput {
        let mut finish_at: Option<Time> = None;
        let wall_tick =
            self.cfg.wall_clock_ttl.map(|t| (t / 2).max(std::time::Duration::from_millis(1)));
        loop {
            let first = match wall_tick {
                Some(tick) => match rx.recv_timeout(tick) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => break,
                },
            };
            match first {
                Some(msg) => {
                    self.apply(msg, &mut finish_at);
                    let mut folded = 1usize;
                    while folded < MAX_MSGS_PER_CYCLE {
                        match rx.try_recv() {
                            Ok(msg) => {
                                self.apply(msg, &mut finish_at);
                                folded += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    self.maybe_advance();
                }
                None => self.wall_sweep(),
            }
        }
        self.flush(finish_at)
    }

    /// Folds one channel message into shard state (no emission).
    fn apply(&mut self, msg: ShardMsg, finish_at: &mut Option<Time>) {
        match msg {
            ShardMsg::Batch(events) => {
                self.stats.queue_depth[self.id].sub(events.len() as i64);
                for ev in events {
                    self.accept(ev);
                }
            }
            ShardMsg::Watermark { source, time } => {
                if source < self.n_sources {
                    let w = &mut self.explicit[source];
                    *w = (*w).max(time);
                }
            }
            ShardMsg::Attach(spec) => self.attach(&spec),
            ShardMsg::Detach { qid } => self.detach(qid),
            ShardMsg::Checkpoint { reply, resume } => {
                let _ = reply.send(self.checkpoint_payload());
                let _ = resume.recv();
            }
            ShardMsg::Restore { payload, reply } => {
                let _ = reply.send(self.install(&payload));
            }
            ShardMsg::MigrateOut { key, reply } => {
                let _ = reply.send(self.migrate_out(key));
            }
            ShardMsg::MigrateIn { key, bundle } => self.migrate_in(key, bundle),
            ShardMsg::Census { reply } => {
                let _ = reply.send(self.census());
            }
            ShardMsg::FinishAt(time) => *finish_at = Some(time),
        }
    }

    /// Admits a new cell: later events at or after its root feed it.
    fn attach(&mut self, spec: &CellSpec) {
        let cell = Cell::new(spec, &self.stats);
        if cell.n_sources > self.n_sources {
            self.n_sources = cell.n_sources;
            self.max_start.resize(self.n_sources, Time::MIN);
            self.explicit.resize(self.n_sources, Time::MIN);
        }
        self.cells.push(cell);
        self.refresh_ttl();
    }

    /// Removes one query. If its cell keeps other members, the cell's
    /// group is edited incrementally and live sessions migrate in place;
    /// otherwise the whole cell dies and its per-key sessions and tombstone
    /// slots are reclaimed.
    fn detach(&mut self, qid: usize) {
        let Some(ci) = self.cells.iter().position(|c| c.alive && c.qids.contains(&qid)) else {
            return;
        };
        let mi = self.cells[ci].qids.iter().position(|q| *q == qid).expect("member found");
        if self.cells[ci].qids.len() == 1 {
            self.cells[ci].alive = false;
            for state in self.keys.values_mut() {
                if state.cells.len() > ci && state.cells[ci].take().is_some() {
                    self.stats.sessions_reclaimed.inc();
                }
                if state.out.len() > qid && !state.out[qid].is_empty() {
                    state.out[qid] = Vec::new();
                }
            }
            for r in self.retired.values_mut() {
                if r.frontiers.len() > ci && r.frontiers[ci].take().is_some() {
                    self.stats.sessions_reclaimed.inc();
                }
                if r.out.len() > qid && !r.out[qid].is_empty() {
                    r.out[qid] = Vec::new();
                }
            }
        } else {
            let edited = Arc::new(
                self.cells[ci].group.without_member(mi).expect("detach keeps the group non-empty"),
            );
            self.cells[ci].qids.remove(mi);
            self.cells[ci].group = Arc::clone(&edited);
            let stats = Arc::clone(&self.stats);
            self.cells[ci].refresh(&stats);
            for state in self.keys.values_mut() {
                if let Some(Some(cs)) = state.cells.get_mut(ci).map(Option::as_mut) {
                    cs.session.migrate_group(Arc::clone(&edited));
                }
                if state.out.len() > qid && !state.out[qid].is_empty() {
                    state.out[qid] = Vec::new();
                }
            }
            for r in self.retired.values_mut() {
                if r.out.len() > qid && !r.out[qid].is_empty() {
                    r.out[qid] = Vec::new();
                }
            }
        }
        self.refresh_ttl();
    }

    /// Grows a key's per-source and per-cell vectors to the current roster.
    fn sync_key(state: &mut KeyState, n_cells: usize, n_sources: usize) {
        if state.pending.len() < n_sources {
            state.pending.resize_with(n_sources, ReorderBuf::default);
        }
        if state.cells.len() < n_cells {
            state.cells.resize_with(n_cells, || None);
        }
    }

    /// Routes one event into its key's reorder buffer, creating cell
    /// sessions on first contact and reviving evicted keys.
    fn accept(&mut self, ev: KeyedEvent) {
        if ev.source >= self.n_sources {
            // No registered query reads this source — an attach-first
            // service fed before its first attach, or an event racing an
            // in-flight attach that widens the source set. Refuse and
            // count it like any other event no cell can use; panicking
            // the shard over a data-plane input would take every other
            // key down with it.
            self.stats.late_dropped.inc();
            return;
        }
        self.max_start[ev.source] = self.max_start[ev.source].max(ev.event.start);
        self.max_end = self.max_end.max(ev.event.end);
        if self.stats.detailed {
            // Event-time lag at ingest: how far this arrival trails the
            // newest start seen on its source (0 = in order). `max_start`
            // was just raised to at least this event's start, so the
            // difference is never negative.
            let lag = self.max_start[ev.source] - ev.event.start;
            self.ingest_lag_scratch.record(lag as u64);
        }

        // Spilled keys revive from disk on first contact, *before* any
        // admission checks: the bundle holds the key's exact pre-eviction
        // state (sessions, reorder buffers, accumulated output), so a
        // revived key is byte-identical to one that was never spilled.
        if !self.spilled.is_empty() && self.spilled.remove(&ev.key) {
            self.revive_from_spill(ev.key);
        }

        // Retired keys: quarantined ones refuse all events; evicted ones
        // revive if the event is usable by at least one cell (arrivals
        // behind every frontier are unsalvageably late — the sessions that
        // could have absorbed them are gone).
        if let Some(r) = self.retired.get(&ev.key) {
            if r.quarantined {
                self.stats.quarantine_dropped.inc();
                return;
            }
            let revivable = self.cells.iter().enumerate().any(|(ci, c)| {
                c.alive
                    && ev.source < c.n_sources
                    && match r.frontiers.get(ci).copied().flatten() {
                        Some(f) => ev.event.start >= f,
                        None => ev.event.start >= c.root,
                    }
            });
            if !revivable {
                self.stats.late_dropped.inc();
                return;
            }
            let r = self.retired.remove(&ev.key).expect("checked above");
            self.stats.revivals.inc();
            self.stats.live_keys.add(1);
            self.stats.note_control(ControlEvent::Revive { shard: self.id, key: ev.key });
            let mut cells: Vec<Option<CellSession>> = Vec::with_capacity(self.cells.len());
            let mut last_end = self.cfg.start;
            for (ci, c) in self.cells.iter().enumerate() {
                let frontier = if c.alive { r.frontiers.get(ci).copied().flatten() } else { None };
                cells.push(frontier.map(|f| {
                    last_end = last_end.max(f);
                    CellSession::open(c, f)
                }));
            }
            self.keys.insert(
                ev.key,
                KeyState {
                    pending: (0..self.n_sources).map(|_| ReorderBuf::default()).collect(),
                    cells,
                    out: r.out,
                    last_end,
                    last_touch: Instant::now(),
                    queued: false,
                },
            );
        }

        let n_cells = self.cells.len();
        let n_sources = self.n_sources;
        let cells = &self.cells;
        let state = match self.keys.entry(ev.key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.stats.keys.inc();
                self.stats.live_keys.add(1);
                e.insert(KeyState {
                    pending: (0..n_sources).map(|_| ReorderBuf::default()).collect(),
                    cells: (0..n_cells).map(|_| None).collect(),
                    out: Vec::new(),
                    last_end: self.cfg.start,
                    last_touch: Instant::now(),
                    queued: false,
                })
            }
        };
        Self::sync_key(state, n_cells, n_sources);
        if self.cfg.wall_clock_ttl.is_some() {
            // The idleness clock only matters when wall-clock eviction is
            // on; skip the per-event clock read otherwise.
            state.last_touch = Instant::now();
        }

        // The event is admitted if at least one cell can still use it:
        // a cell with a session accepts anything at or after its pushed
        // frontier; a cell without one opens a session when the event
        // starts at or after its join root. Events behind every cell are
        // dropped and counted once, however many cells are registered.
        let mut admitted = false;
        let detailed = self.stats.detailed;
        for (ci, c) in cells.iter().enumerate() {
            if !c.alive || ev.source >= c.n_sources {
                continue;
            }
            let cell_admits = match &state.cells[ci] {
                Some(cs) => {
                    let frontier = cs.pushed_end[ev.source].max(cs.session.watermark());
                    ev.event.start >= frontier
                }
                None => {
                    if ev.event.start >= c.root {
                        state.cells[ci] = Some(CellSession::open(c, c.root));
                        true
                    } else {
                        false
                    }
                }
            };
            if cell_admits {
                admitted = true;
            } else if detailed {
                // Per-query late attribution: this cell's members each
                // lost the event to their lateness bound, whether or not
                // another cell still admits it. The service-wide
                // `late_dropped` counts it only when nobody does.
                for qc in &c.counters {
                    qc.late.inc();
                }
            }
        }
        if !admitted {
            self.stats.late_dropped.inc();
            return;
        }
        state.last_end = state.last_end.max(ev.event.end);

        // Reorder-buffer backstop: bound what a stalled watermark can pin.
        let key_full =
            self.cfg.max_pending_per_key.is_some_and(|cap| state.pending[ev.source].len() >= cap);
        let shard_full = self
            .cfg
            .max_pending_per_shard
            .is_some_and(|cap| self.stats.reorder_pending[self.id].get() >= cap as i64);
        if (key_full || shard_full) && self.cfg.backstop == BackstopPolicy::DropNewest {
            self.stats.backstop_dropped.inc();
            return;
        }

        state.pending[ev.source].insert(ev.event);
        let buffered = state.pending[ev.source].len();
        self.stats.reorder_buffered.inc();
        self.stats.reorder_pending[self.id].add(1);
        if !state.queued {
            state.queued = true;
            self.active.push(ev.key);
        }
        if key_full {
            let cap = self.cfg.max_pending_per_key.expect("key_full implies a cap");
            self.force_drain_buf(ev.key, ev.source, buffered.saturating_sub(cap / 2));
        } else if shard_full {
            self.force_drain_shard();
        }
    }

    /// One emission cycle's plan: each cell's watermark, emission target,
    /// and whether that target is due (at least `emit_interval` past the
    /// cell's previous target, snapped to its kernel grid).
    fn cell_plans(&self) -> Vec<CellPlan> {
        self.cells
            .iter()
            .map(|c| {
                if !c.alive {
                    return CellPlan { alive: false, wm: Time::MIN, target: Time::MIN, due: false };
                }
                let wm = c.watermark(&self.max_start, &self.explicit);
                let target = Time::new(wm.ticks().saturating_sub(c.lookahead)).align_down(c.grid);
                let due = target.ticks() >= c.emitted.ticks().saturating_add(c.emit_interval);
                CellPlan { alive: true, wm, target, due }
            })
            .collect()
    }

    /// Advances keys when at least one cell's watermark has crossed a new
    /// emission point.
    ///
    /// Only keys on the active queue are visited, so a cycle costs
    /// O(active keys), not O(total keys). A visited key is re-queued while
    /// it still has buffered input or pushed-but-unemitted history; with a
    /// sink it is additionally re-queued while its eager advances keep
    /// producing output. Kernel execution runs under `catch_unwind`: a
    /// panicking key is quarantined instead of unwinding the shard thread.
    fn maybe_advance(&mut self) {
        let plans = self.cell_plans();
        let shard_wm = plans.iter().filter(|p| p.alive).map(|p| p.wm).min().unwrap_or(Time::MIN);
        self.stats.shard_watermark[self.id].set(shard_wm.ticks());
        // Publish the per-event samples batched since the last cycle (a
        // no-op when nothing buffered): live snapshot readers see them at
        // cycle granularity instead of paying atomics per event.
        self.ingest_lag_scratch.flush_into(&self.stats.ingest_lag[self.id]);
        self.residency_scratch.flush_into(&self.stats.reorder_residency[self.id]);
        if let Some(ttl) = self.cfg.wall_clock_ttl {
            if self.last_wall_sweep.elapsed() >= ttl / 2 {
                self.wall_sweep();
            }
        }
        if !plans.iter().any(|p| p.due) {
            return;
        }
        let cycle_start = if self.stats.detailed {
            // Per-cell watermark lag: ticks between the newest start the
            // shard has seen and the emission point each advancing cell
            // had finalized *before* this cycle — how stale finalization
            // was at the moment it caught up. Measured against the
            // previous target (not the fresh watermark, which is derived
            // from the same `newest` and would be the lateness constant),
            // it spreads with emission cadence and ingest burstiness.
            let newest = self.max_start.iter().copied().max().unwrap_or(Time::MIN);
            if newest > Time::MIN {
                for (c, p) in self.cells.iter().zip(&plans) {
                    if p.alive && p.due && c.emitted > Time::MIN {
                        let lag = (newest - c.emitted).max(0);
                        self.stats.watermark_lag_hist[self.id].record(lag as u64);
                    }
                }
            }
            Some(Instant::now())
        } else {
            None
        };
        for (cell, plan) in self.cells.iter_mut().zip(&plans) {
            if plan.due {
                cell.emitted = plan.target;
            }
        }
        self.emitted =
            self.cells.iter().filter(|c| c.alive).map(|c| c.emitted).min().unwrap_or(self.emitted);

        let eager = self.sinks.any();
        let mut visit = std::mem::take(&mut self.active);
        let mut panicked_keys: Vec<u64> = Vec::new();
        {
            let id = self.id;
            let keys = &mut self.keys;
            let cells = &self.cells;
            let pool = &mut self.pool;
            let scratch = &mut self.scratch;
            let residency = &mut self.residency_scratch;
            let sinks = &self.sinks;
            let stats = &self.stats;
            let n_cells = cells.len();
            let n_sources = self.n_sources;
            for key in visit.drain(..) {
                let Some(state) = keys.get_mut(&key) else { continue };
                state.queued = false;
                Self::sync_key(state, n_cells, n_sources);
                let mut revisit = false;
                let panicked = catch_unwind(AssertUnwindSafe(|| {
                    // Inside the containment boundary: a Panic policy here
                    // exercises the same quarantine path a kernel bug would.
                    tilt_fault::fail_point!("runtime.kernel.exec");
                    Self::drain_and_release(id, state, cells, &plans, scratch, residency, stats);
                    let mut emitted_any = false;
                    for (ci, cell) in cells.iter().enumerate() {
                        let plan = &plans[ci];
                        if !plan.due {
                            continue;
                        }
                        let Some(cs) = state.cells[ci].as_mut() else { continue };
                        if (cs.dirty || eager) && plan.target > cs.session.watermark() {
                            let bufs = cs.session.advance_to_with(plan.wm, pool);
                            cs.dirty = false;
                            cell.note_kernels(stats);
                            for (mi, buf) in bufs.into_iter().enumerate() {
                                let emitted = buf.to_events();
                                pool.put(buf);
                                emitted_any |= !emitted.is_empty();
                                Self::deliver(
                                    key,
                                    cell.qids[mi],
                                    emitted,
                                    &mut state.out,
                                    sinks,
                                    stats,
                                );
                            }
                        }
                    }
                    revisit = state.cells.iter().flatten().any(|cs| cs.dirty)
                        || state.pending.iter().any(|p| !p.is_empty())
                        || (eager && emitted_any);
                }))
                .is_err();
                if panicked {
                    panicked_keys.push(key);
                } else if revisit {
                    if let Some(state) = keys.get_mut(&key) {
                        state.queued = true;
                        self.active.push(key);
                    }
                }
            }
        }
        for key in panicked_keys {
            self.quarantine(key);
        }
        if let Some(start) = cycle_start {
            self.stats.advance_ns[self.id].record(start.elapsed().as_nanos() as u64);
        }
        self.sweep_idle();
    }

    /// Moves every matured pending event into the sessions of the cells it
    /// is new to, then releases the prefix no cell still needs. Events
    /// released without any cell having taken them are counted as
    /// late-dropped, once.
    fn drain_and_release(
        shard_id: usize,
        state: &mut KeyState,
        cells: &[Cell],
        plans: &[CellPlan],
        scratch: &mut Vec<Event<Value>>,
        residency: &mut tilt_obs::LocalHistogram,
        stats: &SharedStats,
    ) {
        for (source, pending) in state.pending.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            for (ci, cell) in cells.iter().enumerate() {
                if !plans[ci].alive || source >= cell.n_sources {
                    continue;
                }
                let Some(cs) = state.cells[ci].as_mut() else { continue };
                let mut frontier = cs.pushed_end[source].max(cs.session.watermark());
                scratch.clear();
                for b in pending.matured_mut(plans[ci].wm) {
                    if b.event.start < frontier {
                        continue;
                    }
                    b.taken = true;
                    frontier = b.event.end;
                    scratch.push(b.event.clone());
                }
                if !scratch.is_empty() {
                    cs.session.push_events(source, scratch);
                    cs.pushed_end[source] = frontier;
                    cs.dirty = true;
                    scratch.clear();
                }
            }
            // Release below the slowest consumer of *this source*: cells
            // without a session for this key can never use the buffered
            // prefix (their join root postdates it), and cells whose
            // group does not read this source never will either.
            let release_to = state
                .cells
                .iter()
                .enumerate()
                .filter(|(ci, cs)| {
                    plans.get(*ci).is_some_and(|p| p.alive)
                        && cs.is_some()
                        && source < cells[*ci].n_sources
                })
                .map(|(ci, _)| plans[ci].wm)
                .min();
            let upto = release_to.unwrap_or(Time::MAX);
            let (released, untaken) = if stats.detailed && upto < Time::MAX {
                // Reorder-buffer residency: ticks each event waited past
                // its start before the watermark released it. The final
                // flush (upto == MAX) is excluded — its "residency" would
                // measure the shutdown horizon, not buffering.
                pending
                    .release_with(upto, |b| residency.record((upto - b.event.start).max(0) as u64))
            } else {
                pending.release(upto)
            };
            if released > 0 {
                stats.sub_reorder_pending(shard_id, released);
            }
            // Conservation: every released event was either consumed by at
            // least one cell (`taken`) or useful to nobody. Untaken events
            // are late — unless the key has no consuming cells left at all
            // (every interested query detached), in which case the events
            // were in bound and their drop is detach reclamation, not
            // lateness.
            stats.events_consumed.add((released - untaken) as u64);
            if untaken > 0 {
                if release_to.is_some() {
                    stats.late_dropped.add(untaken as u64);
                } else {
                    stats.detach_dropped.add(untaken as u64);
                }
            }
        }
    }

    /// Retires keys idle past the event-time TTL: each cell session is
    /// advanced through its current horizon (emitting its quiet tail),
    /// then torn down to a tombstone carrying per-cell eviction frontiers.
    /// Amortized to one key scan per `ttl / 2` ticks of emission progress.
    fn sweep_idle(&mut self) {
        let Some(ttl) = self.ttl else { return };
        if self.emitted - self.last_sweep < (ttl / 2).max(1) {
            return;
        }
        self.last_sweep = self.emitted;
        let cutoff = self.emitted.saturating_add(-ttl);
        let victims: Vec<u64> = self
            .keys
            .iter()
            .filter(|(_, s)| {
                !s.queued && s.last_end <= cutoff && s.pending.iter().all(|p| p.is_empty())
            })
            .map(|(k, _)| *k)
            .collect();
        if victims.is_empty() {
            return;
        }
        // Watermarks cannot move mid-sweep: one plan serves every victim.
        let plans = self.cell_plans();
        for key in victims {
            self.evict(key, &plans);
        }
    }

    /// Retires keys with no traffic for longer than the *wall-clock* TTL,
    /// regardless of event-time progress — the escape hatch for shards
    /// whose sources went silent entirely (the event-time sweep needs the
    /// watermark to move, and a dead stream's final events sit in the
    /// reorder buffer forever).
    fn wall_sweep(&mut self) {
        let Some(ttl) = self.cfg.wall_clock_ttl else { return };
        self.last_wall_sweep = Instant::now();
        let victims: Vec<u64> = self
            .keys
            .iter()
            .filter(|(_, s)| s.last_touch.elapsed() >= ttl)
            .map(|(k, _)| *k)
            .collect();
        if victims.is_empty() {
            return;
        }
        // At wall eviction every cell is treated as fully matured: one
        // shared plan serves every victim's final drain.
        let final_plans: Vec<CellPlan> = self
            .cells
            .iter()
            .map(|c| CellPlan { alive: c.alive, wm: Time::MAX, target: Time::MAX, due: c.alive })
            .collect();
        for key in victims {
            self.evict_wall(key, &final_plans);
        }
    }

    /// Wall-clock eviction of one key: everything still buffered is pushed
    /// through the sessions (the wall TTL, not the watermark, declares the
    /// stream over), each session is flushed through its full remaining
    /// output tail (pushed frontier + state horizon — everything the real
    /// events can ever influence), and the key is tombstoned there. For
    /// traffic that simply stopped this is output-identical to a surviving
    /// session; in-bound stragglers arriving after the eviction are
    /// late-dropped (they land behind the frontier) — the trade wall-clock
    /// reclamation makes that event-time eviction never has to.
    fn evict_wall(&mut self, key: u64, final_plans: &[CellPlan]) {
        if self.try_spill(key) {
            return;
        }
        let Some(mut state) = self.keys.remove(&key) else { return };
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let cells = &self.cells;
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        let residency = &mut self.residency_scratch;
        let n_cells = cells.len();
        let n_sources = self.n_sources;
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            Self::sync_key(&mut state, n_cells, n_sources);
            Self::drain_and_release(id, &mut state, cells, final_plans, scratch, residency, &stats);
            for (ci, cell) in cells.iter().enumerate() {
                if !cell.alive {
                    continue;
                }
                let Some(cs) = state.cells[ci].as_mut() else { continue };
                let tail = cs
                    .pushed_end
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(cs.session.watermark())
                    .saturating_add(cell.group.state_horizon());
                if tail > cs.session.watermark() {
                    let bufs = cs.session.flush_to_with(tail, pool);
                    cs.dirty = false;
                    cell.note_kernels(&stats);
                    for (mi, buf) in bufs.into_iter().enumerate() {
                        let emitted = buf.to_events();
                        pool.put(buf);
                        Self::deliver(key, cell.qids[mi], emitted, &mut state.out, &sinks, &stats);
                    }
                }
            }
        }))
        .is_err();
        self.stats.live_keys.sub(1);
        self.cap_tombstone_out(&mut state.out);
        if panicked {
            self.note_flush_panic(key, &state);
            self.retired
                .insert(key, Retired { frontiers: Vec::new(), out: state.out, quarantined: true });
            return;
        }
        self.stats.evictions.inc();
        self.stats.wall_evictions.inc();
        self.stats.note_control(ControlEvent::Evict { shard: self.id, key, wall: true });
        let frontiers =
            state.cells.iter().map(|cs| cs.as_ref().map(|cs| cs.session.watermark())).collect();
        self.retired.insert(key, Retired { frontiers, out: state.out, quarantined: false });
    }

    /// Accounts a key whose drain/flush panicked mid-eviction: it is
    /// quarantined, and whatever its reorder buffers still hold is
    /// discarded — subtracted from the pending gauge and counted as
    /// quarantine drops so event conservation survives the panic.
    fn note_flush_panic(&self, key: u64, state: &KeyState) {
        let remaining: usize = state.pending.iter().map(ReorderBuf::len).sum();
        if remaining > 0 {
            self.stats.sub_reorder_pending(self.id, remaining);
            self.stats.quarantine_dropped.add(remaining as u64);
        }
        self.stats.keys_quarantined.inc();
        self.stats.note_control(ControlEvent::Quarantine {
            shard: self.id,
            key,
            dropped: remaining as u64,
        });
    }

    /// Evicts one idle key: advance each cell session through its current
    /// horizon (the output it would eventually have emitted anyway), then
    /// replace the key with a [`Retired`] tombstone holding per-cell
    /// frontiers (each session's final watermark).
    fn evict(&mut self, key: u64, plans: &[CellPlan]) {
        if self.try_spill(key) {
            return;
        }
        let Some(mut state) = self.keys.remove(&key) else { return };
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let cells = &self.cells;
        let pool = &mut self.pool;
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            for (ci, cell) in cells.iter().enumerate() {
                if !plans[ci].alive {
                    continue;
                }
                let Some(cs) = state.cells.get_mut(ci).and_then(Option::as_mut) else { continue };
                if plans[ci].target > cs.session.watermark() {
                    let bufs = cs.session.advance_to_with(plans[ci].wm, pool);
                    cell.note_kernels(&stats);
                    for (mi, buf) in bufs.into_iter().enumerate() {
                        let emitted = buf.to_events();
                        pool.put(buf);
                        Self::deliver(key, cell.qids[mi], emitted, &mut state.out, &sinks, &stats);
                    }
                }
            }
        }))
        .is_err();
        self.stats.live_keys.sub(1);
        self.cap_tombstone_out(&mut state.out);
        if panicked {
            self.note_flush_panic(key, &state);
            self.retired
                .insert(key, Retired { frontiers: Vec::new(), out: state.out, quarantined: true });
            return;
        }
        self.stats.evictions.inc();
        self.stats.note_control(ControlEvent::Evict { shard: self.id, key, wall: false });
        let frontiers =
            state.cells.iter().map(|cs| cs.as_ref().map(|cs| cs.session.watermark())).collect();
        self.retired.insert(key, Retired { frontiers, out: state.out, quarantined: false });
    }

    /// Retires a key whose kernel execution panicked: its sessions (in an
    /// unknown state) and buffers are dropped, its accumulated output is
    /// kept for shutdown, and all further events for it are refused.
    fn quarantine(&mut self, key: u64) {
        let Some(mut state) = self.keys.remove(&key) else { return };
        let pending: usize = state.pending.iter().map(ReorderBuf::len).sum();
        if pending > 0 {
            self.stats.sub_reorder_pending(self.id, pending);
            // The discarded buffer contents are quarantine drops, not
            // lateness: conservation still partitions `events_in`.
            self.stats.quarantine_dropped.add(pending as u64);
        }
        self.stats.keys_quarantined.inc();
        self.stats.live_keys.sub(1);
        self.stats.note_control(ControlEvent::Quarantine {
            shard: self.id,
            key,
            dropped: pending as u64,
        });
        self.cap_tombstone_out(&mut state.out);
        self.retired
            .insert(key, Retired { frontiers: Vec::new(), out: state.out, quarantined: true });
    }

    /// Force-drains the `excess` oldest buffered events of one key/source
    /// into every accepting cell session ahead of the watermark
    /// ([`BackstopPolicy::ForceDrain`]), emitting what matures. The key
    /// keeps its output streams but loses lateness tolerance behind the
    /// drained frontier.
    fn force_drain_buf(&mut self, key: u64, source: usize, excess: usize) {
        if excess == 0 {
            return;
        }
        let Some(state) = self.keys.get_mut(&key) else { return };
        // The victim may be any key on the shard, and its roster vectors
        // are only re-synced on its own accept/visit paths — an attach that
        // grew the cell roster since this key last saw traffic would leave
        // `state.cells` short and the drain loop below indexing past it
        // (a caught panic that spuriously quarantined a healthy key,
        // discarding its share of the reorder buffer).
        Self::sync_key(state, self.cells.len(), self.n_sources);
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let cells = &self.cells;
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let mut drained = state.pending[source].drain_oldest(excess);
            stats.sub_reorder_pending(id, drained.len());
            stats.backstop_forced.add(drained.len() as u64);
            stats.note_control(ControlEvent::BackstopDrain {
                shard: id,
                key,
                drained: drained.len() as u64,
            });
            // The force-drain pushes ahead of the watermark by design, so
            // no per-cycle watermark plan is needed — liveness and arity
            // on the cell itself decide who receives the events. (This
            // runs once per overflowing arrival; keep it allocation-free.)
            for (ci, cell) in cells.iter().enumerate() {
                if !cell.alive || source >= cell.n_sources {
                    continue;
                }
                let Some(cs) = state.cells[ci].as_mut() else { continue };
                let mut frontier = cs.pushed_end[source].max(cs.session.watermark());
                scratch.clear();
                for b in drained.iter_mut() {
                    if b.event.start < frontier {
                        continue;
                    }
                    b.taken = true;
                    frontier = b.event.end;
                    scratch.push(b.event.clone());
                }
                if scratch.is_empty() {
                    continue;
                }
                let upto = frontier;
                cs.session.push_events(source, scratch);
                cs.pushed_end[source] = frontier;
                cs.dirty = true;
                scratch.clear();
                if upto > cs.session.watermark() {
                    let bufs = cs.session.advance_to_with(upto, pool);
                    cs.dirty = false;
                    cell.note_kernels(&stats);
                    for (mi, buf) in bufs.into_iter().enumerate() {
                        let emitted = buf.to_events();
                        pool.put(buf);
                        Self::deliver(key, cell.qids[mi], emitted, &mut state.out, &sinks, &stats);
                    }
                }
            }
            let untaken = drained.iter().filter(|b| !b.taken).count();
            stats.events_consumed.add((drained.len() - untaken) as u64);
            if untaken > 0 {
                stats.late_dropped.add(untaken as u64);
            }
        }))
        .is_err();
        if panicked {
            self.quarantine(key);
        }
    }

    /// Applies [`BackstopPolicy::ForceDrain`] at the shard level: the
    /// fullest buffers are drained until the shard backlog is at half its
    /// cap, so the O(keys) victim scans amortize across many arrivals.
    fn force_drain_shard(&mut self) {
        let Some(cap) = self.cfg.max_pending_per_shard else { return };
        let floor = (cap / 2).max(1) as i64;
        while self.stats.reorder_pending[self.id].get() > floor {
            let victim = self
                .keys
                .iter()
                .flat_map(|(k, s)| {
                    s.pending.iter().enumerate().map(move |(src, p)| (p.len(), *k, src))
                })
                .filter(|&(len, _, _)| len > 0)
                .max_by_key(|&(len, k, src)| (len, std::cmp::Reverse(k), std::cmp::Reverse(src)));
            let Some((len, key, source)) = victim else { break };
            self.force_drain_buf(key, source, (len / 2).max(1));
        }
    }

    /// Serializes one key's complete state: the single encoding shared by
    /// checkpoint records, spill bundles, and migration bundles. Cell
    /// slots are indices into the full roster; dead or absent cells
    /// encode as an absence flag.
    fn encode_key_state(state: &KeyState) -> Vec<u8> {
        let mut e = Enc::new();
        e.time(state.last_end);
        e.u8(state.queued as u8);
        e.u32(state.pending.len() as u32);
        for buf in &state.pending {
            e.u32(buf.events.len() as u32);
            for b in &buf.events {
                e.event(&b.event);
                e.u8(b.taken as u8);
            }
        }
        e.u32(state.cells.len() as u32);
        for slot in &state.cells {
            match slot {
                None => e.u8(0),
                Some(cs) => {
                    e.u8(1);
                    e.time(cs.session.watermark());
                    let hists = cs.session.histories();
                    e.u32(hists.len() as u32);
                    for h in hists {
                        e.ssbuf(h);
                    }
                    e.u32(cs.pushed_end.len() as u32);
                    for t in &cs.pushed_end {
                        e.time(*t);
                    }
                    e.u8(cs.dirty as u8);
                }
            }
        }
        Self::encode_out(&mut e, &state.out);
        e.into_bytes()
    }

    /// Appends a per-query output table (shared by live key states and
    /// retired tombstones).
    fn encode_out(e: &mut Enc, out: &[Vec<Event<Value>>]) {
        e.u32(out.len() as u32);
        for evs in out {
            e.u32(evs.len() as u32);
            for ev in evs {
                e.event(ev);
            }
        }
    }

    fn decode_out(d: &mut Dec<'_>) -> Result<Vec<Vec<Event<Value>>>, StateError> {
        let n_slots = d.count(4)?;
        let mut out = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let n = d.count(17)?;
            let mut evs = Vec::with_capacity(n);
            for _ in 0..n {
                evs.push(d.event()?);
            }
            out.push(evs);
        }
        Ok(out)
    }

    /// Decodes the payload written by [`Shard::encode_key_state`]. Every
    /// structural invariant a checksum cannot vouch for is re-validated:
    /// reorder buffers must arrive in sorted order, histories must pass
    /// the snapshot-buffer invariants (checked later by `from_parts`).
    fn decode_key_state(payload: &[u8]) -> Result<DecodedKey, StateError> {
        let mut d = Dec::new(payload);
        let last_end = d.time()?;
        let queued = d.flag()?;
        let n_src = d.count(4)?;
        let mut pending = Vec::with_capacity(n_src);
        for _ in 0..n_src {
            let n = d.count(18)?;
            let mut events: Vec<Buffered> = Vec::with_capacity(n);
            for _ in 0..n {
                let event = d.event()?;
                let taken = d.flag()?;
                if let Some(prev) = events.last() {
                    if (event.start, event.end) < (prev.event.start, prev.event.end) {
                        return Err(StateError::Corrupt("reorder buffer events out of order"));
                    }
                }
                events.push(Buffered { event, taken });
            }
            pending.push(ReorderBuf { events });
        }
        let n_cells = d.count(1)?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            if !d.flag()? {
                cells.push(None);
                continue;
            }
            let watermark = d.time()?;
            let nh = d.count(12)?;
            let mut histories = Vec::with_capacity(nh);
            for _ in 0..nh {
                histories.push(d.ssbuf()?);
            }
            let np = d.count(8)?;
            let mut pushed_end = Vec::with_capacity(np);
            for _ in 0..np {
                pushed_end.push(d.time()?);
            }
            let dirty = d.flag()?;
            cells.push(Some(DecodedSession { watermark, histories, pushed_end, dirty }));
        }
        let out = Self::decode_out(&mut d)?;
        d.finish()?;
        Ok(DecodedKey { last_end, queued, pending, cells, out })
    }

    /// Rebuilds a key from decoded durable state against the *current*
    /// roster: recorded cells past the roster are an error, sessions for
    /// since-detached cells are dropped (counted as reclaimed), and
    /// output slots whose query left every live cell are cleared —
    /// mirroring what `detach` would have done to a resident key.
    fn install_key_state(
        &mut self,
        key: u64,
        dk: DecodedKey,
        from_spill: bool,
    ) -> Result<(), StateError> {
        if self.keys.contains_key(&key) {
            return Err(StateError::Corrupt("key bundle duplicates a live key"));
        }
        if dk.pending.len() > self.n_sources {
            return Err(StateError::Corrupt("key bundle names more sources than the roster"));
        }
        if dk.cells.len() > self.cells.len() {
            return Err(StateError::Corrupt("key bundle names a cell past the roster"));
        }
        let n_pending: usize = dk.pending.iter().map(ReorderBuf::len).sum();
        let mut cells: Vec<Option<CellSession>> = Vec::with_capacity(self.cells.len());
        for (ci, slot) in dk.cells.into_iter().enumerate() {
            let cell = &self.cells[ci];
            let Some(ds) = slot else {
                cells.push(None);
                continue;
            };
            if !cell.alive {
                self.stats.sessions_reclaimed.inc();
                cells.push(None);
                continue;
            }
            let session =
                GroupSessionIn::from_parts(Arc::clone(&cell.group), ds.histories, ds.watermark)
                    .map_err(|_| StateError::Corrupt("session state violates group invariants"))?;
            let mut pushed_end = ds.pushed_end;
            pushed_end.resize(cell.n_sources, ds.watermark);
            cells.push(Some(CellSession { session, pushed_end, dirty: ds.dirty }));
        }
        let mut out = dk.out;
        for (qid, evs) in out.iter_mut().enumerate() {
            if !evs.is_empty() && !self.cells.iter().any(|c| c.alive && c.qids.contains(&qid)) {
                *evs = Vec::new();
            }
        }
        let mut state = KeyState {
            pending: dk.pending,
            cells,
            out,
            last_end: dk.last_end,
            last_touch: Instant::now(),
            queued: false,
        };
        Self::sync_key(&mut state, self.cells.len(), self.n_sources);
        if dk.queued {
            state.queued = true;
            self.active.push(key);
        }
        self.keys.insert(key, state);
        self.stats.live_keys.add(1);
        if n_pending > 0 {
            self.stats.reorder_pending[self.id].add(n_pending as i64);
            if from_spill {
                self.stats.spilled_pending.sub(n_pending as i64);
            }
        }
        Ok(())
    }

    /// Serializes this shard's complete state as one checkpoint record.
    /// Keys and tombstones are written in sorted order so identical state
    /// produces identical bytes. Spilled keys are *not* included — their
    /// bundles live in the spill directory, not the snapshot.
    fn checkpoint_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.id as u32);
        e.u32(self.max_start.len() as u32);
        for t in &self.max_start {
            e.time(*t);
        }
        for t in &self.explicit {
            e.time(*t);
        }
        e.time(self.max_end);
        e.time(self.emitted);
        e.time(self.last_sweep);
        e.u32(self.cells.len() as u32);
        for c in &self.cells {
            e.u8(c.alive as u8);
            e.time(c.emitted);
        }
        let mut keys: Vec<u64> = self.keys.keys().copied().collect();
        keys.sort_unstable();
        e.u32(keys.len() as u32);
        for k in keys {
            e.u64(k);
            e.bytes(&Self::encode_key_state(&self.keys[&k]));
        }
        let mut retired: Vec<u64> = self.retired.keys().copied().collect();
        retired.sort_unstable();
        e.u32(retired.len() as u32);
        for k in retired {
            let r = &self.retired[&k];
            e.u64(k);
            e.u8(r.quarantined as u8);
            e.u32(r.frontiers.len() as u32);
            for f in &r.frontiers {
                e.opt_i64(f.map(|t| t.ticks()));
            }
            Self::encode_out(&mut e, &r.out);
        }
        e.into_bytes()
    }

    /// Installs a checkpointed shard record. Sent as the first message
    /// after a restore spawn, so it replaces pristine state; the roster
    /// (rebuilt by the service from the same snapshot) must match.
    fn install(&mut self, payload: &[u8]) -> Result<(), StateError> {
        let mut d = Dec::new(payload);
        let id = d.u32()? as usize;
        if id != self.id {
            return Err(StateError::Corrupt("shard record routed to the wrong shard"));
        }
        let n_src = d.count(8)?;
        if n_src != self.n_sources {
            return Err(StateError::Corrupt("shard record source count does not match the roster"));
        }
        for i in 0..n_src {
            self.max_start[i] = d.time()?;
        }
        for i in 0..n_src {
            self.explicit[i] = d.time()?;
        }
        self.max_end = d.time()?;
        self.emitted = d.time()?;
        self.last_sweep = d.time()?;
        let n_cells = d.count(9)?;
        if n_cells != self.cells.len() {
            return Err(StateError::Corrupt("shard record cell count does not match the roster"));
        }
        for ci in 0..n_cells {
            self.cells[ci].alive = d.flag()?;
            self.cells[ci].emitted = d.time()?;
        }
        self.refresh_ttl();
        let n_keys = d.count(12)?;
        for _ in 0..n_keys {
            let key = d.u64()?;
            let dk = Self::decode_key_state(d.bytes()?)?;
            self.install_key_state(key, dk, false)?;
        }
        let n_retired = d.count(9)?;
        for _ in 0..n_retired {
            let key = d.u64()?;
            let quarantined = d.flag()?;
            let nf = d.count(1)?;
            let mut frontiers = Vec::with_capacity(nf);
            for _ in 0..nf {
                frontiers.push(d.opt_i64()?.map(Time::new));
            }
            let out = Self::decode_out(&mut d)?;
            if self.retired.insert(key, Retired { frontiers, out, quarantined }).is_some() {
                return Err(StateError::Corrupt("duplicate retired key in shard record"));
            }
        }
        d.finish()
    }

    /// Serializes one key out of this shard for migration and forgets it.
    /// Pending events leave the reorder gauge and ride the bundle, held
    /// by the `spilled_pending` gauge until the target installs them.
    fn migrate_out(&mut self, key: u64) -> Option<Vec<u8>> {
        let state = self.keys.remove(&key)?;
        let payload = Self::encode_key_state(&state);
        let n_pending: usize = state.pending.iter().map(ReorderBuf::len).sum();
        if n_pending > 0 {
            self.stats.sub_reorder_pending(self.id, n_pending);
            self.stats.spilled_pending.add(n_pending as i64);
        }
        self.stats.live_keys.sub(1);
        Some(payload)
    }

    /// Splices a migrated key into this shard. An undecodable bundle
    /// quarantines the key (fail closed) rather than silently restarting
    /// it from an empty session.
    fn migrate_in(&mut self, key: u64, bundle: Vec<u8>) {
        let installed =
            Self::decode_key_state(&bundle).and_then(|dk| self.install_key_state(key, dk, true));
        if installed.is_err() {
            self.stats.keys_quarantined.inc();
            self.stats.note_control(ControlEvent::Quarantine { shard: self.id, key, dropped: 0 });
            self.retired
                .insert(key, Retired { frontiers: Vec::new(), out: Vec::new(), quarantined: true });
        }
    }

    /// Per-key load scores — one point per key plus one per live session
    /// and buffered event — the shard-local input to
    /// [`crate::StreamService::rebalance`].
    fn census(&self) -> Vec<(u64, u64)> {
        self.keys
            .iter()
            .map(|(k, s)| {
                let pending: usize = s.pending.iter().map(ReorderBuf::len).sum();
                let sessions = s.cells.iter().flatten().count();
                (*k, 1 + pending as u64 + sessions as u64)
            })
            .collect()
    }

    /// Spills a key to the cold store instead of evicting it, when one is
    /// configured. The state is serialized verbatim — no flush, no
    /// session advance — so revival is byte-identical to never evicting:
    /// idle keys advance lazily on their next visit either way. Returns
    /// true when the eviction was fully handled here.
    fn try_spill(&mut self, key: u64) -> bool {
        let Some(spill) = self.spill.clone() else { return false };
        let Some(state) = self.keys.remove(&key) else { return true };
        let payload = Self::encode_key_state(&state);
        match spill.save(key, &payload) {
            Ok(bytes) => {
                let n_pending: usize = state.pending.iter().map(ReorderBuf::len).sum();
                if n_pending > 0 {
                    self.stats.sub_reorder_pending(self.id, n_pending);
                    self.stats.spilled_pending.add(n_pending as i64);
                }
                self.stats.live_keys.sub(1);
                self.stats.spills.inc();
                self.stats.state_bytes_written.add(bytes);
                self.stats.note_control(ControlEvent::Spill { shard: self.id, key });
                self.spilled.insert(key);
                true
            }
            Err(_) => {
                // The disk refused the bundle: fall back to the in-memory
                // eviction path, which needs no I/O to stay correct.
                self.keys.insert(key, state);
                false
            }
        }
    }

    /// Loads a spilled key back into memory. The caller has already
    /// removed the key from the spilled set; an unreadable or corrupt
    /// bundle quarantines the key so its events are refused and counted
    /// instead of silently recomputed from an empty session.
    fn revive_from_spill(&mut self, key: u64) {
        let spill = self.spill.clone().expect("spilled set implies a store");
        let revived = spill.load(key).and_then(|(payload, bytes)| {
            self.stats.state_bytes_read.add(bytes);
            let dk = Self::decode_key_state(&payload)?;
            self.install_key_state(key, dk, true)
        });
        match revived {
            Ok(()) => {
                self.stats.spill_revivals.inc();
                self.stats.note_control(ControlEvent::Revive { shard: self.id, key });
            }
            Err(_) => {
                // Disk corruption, not a kernel panic: count it apart so
                // the operator can tell the two quarantine causes apart.
                self.stats.spill_corrupt.inc();
                self.stats.keys_quarantined.inc();
                self.stats.note_control(ControlEvent::SpillCorrupt { shard: self.id, key });
                self.stats.note_control(ControlEvent::Quarantine {
                    shard: self.id,
                    key,
                    dropped: 0,
                });
                self.retired.insert(
                    key,
                    Retired { frontiers: Vec::new(), out: Vec::new(), quarantined: true },
                );
            }
        }
    }

    /// Applies `tombstone_output_cap`: a retiring key's accumulated
    /// sink-less output is trimmed to the newest `cap` events per query
    /// so a churning key population cannot pin unbounded memory in
    /// tombstones. Live keys are never capped — `finish` returns their
    /// output in full.
    fn cap_tombstone_out(&self, out: &mut [Vec<Event<Value>>]) {
        let Some(cap) = self.cfg.tombstone_output_cap else { return };
        for evs in out.iter_mut() {
            if evs.len() > cap {
                let dropped = evs.len() - cap;
                evs.drain(..dropped);
                self.stats.tombstone_dropped.add(dropped as u64);
            }
        }
    }

    fn deliver(
        key: u64,
        query: usize,
        events: Vec<Event<Value>>,
        out: &mut Vec<Vec<Event<Value>>>,
        sinks: &SinkTable,
        stats: &SharedStats,
    ) {
        if events.is_empty() {
            return;
        }
        stats.add_events_out(query, events.len() as u64);
        match sinks.get(query) {
            Some(sink) => sink(key, &events),
            None => {
                if out.len() <= query {
                    out.resize_with(query + 1, Vec::new);
                }
                out[query].extend(events);
            }
        }
    }

    /// End-of-stream: push everything still pending (the watermarks can no
    /// longer refute it), flush every cell session through the final
    /// horizon, and hand the per-key outputs back. Evicted keys are
    /// resurrected for the final flush so queries that emit output on an
    /// empty timeline still surface their tail; quarantined keys return
    /// what they had.
    fn flush(mut self, finish_at: Option<Time>) -> ShardOutput {
        // Spilled keys rejoin for the final flush: their revival here is
        // what keeps spills == revivals and lets queries that emit on an
        // empty timeline surface the spilled keys' tails too.
        let spilled: Vec<u64> = std::mem::take(&mut self.spilled).into_iter().collect();
        for key in spilled {
            self.revive_from_spill(key);
        }
        let grid = self.cells.iter().filter(|c| c.alive).map(|c| c.grid).max().unwrap_or(1);
        let horizon = finish_at.unwrap_or_else(|| self.max_end.max(self.cfg.start).align_up(grid));
        self.stats.shard_watermark[self.id].set(horizon.ticks());
        let flush_start = self.stats.detailed.then(Instant::now);
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let cells = std::mem::take(&mut self.cells);
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        let residency = &mut self.residency_scratch;
        let n_cells = cells.len();
        let n_sources = self.n_sources;
        // At the final horizon every cell is fully matured: one shared
        // plan drains and flushes everything.
        let final_plans: Vec<CellPlan> = cells
            .iter()
            .map(|c| CellPlan { alive: c.alive, wm: Time::MAX, target: horizon, due: c.alive })
            .collect();
        let mut per_key: Vec<(u64, Vec<Vec<Event<Value>>>)> =
            Vec::with_capacity(self.keys.len() + self.retired.len());
        for (key, mut state) in self.keys.drain() {
            Self::sync_key(&mut state, n_cells, n_sources);
            let panicked = catch_unwind(AssertUnwindSafe(|| {
                Self::drain_and_release(
                    id,
                    &mut state,
                    &cells,
                    &final_plans,
                    scratch,
                    residency,
                    &stats,
                );
                for (ci, cell) in cells.iter().enumerate() {
                    if !cell.alive {
                        continue;
                    }
                    let Some(cs) = state.cells[ci].as_mut() else { continue };
                    if horizon > cs.session.watermark() {
                        let bufs = cs.session.flush_to_with(horizon, pool);
                        cell.note_kernels(&stats);
                        for (mi, buf) in bufs.into_iter().enumerate() {
                            let emitted = buf.to_events();
                            pool.put(buf);
                            Self::deliver(
                                key,
                                cell.qids[mi],
                                emitted,
                                &mut state.out,
                                &sinks,
                                &stats,
                            );
                        }
                    }
                }
            }))
            .is_err();
            if panicked {
                let remaining: usize = state.pending.iter().map(ReorderBuf::len).sum();
                if remaining > 0 {
                    stats.sub_reorder_pending(id, remaining);
                    stats.quarantine_dropped.add(remaining as u64);
                }
                stats.keys_quarantined.inc();
                stats.note_control(ControlEvent::Quarantine {
                    shard: id,
                    key,
                    dropped: remaining as u64,
                });
            }
            per_key.push((key, state.out));
        }
        for (key, r) in self.retired.drain() {
            let mut out = r.out;
            if !r.quarantined {
                for (ci, cell) in cells.iter().enumerate() {
                    if !cell.alive {
                        continue;
                    }
                    let Some(frontier) = r.frontiers.get(ci).copied().flatten() else { continue };
                    if horizon <= frontier {
                        continue;
                    }
                    let mut session = cell.group.shared_session(frontier);
                    match catch_unwind(AssertUnwindSafe(|| session.flush_to_with(horizon, pool))) {
                        Ok(bufs) => {
                            cell.note_kernels(&stats);
                            for (mi, buf) in bufs.into_iter().enumerate() {
                                let emitted = buf.to_events();
                                pool.put(buf);
                                Self::deliver(
                                    key,
                                    cell.qids[mi],
                                    emitted,
                                    &mut out,
                                    &sinks,
                                    &stats,
                                );
                            }
                        }
                        Err(_) => {
                            stats.keys_quarantined.inc();
                            stats.note_control(ControlEvent::Quarantine {
                                shard: id,
                                key,
                                dropped: 0,
                            });
                        }
                    }
                }
            }
            per_key.push((key, out));
        }
        per_key.sort_by_key(|(k, _)| *k);
        // Last chance to publish batched per-event samples: the shard
        // thread exits after this, and the final snapshot must see them.
        self.ingest_lag_scratch.flush_into(&self.stats.ingest_lag[self.id]);
        self.residency_scratch.flush_into(&self.stats.reorder_residency[self.id]);
        if let Some(start) = flush_start {
            self.stats.flush_ns[self.id].record(start.elapsed().as_nanos() as u64);
        }
        ShardOutput { per_key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: i64, end: i64, v: f64) -> Event<Value> {
        Event::new(Time::new(start), Time::new(end), Value::Float(v))
    }

    #[test]
    fn monotone_insertion_preserves_order() {
        // Bounded-out-of-order arrivals; the matured prefix must be
        // (start, end)-sorted.
        let mut buf = ReorderBuf::default();
        for (s, e, v) in [(3, 4, 0.0), (1, 2, 1.0), (5, 6, 2.0), (2, 3, 3.0), (4, 5, 4.0)] {
            buf.insert(ev(s, e, v));
        }
        let matured = buf.matured_mut(Time::new(5));
        let starts: Vec<i64> = matured.iter().map(|b| b.event.start.ticks()).collect();
        assert_eq!(starts, vec![1, 2, 3, 4]);
        let (released, untaken) = buf.release(Time::new(5));
        assert_eq!((released, untaken), (4, 4), "nothing was marked taken");
        assert_eq!(buf.len(), 1, "event starting at 5 is not yet matured");
        buf.matured_mut(Time::MAX).iter_mut().for_each(|b| b.taken = true);
        assert_eq!(buf.release(Time::MAX), (1, 0));
        assert!(buf.is_empty());
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        // Stability: ties on (start, end) must drain in arrival order.
        let mut buf = ReorderBuf::default();
        buf.insert(ev(1, 2, 10.0));
        buf.insert(ev(1, 2, 20.0));
        buf.insert(ev(0, 1, 5.0));
        buf.insert(ev(1, 2, 30.0));
        let vals: Vec<f64> = buf
            .matured_mut(Time::MAX)
            .iter()
            .map(|b| match b.event.payload {
                Value::Float(f) => f,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![5.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn in_order_insertion_is_append_only() {
        // The fast path: monotone arrivals never trigger a shifting insert.
        let mut buf = ReorderBuf::default();
        for t in 1..=1000 {
            buf.insert(ev(t, t + 1, t as f64));
        }
        assert_eq!(buf.len(), 1000);
        let matured = buf.matured_mut(Time::new(500));
        assert_eq!(matured.len(), 499);
        assert!(matured.windows(2).all(|w| w[0].event.start <= w[1].event.start));
    }

    #[test]
    fn drain_oldest_takes_the_sorted_prefix() {
        let mut buf = ReorderBuf::default();
        for (s, e) in [(5, 6), (1, 2), (3, 4), (2, 3)] {
            buf.insert(ev(s, e, 0.0));
        }
        let oldest = buf.drain_oldest(2);
        let starts: Vec<i64> = oldest.iter().map(|b| b.event.start.ticks()).collect();
        assert_eq!(starts, vec![1, 2]);
        assert_eq!(buf.len(), 2);
        // Asking for more than is buffered drains what exists.
        assert_eq!(buf.drain_oldest(10).len(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn release_respects_taken_flags() {
        let mut buf = ReorderBuf::default();
        for t in 1..=6 {
            buf.insert(ev(t, t + 1, 0.0));
        }
        // A consumer takes the first three; a duplicate-looking straggler
        // stays untaken.
        for b in buf.matured_mut(Time::new(4)) {
            b.taken = true;
        }
        buf.insert(ev(2, 3, 9.9)); // behind the consumer's frontier: nobody takes it
        let (released, untaken) = buf.release(Time::new(4));
        assert_eq!(released, 4);
        assert_eq!(untaken, 1, "the unconsumed straggler is counted exactly once");
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn drain_random_interleaving_matches_sorted_reference() {
        // Pseudo-random bounded shuffle vs a reference sort.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut events: Vec<Event<Value>> =
            (0..200).map(|i| ev(i + next() % 8, i + 8 + next() % 4, i as f64)).collect();
        let mut reference = events.clone();
        reference.sort_by_key(|e| (e.start, e.end));
        // Scramble arrival order deterministically.
        for i in (1..events.len()).rev() {
            let j = (next() as usize) % (i + 1);
            events.swap(i, j);
        }
        let mut buf = ReorderBuf::default();
        for e in events {
            buf.insert(e);
        }
        let got: Vec<(Time, Time)> =
            buf.matured_mut(Time::MAX).iter().map(|b| (b.event.start, b.event.end)).collect();
        let want: Vec<(Time, Time)> = reference.iter().map(|e| (e.start, e.end)).collect();
        assert_eq!(got, want);
    }
}
