//! The shard worker: one thread owning a disjoint subset of keys.
//!
//! Each shard receives batches of keyed events over a bounded channel,
//! buffers them per key and per source in a reorder buffer, tracks
//! per-source watermarks (`max event start seen − allowed lateness`,
//! floored by explicit watermark messages — see the `max_start` field for
//! why starts, not ends), and — whenever the min-watermark crosses a new
//! emission grid point — drains the matured prefix of every active key's
//! buffer into that key's session and advances it. Keys never migrate
//! between shards, so shards share nothing and run synchronization-free,
//! the runtime analogue of the paper's §6.2 partition workers.
//!
//! The shard is generic over an [`Engine`]: stream management (this file)
//! happens once per shard regardless of how many queries are registered;
//! the engine decides whether a key's session serves one compiled query
//! or a deduplicated [`tilt_core::sharing::QueryGroup`].
//!
//! Three hardening mechanisms keep a shard viable under hostile traffic:
//!
//! * **Idle eviction** (`RuntimeConfig::key_ttl`): keys quiet past their
//!   state horizon have their session retired to a tiny tombstone holding
//!   the eviction frontier; a later arrival at or after the frontier
//!   transparently re-creates the session. Keys touched once and never
//!   again stop costing session memory.
//! * **Reorder backstop** (`max_pending_per_key` / `max_pending_per_shard`
//!   with a [`BackstopPolicy`]): a stalled source can hold the watermark
//!   forever, so buffered out-of-order events are capped — overflow is
//!   either dropped-and-counted or force-drained into the session ahead of
//!   the watermark.
//! * **Panic quarantine**: all kernel execution for a key runs under
//!   `catch_unwind`; a poisoned key is retired (its later events dropped
//!   and counted) instead of unwinding the shard thread and taking every
//!   other key down with it.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use tilt_data::{Event, Time, Value};

use crate::engine::Engine;
use crate::stats::SharedStats;
use crate::{BackstopPolicy, KeyedEvent, OutputSink, RuntimeConfig};

/// Messages flowing from the runtime handle to a shard worker.
pub(crate) enum ShardMsg {
    /// A batch of events, already routed to this shard.
    Batch(Vec<KeyedEvent>),
    /// An explicit promise that source `source` will deliver no further
    /// events *starting* at or before `time`.
    Watermark { source: usize, time: Time },
    /// Final horizon: flush every session through `time` when the channel
    /// closes.
    FinishAt(Time),
}

/// How many channel messages a shard folds into one watermark
/// recomputation / emission cycle: after a blocking `recv`, anything
/// already queued is drained (up to this bound, so sink latency stays
/// bounded) before `maybe_advance` runs once for the whole batch.
const MAX_MSGS_PER_CYCLE: usize = 64;

/// A per-key, per-source reorder buffer kept sorted by `(start, end)` at
/// insertion time (monotone/binary insertion), so draining the matured
/// prefix never re-sorts.
///
/// Streams are mostly in order in practice: the fast path is an O(1)
/// append, and a displaced event pays a shift bounded by how far out of
/// order it actually arrived — instead of the previous
/// O(n log n)-sort-per-drain over the whole pending set.
#[derive(Debug, Default)]
pub(crate) struct ReorderBuf {
    events: Vec<Event<Value>>,
}

impl ReorderBuf {
    /// Inserts `ev` at its sorted position; ties keep arrival order
    /// (stable, matching the previous stable sort).
    pub(crate) fn insert(&mut self, ev: Event<Value>) {
        let key = (ev.start, ev.end);
        if self.events.last().is_none_or(|last| (last.start, last.end) <= key) {
            self.events.push(ev);
            return;
        }
        let i = self.events.partition_point(|e| (e.start, e.end) <= key);
        self.events.insert(i, ev);
    }

    /// Removes and returns the matured prefix: every event starting before
    /// `upto`, in time order. Events starting at or after the watermark
    /// stay buffered — an earlier-starting straggler could still arrive
    /// and must sort in front of them.
    pub(crate) fn drain_matured(&mut self, upto: Time) -> Vec<Event<Value>> {
        let n = self.events.partition_point(|e| e.start < upto);
        self.events.drain(..n).collect()
    }

    /// Removes and returns the `n` oldest buffered events (the backstop's
    /// force-drain path), in time order.
    pub(crate) fn drain_oldest(&mut self, n: usize) -> Vec<Event<Value>> {
        let n = n.min(self.events.len());
        self.events.drain(..n).collect()
    }

    /// Whether any events are pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }
}

/// Per-key state: the engine session plus the per-source reorder buffers
/// feeding it.
struct KeyState<S> {
    session: S,
    /// Out-of-order arrivals per source, held until the watermark passes
    /// them.
    pending: Vec<ReorderBuf>,
    /// End of the last event pushed into the session, per source: the
    /// frontier behind which arrivals are unsalvageably late.
    pushed_end: Vec<Time>,
    /// Finalized output events per query (drained by `finish` unless that
    /// query has a sink).
    out: Vec<Vec<Event<Value>>>,
    /// The newest event end accepted for this key (idleness clock for the
    /// eviction sweep).
    last_end: Time,
    /// Whether events were pushed since the session last advanced.
    dirty: bool,
    /// Whether the key is already on the shard's active-visit queue.
    queued: bool,
}

/// A retired key: evicted for idleness (revivable at `frontier`) or
/// quarantined after a kernel panic (never revived). Holds only the
/// accumulated non-sink output and a frontier — the session and its
/// buffers are gone.
struct Retired {
    /// Arrivals starting before this are unsalvageably late; a revival
    /// arrival at or after it re-creates the session here. `Time::MAX` for
    /// quarantined keys, which refuse all further events.
    frontier: Time,
    /// Accumulated per-query output (returned at shutdown).
    out: Vec<Vec<Event<Value>>>,
    /// Whether the key was quarantined by a kernel panic.
    quarantined: bool,
}

/// Everything a shard returns when it drains and exits.
pub(crate) struct ShardOutput {
    /// Finalized output per key, one vector per registered query (empty
    /// when a sink consumed them).
    pub(crate) per_key: Vec<(u64, Vec<Vec<Event<Value>>>)>,
}

pub(crate) struct Shard<E: Engine> {
    id: usize,
    engine: E,
    cfg: RuntimeConfig,
    n_sources: usize,
    grid: i64,
    lookahead: i64,
    /// The effective idle-eviction TTL: `cfg.key_ttl` clamped up to the
    /// engine's state horizon, so a retired-then-revived session is
    /// observationally identical to one that lived through the gap.
    ttl: Option<i64>,
    /// Cached `engine.kernel_counts()`: (executed, saved) per advance.
    kernel_counts: (u64, u64),
    keys: HashMap<u64, KeyState<E::Session>>,
    /// Evicted and quarantined keys (see [`Retired`]).
    retired: HashMap<u64, Retired>,
    /// Per source: the largest event *start* observed on this shard.
    ///
    /// Watermarks are defined over starts, not ends: an event contributes
    /// value all the way back to its start, so a not-yet-arrived event with
    /// `start ≥ wm` can never change any tick at or before `wm` — which is
    /// exactly the finality emission needs. (An end-based watermark would
    /// let a long straddling event arrive after its early ticks were
    /// already emitted.)
    max_start: Vec<Time>,
    /// The largest event end observed (final flush horizon).
    max_end: Time,
    /// Per source: the largest explicit watermark received.
    explicit: Vec<Time>,
    /// The last emission target the shard advanced its keys to.
    emitted: Time,
    /// Where the last idle-eviction sweep ran (sweeps are amortized to at
    /// most one full key scan per `ttl / 2` ticks of emission progress).
    last_sweep: Time,
    /// Keys needing a visit on the next emission cycle (have new input,
    /// pushed-but-unemitted history, or — with a sink — an unexhausted
    /// output tail). Emission cost scales with this set, not with the
    /// total key population.
    active: Vec<u64>,
    /// Per registered query: where finalized events stream to, if anywhere.
    sinks: Arc<[Option<OutputSink>]>,
    stats: Arc<SharedStats>,
}

impl<E: Engine> Shard<E> {
    pub(crate) fn new(
        id: usize,
        engine: E,
        cfg: RuntimeConfig,
        sinks: Arc<[Option<OutputSink>]>,
        stats: Arc<SharedStats>,
    ) -> Self {
        let n_sources = engine.n_sources();
        let grid = engine.grid();
        let lookahead = engine.lookahead();
        let kernel_counts = engine.kernel_counts();
        let ttl = cfg.key_ttl.map(|t| t.max(engine.state_horizon()).max(1));
        Shard {
            id,
            engine,
            cfg,
            n_sources,
            grid,
            lookahead,
            ttl,
            kernel_counts,
            keys: HashMap::new(),
            retired: HashMap::new(),
            max_start: vec![Time::MIN; n_sources],
            max_end: Time::MIN,
            explicit: vec![Time::MIN; n_sources],
            emitted: cfg.start,
            last_sweep: cfg.start,
            active: Vec::new(),
            sinks,
            stats,
        }
    }

    /// The shard main loop: drain the channel, then flush and exit.
    ///
    /// Watermark recomputation is batched: after each blocking `recv`,
    /// every message already sitting in the channel (bounded by
    /// [`MAX_MSGS_PER_CYCLE`]) is folded in before `maybe_advance`
    /// recomputes the min-watermark and visits active keys once — under
    /// load, one emission cycle serves many ingest batches instead of one.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMsg>) -> ShardOutput {
        let mut finish_at: Option<Time> = None;
        while let Ok(msg) = rx.recv() {
            self.apply(msg, &mut finish_at);
            let mut folded = 1usize;
            while folded < MAX_MSGS_PER_CYCLE {
                match rx.try_recv() {
                    Ok(msg) => {
                        self.apply(msg, &mut finish_at);
                        folded += 1;
                    }
                    Err(_) => break,
                }
            }
            self.maybe_advance();
        }
        self.flush(finish_at)
    }

    /// Folds one channel message into shard state (no emission).
    fn apply(&mut self, msg: ShardMsg, finish_at: &mut Option<Time>) {
        match msg {
            ShardMsg::Batch(events) => {
                self.stats.queue_depth[self.id].fetch_sub(events.len() as i64, Ordering::Relaxed);
                for ev in events {
                    self.accept(ev);
                }
            }
            ShardMsg::Watermark { source, time } => {
                if source < self.n_sources {
                    let w = &mut self.explicit[source];
                    *w = (*w).max(time);
                }
            }
            ShardMsg::FinishAt(time) => *finish_at = Some(time),
        }
    }

    /// Routes one event into its key's reorder buffer, creating the key's
    /// session on first contact and reviving it after eviction.
    fn accept(&mut self, ev: KeyedEvent) {
        assert!(
            ev.source < self.n_sources,
            "source index {} out of range: engine reads {} sources",
            ev.source,
            self.n_sources
        );
        self.max_start[ev.source] = self.max_start[ev.source].max(ev.event.start);
        self.max_end = self.max_end.max(ev.event.end);

        // Retired keys: quarantined ones refuse all events; evicted ones
        // revive at their frontier (arrivals behind it are unsalvageably
        // late — the session that could have absorbed them is gone).
        if let Some(r) = self.retired.get(&ev.key) {
            if r.quarantined {
                self.stats.quarantine_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if ev.event.start < r.frontier {
                self.stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let r = self.retired.remove(&ev.key).expect("checked above");
            self.stats.revivals.fetch_add(1, Ordering::Relaxed);
            self.stats.live_keys.fetch_add(1, Ordering::Relaxed);
            self.keys.insert(
                ev.key,
                KeyState {
                    session: self.engine.open(r.frontier),
                    pending: (0..self.n_sources).map(|_| ReorderBuf::default()).collect(),
                    pushed_end: vec![r.frontier; self.n_sources],
                    out: r.out,
                    last_end: r.frontier,
                    dirty: false,
                    queued: false,
                },
            );
        }

        let state = match self.keys.entry(ev.key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.stats.keys.fetch_add(1, Ordering::Relaxed);
                self.stats.live_keys.fetch_add(1, Ordering::Relaxed);
                let session = self.engine.open(self.cfg.start);
                e.insert(KeyState {
                    session,
                    pending: (0..self.n_sources).map(|_| ReorderBuf::default()).collect(),
                    pushed_end: vec![self.cfg.start; self.n_sources],
                    out: vec![Vec::new(); self.engine.n_queries()],
                    last_end: self.cfg.start,
                    dirty: false,
                    queued: false,
                })
            }
        };

        // Beyond-lateness arrivals cannot be spliced in front of history
        // that already reached the session; count and drop them. (Counted
        // once per event, however many queries the engine serves.)
        let frontier = state.pushed_end[ev.source].max(E::watermark(&state.session));
        if ev.event.start < frontier {
            self.stats.late_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.last_end = state.last_end.max(ev.event.end);

        // Reorder-buffer backstop: bound what a stalled watermark can pin.
        let key_full =
            self.cfg.max_pending_per_key.is_some_and(|cap| state.pending[ev.source].len() >= cap);
        let shard_full = self.cfg.max_pending_per_shard.is_some_and(|cap| {
            self.stats.reorder_pending[self.id].load(Ordering::Relaxed) >= cap as i64
        });
        if (key_full || shard_full) && self.cfg.backstop == BackstopPolicy::DropNewest {
            self.stats.backstop_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }

        state.pending[ev.source].insert(ev.event);
        let buffered = state.pending[ev.source].len();
        self.stats.reorder_buffered.fetch_add(1, Ordering::Relaxed);
        self.stats.reorder_pending[self.id].fetch_add(1, Ordering::Relaxed);
        if !state.queued {
            state.queued = true;
            self.active.push(ev.key);
        }
        if key_full {
            let cap = self.cfg.max_pending_per_key.expect("key_full implies a cap");
            self.force_drain_buf(ev.key, ev.source, buffered.saturating_sub(cap / 2));
        } else if shard_full {
            self.force_drain_shard();
        }
    }

    /// The shard low-watermark: the min across sources of
    /// `max(max_start − allowed_lateness, explicit)`. No future event may
    /// start before it (later arrivals are dropped as late).
    fn watermark(&self) -> Time {
        (0..self.n_sources)
            .map(|s| {
                self.max_start[s].saturating_add(-self.cfg.allowed_lateness).max(self.explicit[s])
            })
            .min()
            .unwrap_or(Time::MIN)
    }

    /// Advances keys when the watermark has crossed a new emission point
    /// (at least `emit_interval` past the previous one, snapped to the
    /// kernel grid).
    ///
    /// Only keys on the active queue are visited, so a cycle costs
    /// O(active keys), not O(total keys). A visited key is re-queued while
    /// it still has buffered input or pushed-but-unemitted history; with a
    /// sink it is additionally re-queued while its eager advances keep
    /// producing output, so a quiet key's already-final tail (the closing
    /// windows after its last event) reaches the sink while the service
    /// keeps running. Once an eager advance produces nothing the key is
    /// parked until new input arrives — for window-style queries an empty
    /// region stays empty without new events. (Queries that emit output on
    /// an empty timeline only surface that output at the shutdown flush.)
    ///
    /// Kernel execution runs under `catch_unwind`: a panicking key is
    /// quarantined instead of unwinding the shard thread.
    fn maybe_advance(&mut self) {
        let wm = self.watermark();
        self.stats.shard_watermark[self.id].store(wm.ticks(), Ordering::Relaxed);
        // The session emission horizon for watermark `wm`
        // (cf. `StreamSessionIn::advance_to`).
        let target = Time::new(wm.ticks().saturating_sub(self.lookahead)).align_down(self.grid);
        if target.ticks() < self.emitted.ticks().saturating_add(self.cfg.emit_interval) {
            return;
        }
        self.emitted = target;
        let eager = self.sinks.iter().any(|s| s.is_some());
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let mut visit = std::mem::take(&mut self.active);
        for key in visit.drain(..) {
            let Some(state) = self.keys.get_mut(&key) else { continue };
            state.queued = false;
            let mut revisit = false;
            let panicked = catch_unwind(AssertUnwindSafe(|| {
                Self::drain_pending(id, state, wm, &stats);
                let mut emitted_any = false;
                if (state.dirty || eager) && target > E::watermark(&state.session) {
                    let bufs = E::advance(&mut state.session, wm);
                    state.dirty = false;
                    stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                    stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                    for (qi, buf) in bufs.into_iter().enumerate() {
                        let emitted = buf.to_events();
                        emitted_any |= !emitted.is_empty();
                        Self::deliver(key, qi, emitted, &mut state.out, &sinks, &stats);
                    }
                }
                revisit = state.dirty
                    || state.pending.iter().any(|p| !p.is_empty())
                    || (eager && emitted_any);
            }))
            .is_err();
            if panicked {
                self.quarantine(key);
            } else if revisit {
                if let Some(state) = self.keys.get_mut(&key) {
                    state.queued = true;
                    self.active.push(key);
                }
            }
        }
        self.sweep_idle(wm);
    }

    /// Retires keys idle past the TTL: the session is advanced through the
    /// current horizon (emitting its quiet tail), then torn down to a
    /// tombstone carrying the eviction frontier. Amortized to one key scan
    /// per `ttl / 2` ticks of emission progress.
    fn sweep_idle(&mut self, wm: Time) {
        let Some(ttl) = self.ttl else { return };
        if self.emitted - self.last_sweep < (ttl / 2).max(1) {
            return;
        }
        self.last_sweep = self.emitted;
        let cutoff = self.emitted.saturating_add(-ttl);
        let victims: Vec<u64> = self
            .keys
            .iter()
            .filter(|(_, s)| {
                !s.queued && s.last_end <= cutoff && s.pending.iter().all(|p| p.is_empty())
            })
            .map(|(k, _)| *k)
            .collect();
        for key in victims {
            self.evict(key, wm);
        }
    }

    /// Evicts one idle key: advance its session through the current
    /// horizon (the output it would eventually have emitted anyway), then
    /// replace it with a [`Retired`] tombstone at the session's final
    /// watermark.
    fn evict(&mut self, key: u64, wm: Time) {
        let Some(mut state) = self.keys.remove(&key) else { return };
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let target = Time::new(wm.ticks().saturating_sub(self.lookahead)).align_down(self.grid);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            if target > E::watermark(&state.session) {
                let bufs = E::advance(&mut state.session, wm);
                stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                for (qi, buf) in bufs.into_iter().enumerate() {
                    Self::deliver(key, qi, buf.to_events(), &mut state.out, &sinks, &stats);
                }
            }
        }))
        .is_err();
        self.stats.live_keys.fetch_sub(1, Ordering::Relaxed);
        if panicked {
            self.stats.keys_quarantined.fetch_add(1, Ordering::Relaxed);
            self.retired
                .insert(key, Retired { frontier: Time::MAX, out: state.out, quarantined: true });
            return;
        }
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        let frontier = E::watermark(&state.session);
        self.retired.insert(key, Retired { frontier, out: state.out, quarantined: false });
    }

    /// Retires a key whose kernel execution panicked: its session (in an
    /// unknown state) and buffers are dropped, its accumulated output is
    /// kept for shutdown, and all further events for it are refused.
    fn quarantine(&mut self, key: u64) {
        let Some(state) = self.keys.remove(&key) else { return };
        let pending: i64 = state.pending.iter().map(|p| p.len() as i64).sum();
        self.stats.reorder_pending[self.id].fetch_sub(pending, Ordering::Relaxed);
        self.stats.keys_quarantined.fetch_add(1, Ordering::Relaxed);
        self.stats.live_keys.fetch_sub(1, Ordering::Relaxed);
        self.retired
            .insert(key, Retired { frontier: Time::MAX, out: state.out, quarantined: true });
    }

    /// Force-drains the `excess` oldest buffered events of one key/source
    /// into its session ahead of the watermark ([`BackstopPolicy::ForceDrain`]),
    /// emitting what matures. The key keeps its output stream but loses
    /// lateness tolerance behind the drained frontier.
    fn force_drain_buf(&mut self, key: u64, source: usize, excess: usize) {
        if excess == 0 {
            return;
        }
        let Some(state) = self.keys.get_mut(&key) else { return };
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let mut drained = state.pending[source].drain_oldest(excess);
            stats.reorder_pending[id].fetch_sub(drained.len() as i64, Ordering::Relaxed);
            stats.backstop_forced.fetch_add(drained.len() as u64, Ordering::Relaxed);
            drained.retain(|e| {
                if e.start < state.pushed_end[source] {
                    stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    state.pushed_end[source] = e.end;
                    true
                }
            });
            let Some(last) = drained.last() else { return };
            let upto = last.end;
            E::push(&mut state.session, source, &drained);
            state.dirty = true;
            if upto > E::watermark(&state.session) {
                let bufs = E::advance(&mut state.session, upto);
                state.dirty = false;
                stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                for (qi, buf) in bufs.into_iter().enumerate() {
                    Self::deliver(key, qi, buf.to_events(), &mut state.out, &sinks, &stats);
                }
            }
        }))
        .is_err();
        if panicked {
            self.quarantine(key);
        }
    }

    /// Applies [`BackstopPolicy::ForceDrain`] at the shard level: the
    /// fullest buffers are drained until the shard backlog is at half its
    /// cap, so the O(keys) victim scans amortize across many arrivals.
    fn force_drain_shard(&mut self) {
        let Some(cap) = self.cfg.max_pending_per_shard else { return };
        let floor = (cap / 2).max(1) as i64;
        while self.stats.reorder_pending[self.id].load(Ordering::Relaxed) > floor {
            let victim = self
                .keys
                .iter()
                .flat_map(|(k, s)| {
                    s.pending.iter().enumerate().map(move |(src, p)| (p.len(), *k, src))
                })
                .filter(|&(len, _, _)| len > 0)
                .max_by_key(|&(len, k, src)| (len, std::cmp::Reverse(k), std::cmp::Reverse(src)));
            let Some((len, key, source)) = victim else { break };
            self.force_drain_buf(key, source, (len / 2).max(1));
        }
    }

    /// Moves every matured pending event (start < `upto`) into the
    /// session, in time order (the buffers are kept sorted at insertion).
    fn drain_pending(
        shard_id: usize,
        state: &mut KeyState<E::Session>,
        upto: Time,
        stats: &SharedStats,
    ) {
        for (source, pending) in state.pending.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            let mut matured = pending.drain_matured(upto);
            if matured.is_empty() {
                continue;
            }
            stats.reorder_pending[shard_id].fetch_sub(matured.len() as i64, Ordering::Relaxed);
            // Duplicate or overlapping arrivals (malformed per-key streams)
            // cannot be appended disjointly; count them as drops rather
            // than corrupting the session history.
            matured.retain(|e| {
                if e.start < state.pushed_end[source] {
                    stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    state.pushed_end[source] = e.end;
                    true
                }
            });
            if !matured.is_empty() {
                E::push(&mut state.session, source, &matured);
                state.dirty = true;
            }
        }
    }

    fn deliver(
        key: u64,
        query: usize,
        events: Vec<Event<Value>>,
        out: &mut [Vec<Event<Value>>],
        sinks: &[Option<OutputSink>],
        stats: &SharedStats,
    ) {
        if events.is_empty() {
            return;
        }
        stats.events_out.fetch_add(events.len() as u64, Ordering::Relaxed);
        stats.events_out_query[query].fetch_add(events.len() as u64, Ordering::Relaxed);
        match &sinks[query] {
            Some(sink) => sink(key, &events),
            None => out[query].extend(events),
        }
    }

    /// End-of-stream: push everything still pending (the watermark can no
    /// longer refute it), flush every session through the final horizon,
    /// and hand the per-key outputs back. Evicted keys are resurrected for
    /// the final flush so queries that emit output on an empty timeline
    /// still surface their tail; quarantined keys return what they had.
    fn flush(mut self, finish_at: Option<Time>) -> ShardOutput {
        let horizon =
            finish_at.unwrap_or_else(|| self.max_end.max(self.cfg.start).align_up(self.grid));
        self.stats.shard_watermark[self.id].store(horizon.ticks(), Ordering::Relaxed);
        let id = self.id;
        let sinks = Arc::clone(&self.sinks);
        let stats = Arc::clone(&self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let mut per_key: Vec<(u64, Vec<Vec<Event<Value>>>)> =
            Vec::with_capacity(self.keys.len() + self.retired.len());
        for (key, mut state) in self.keys.drain() {
            let panicked = catch_unwind(AssertUnwindSafe(|| {
                Self::drain_pending(id, &mut state, Time::MAX, &stats);
                if horizon > E::watermark(&state.session) {
                    let bufs = E::flush(&mut state.session, horizon);
                    stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                    stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                    for (qi, buf) in bufs.into_iter().enumerate() {
                        let emitted = buf.to_events();
                        Self::deliver(key, qi, emitted, &mut state.out, &sinks, &stats);
                    }
                }
            }))
            .is_err();
            if panicked {
                stats.keys_quarantined.fetch_add(1, Ordering::Relaxed);
            }
            per_key.push((key, state.out));
        }
        for (key, r) in self.retired.drain() {
            let mut out = r.out;
            if !r.quarantined && horizon > r.frontier {
                let mut session = self.engine.open(r.frontier);
                match catch_unwind(AssertUnwindSafe(|| E::flush(&mut session, horizon))) {
                    Ok(bufs) => {
                        stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                        stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                        for (qi, buf) in bufs.into_iter().enumerate() {
                            Self::deliver(key, qi, buf.to_events(), &mut out, &sinks, &stats);
                        }
                    }
                    Err(_) => {
                        stats.keys_quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            per_key.push((key, out));
        }
        per_key.sort_by_key(|(k, _)| *k);
        ShardOutput { per_key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: i64, end: i64, v: f64) -> Event<Value> {
        Event::new(Time::new(start), Time::new(end), Value::Float(v))
    }

    #[test]
    fn monotone_insertion_preserves_drain_order() {
        // Bounded-out-of-order arrivals; drain must be (start, end)-sorted —
        // exactly what the previous sort-per-drain produced.
        let mut buf = ReorderBuf::default();
        for (s, e, v) in [(3, 4, 0.0), (1, 2, 1.0), (5, 6, 2.0), (2, 3, 3.0), (4, 5, 4.0)] {
            buf.insert(ev(s, e, v));
        }
        let drained = buf.drain_matured(Time::new(5));
        let starts: Vec<i64> = drained.iter().map(|e| e.start.ticks()).collect();
        assert_eq!(starts, vec![1, 2, 3, 4]);
        assert_eq!(buf.len(), 1, "event starting at 5 is not yet matured");
        let rest = buf.drain_matured(Time::MAX);
        assert_eq!(rest.len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        // Stability: ties on (start, end) must drain in arrival order, as
        // the previous stable sort guaranteed.
        let mut buf = ReorderBuf::default();
        buf.insert(ev(1, 2, 10.0));
        buf.insert(ev(1, 2, 20.0));
        buf.insert(ev(0, 1, 5.0));
        buf.insert(ev(1, 2, 30.0));
        let drained = buf.drain_matured(Time::MAX);
        let vals: Vec<f64> = drained
            .iter()
            .map(|e| match e.payload {
                Value::Float(f) => f,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![5.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn in_order_insertion_is_append_only() {
        // The fast path: monotone arrivals never trigger a shifting insert.
        let mut buf = ReorderBuf::default();
        for t in 1..=1000 {
            buf.insert(ev(t, t + 1, t as f64));
        }
        assert_eq!(buf.len(), 1000);
        let drained = buf.drain_matured(Time::new(500));
        assert_eq!(drained.len(), 499);
        assert!(drained.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn drain_oldest_takes_the_sorted_prefix() {
        let mut buf = ReorderBuf::default();
        for (s, e) in [(5, 6), (1, 2), (3, 4), (2, 3)] {
            buf.insert(ev(s, e, 0.0));
        }
        let oldest = buf.drain_oldest(2);
        let starts: Vec<i64> = oldest.iter().map(|e| e.start.ticks()).collect();
        assert_eq!(starts, vec![1, 2]);
        assert_eq!(buf.len(), 2);
        // Asking for more than is buffered drains what exists.
        assert_eq!(buf.drain_oldest(10).len(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_random_interleaving_matches_sorted_reference() {
        // Pseudo-random bounded shuffle vs a reference sort.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut events: Vec<Event<Value>> =
            (0..200).map(|i| ev(i + next() % 8, i + 8 + next() % 4, i as f64)).collect();
        let mut reference = events.clone();
        reference.sort_by_key(|e| (e.start, e.end));
        // Scramble arrival order deterministically.
        for i in (1..events.len()).rev() {
            let j = (next() as usize) % (i + 1);
            events.swap(i, j);
        }
        let mut buf = ReorderBuf::default();
        for e in events {
            buf.insert(e);
        }
        let drained = buf.drain_matured(Time::MAX);
        let got: Vec<(Time, Time)> = drained.iter().map(|e| (e.start, e.end)).collect();
        let want: Vec<(Time, Time)> = reference.iter().map(|e| (e.start, e.end)).collect();
        assert_eq!(got, want);
    }
}
