//! The shard worker: one thread owning a disjoint subset of keys.
//!
//! Each shard receives batches of keyed events over a bounded channel,
//! buffers them per key and per source in a reorder buffer, tracks
//! per-source watermarks (`max event start seen − allowed lateness`,
//! floored by explicit watermark messages — see the `max_start` field for
//! why starts, not ends), and — whenever the min-watermark crosses a new
//! emission grid point — drains the matured prefix of every active key's
//! buffer into that key's [`SharedStreamSession`] and advances it. Keys never migrate between shards, so shards share nothing and run
//! synchronization-free, the runtime analogue of the paper's §6.2
//! partition workers.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use tilt_core::{CompiledQuery, SharedStreamSession};
use tilt_data::{Event, Time, Value};

use crate::stats::SharedStats;
use crate::{KeyedEvent, OutputSink, RuntimeConfig};

/// Messages flowing from the runtime handle to a shard worker.
pub(crate) enum ShardMsg {
    /// A batch of events, already routed to this shard.
    Batch(Vec<KeyedEvent>),
    /// An explicit promise that source `source` will deliver no further
    /// events *starting* at or before `time`.
    Watermark { source: usize, time: Time },
    /// Final horizon: flush every session through `time` when the channel
    /// closes.
    FinishAt(Time),
}

/// Per-key state: the streaming session plus the per-source reorder
/// buffers feeding it.
struct KeyState {
    session: SharedStreamSession,
    /// Out-of-order arrivals per source, held until the watermark passes
    /// them.
    pending: Vec<Vec<Event<Value>>>,
    /// End of the last event pushed into the session, per source: the
    /// frontier behind which arrivals are unsalvageably late.
    pushed_end: Vec<Time>,
    /// Finalized output events (drained by `finish` unless a sink is set).
    out: Vec<Event<Value>>,
    /// Whether events were pushed since the session last advanced.
    dirty: bool,
    /// Whether the key is already on the shard's active-visit queue.
    queued: bool,
}

/// Everything a shard returns when it drains and exits.
pub(crate) struct ShardOutput {
    /// Finalized output per key (empty vectors when a sink consumed them).
    pub(crate) per_key: Vec<(u64, Vec<Event<Value>>)>,
}

pub(crate) struct Shard {
    id: usize,
    cq: Arc<CompiledQuery>,
    cfg: RuntimeConfig,
    n_sources: usize,
    grid: i64,
    lookahead: i64,
    keys: HashMap<u64, KeyState>,
    /// Per source: the largest event *start* observed on this shard.
    ///
    /// Watermarks are defined over starts, not ends: an event contributes
    /// value all the way back to its start, so a not-yet-arrived event with
    /// `start ≥ wm` can never change any tick at or before `wm` — which is
    /// exactly the finality emission needs. (An end-based watermark would
    /// let a long straddling event arrive after its early ticks were
    /// already emitted.)
    max_start: Vec<Time>,
    /// The largest event end observed (final flush horizon).
    max_end: Time,
    /// Per source: the largest explicit watermark received.
    explicit: Vec<Time>,
    /// The last emission target the shard advanced its keys to.
    emitted: Time,
    /// Keys needing a visit on the next emission cycle (have new input,
    /// pushed-but-unemitted history, or — with a sink — an unexhausted
    /// output tail). Emission cost scales with this set, not with the
    /// total key population.
    active: Vec<u64>,
    sink: Option<OutputSink>,
    stats: Arc<SharedStats>,
}

impl Shard {
    pub(crate) fn new(
        id: usize,
        cq: Arc<CompiledQuery>,
        cfg: RuntimeConfig,
        sink: Option<OutputSink>,
        stats: Arc<SharedStats>,
    ) -> Self {
        let n_sources = cq.query().inputs().len();
        let grid = cq.grid();
        let lookahead = cq.boundary().max_input_lookahead(cq.query());
        Shard {
            id,
            cq,
            cfg,
            n_sources,
            grid,
            lookahead,
            keys: HashMap::new(),
            max_start: vec![Time::MIN; n_sources],
            max_end: Time::MIN,
            explicit: vec![Time::MIN; n_sources],
            emitted: cfg.start,
            active: Vec::new(),
            sink,
            stats,
        }
    }

    /// The shard main loop: drain the channel, then flush and exit.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMsg>) -> ShardOutput {
        let mut finish_at: Option<Time> = None;
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Batch(events) => {
                    self.stats.queue_depth[self.id]
                        .fetch_sub(events.len() as i64, Ordering::Relaxed);
                    for ev in events {
                        self.accept(ev);
                    }
                }
                ShardMsg::Watermark { source, time } => {
                    if source < self.n_sources {
                        let w = &mut self.explicit[source];
                        *w = (*w).max(time);
                    }
                }
                ShardMsg::FinishAt(time) => finish_at = Some(time),
            }
            self.maybe_advance();
        }
        self.flush(finish_at)
    }

    /// Routes one event into its key's reorder buffer, creating the key's
    /// session on first contact.
    fn accept(&mut self, ev: KeyedEvent) {
        assert!(
            ev.source < self.n_sources,
            "source index {} out of range: query has {} inputs",
            ev.source,
            self.n_sources
        );
        self.max_start[ev.source] = self.max_start[ev.source].max(ev.event.start);
        self.max_end = self.max_end.max(ev.event.end);

        let state = match self.keys.entry(ev.key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.stats.keys.fetch_add(1, Ordering::Relaxed);
                let session = self.cq.shared_stream_session(self.cfg.start);
                e.insert(KeyState {
                    session,
                    pending: vec![Vec::new(); self.n_sources],
                    pushed_end: vec![self.cfg.start; self.n_sources],
                    out: Vec::new(),
                    dirty: false,
                    queued: false,
                })
            }
        };

        // Beyond-lateness arrivals cannot be spliced in front of history
        // that already reached the session; count and drop them.
        let frontier = state.pushed_end[ev.source].max(state.session.watermark());
        if ev.event.start < frontier {
            self.stats.late_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.pending[ev.source].push(ev.event);
        if !state.queued {
            state.queued = true;
            self.active.push(ev.key);
        }
    }

    /// The shard low-watermark: the min across sources of
    /// `max(max_start − allowed_lateness, explicit)`. No future event may
    /// start before it (later arrivals are dropped as late).
    fn watermark(&self) -> Time {
        (0..self.n_sources)
            .map(|s| {
                self.max_start[s].saturating_add(-self.cfg.allowed_lateness).max(self.explicit[s])
            })
            .min()
            .unwrap_or(Time::MIN)
    }

    /// Advances keys when the watermark has crossed a new emission point
    /// (at least `emit_interval` past the previous one, snapped to the
    /// kernel grid).
    ///
    /// Only keys on the active queue are visited, so a cycle costs
    /// O(active keys), not O(total keys). A visited key is re-queued while
    /// it still has buffered input or pushed-but-unemitted history; with a
    /// sink it is additionally re-queued while its eager advances keep
    /// producing output, so a quiet key's already-final tail (the closing
    /// windows after its last event) reaches the sink while the service
    /// keeps running. Once an eager advance produces nothing the key is
    /// parked until new input arrives — for window-style queries an empty
    /// region stays empty without new events. (Queries that emit output on
    /// an empty timeline only surface that output at the shutdown flush.)
    fn maybe_advance(&mut self) {
        let wm = self.watermark();
        self.stats.shard_watermark[self.id].store(wm.ticks(), Ordering::Relaxed);
        // The session emission horizon for watermark `wm`
        // (cf. `StreamSessionIn::advance_to`).
        let target = Time::new(wm.ticks().saturating_sub(self.lookahead)).align_down(self.grid);
        if target.ticks() < self.emitted.ticks().saturating_add(self.cfg.emit_interval) {
            return;
        }
        self.emitted = target;
        let eager = self.sink.is_some();
        let (sink, stats) = (&self.sink, &self.stats);
        let mut visit = std::mem::take(&mut self.active);
        for key in visit.drain(..) {
            let Some(state) = self.keys.get_mut(&key) else { continue };
            state.queued = false;
            Self::drain_pending(state, wm, stats);
            let mut emitted_any = false;
            if (state.dirty || eager) && target > state.session.watermark() {
                let emitted = state.session.advance_to(wm).to_events();
                state.dirty = false;
                emitted_any = !emitted.is_empty();
                Self::deliver(key, emitted, state, sink, stats);
            }
            let revisit = state.dirty
                || state.pending.iter().any(|p| !p.is_empty())
                || (eager && emitted_any);
            if revisit {
                state.queued = true;
                self.active.push(key);
            }
        }
    }

    /// Moves every matured pending event (start < `upto`) into the
    /// session, in time order. Events starting at or after the watermark
    /// stay buffered: an earlier-starting straggler could still arrive and
    /// must sort in front of them.
    fn drain_pending(state: &mut KeyState, upto: Time, stats: &SharedStats) {
        for (source, pending) in state.pending.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            pending.sort_by_key(|e| (e.start, e.end));
            let n = pending.partition_point(|e| e.start < upto);
            if n == 0 {
                continue;
            }
            let mut matured: Vec<Event<Value>> = pending.drain(..n).collect();
            // Duplicate or overlapping arrivals (malformed per-key streams)
            // cannot be appended disjointly; count them as drops rather
            // than corrupting the session history.
            matured.retain(|e| {
                if e.start < state.pushed_end[source] {
                    stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    state.pushed_end[source] = e.end;
                    true
                }
            });
            if !matured.is_empty() {
                state.session.push_events(source, &matured);
                state.dirty = true;
            }
        }
    }

    fn deliver(
        key: u64,
        events: Vec<Event<Value>>,
        state: &mut KeyState,
        sink: &Option<OutputSink>,
        stats: &SharedStats,
    ) {
        if events.is_empty() {
            return;
        }
        stats.events_out.fetch_add(events.len() as u64, Ordering::Relaxed);
        match sink {
            Some(sink) => sink(key, &events),
            None => state.out.extend(events),
        }
    }

    /// End-of-stream: push everything still pending (the watermark can no
    /// longer refute it), flush every session through the final horizon,
    /// and hand the per-key outputs back.
    fn flush(mut self, finish_at: Option<Time>) -> ShardOutput {
        let horizon =
            finish_at.unwrap_or_else(|| self.max_end.max(self.cfg.start).align_up(self.grid));
        self.stats.shard_watermark[self.id].store(horizon.ticks(), Ordering::Relaxed);
        let (sink, stats) = (&self.sink, &self.stats);
        let mut per_key: Vec<(u64, Vec<Event<Value>>)> = Vec::with_capacity(self.keys.len());
        for (key, mut state) in self.keys.drain() {
            Self::drain_pending(&mut state, Time::MAX, stats);
            if horizon > state.session.watermark() {
                let emitted = state.session.flush_to(horizon).to_events();
                Self::deliver(key, emitted, &mut state, sink, stats);
            }
            per_key.push((key, state.out));
        }
        per_key.sort_by_key(|(k, _)| *k);
        ShardOutput { per_key }
    }
}
