//! The shard worker: one thread owning a disjoint subset of keys.
//!
//! Each shard receives batches of keyed events over a bounded channel,
//! buffers them per key and per source in a reorder buffer, tracks
//! per-source watermarks (`max event start seen − allowed lateness`,
//! floored by explicit watermark messages — see the `max_start` field for
//! why starts, not ends), and — whenever the min-watermark crosses a new
//! emission grid point — drains the matured prefix of every active key's
//! buffer into that key's session and advances it. Keys never migrate
//! between shards, so shards share nothing and run synchronization-free,
//! the runtime analogue of the paper's §6.2 partition workers.
//!
//! The shard is generic over an [`Engine`]: stream management (this file)
//! happens once per shard regardless of how many queries are registered;
//! the engine decides whether a key's session serves one compiled query
//! or a deduplicated [`tilt_core::sharing::QueryGroup`].

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use tilt_data::{Event, Time, Value};

use crate::engine::Engine;
use crate::stats::SharedStats;
use crate::{KeyedEvent, OutputSink, RuntimeConfig};

/// Messages flowing from the runtime handle to a shard worker.
pub(crate) enum ShardMsg {
    /// A batch of events, already routed to this shard.
    Batch(Vec<KeyedEvent>),
    /// An explicit promise that source `source` will deliver no further
    /// events *starting* at or before `time`.
    Watermark { source: usize, time: Time },
    /// Final horizon: flush every session through `time` when the channel
    /// closes.
    FinishAt(Time),
}

/// A per-key, per-source reorder buffer kept sorted by `(start, end)` at
/// insertion time (monotone/binary insertion), so draining the matured
/// prefix never re-sorts.
///
/// Streams are mostly in order in practice: the fast path is an O(1)
/// append, and a displaced event pays a shift bounded by how far out of
/// order it actually arrived — instead of the previous
/// O(n log n)-sort-per-drain over the whole pending set.
#[derive(Debug, Default)]
pub(crate) struct ReorderBuf {
    events: Vec<Event<Value>>,
}

impl ReorderBuf {
    /// Inserts `ev` at its sorted position; ties keep arrival order
    /// (stable, matching the previous stable sort).
    pub(crate) fn insert(&mut self, ev: Event<Value>) {
        let key = (ev.start, ev.end);
        if self.events.last().is_none_or(|last| (last.start, last.end) <= key) {
            self.events.push(ev);
            return;
        }
        let i = self.events.partition_point(|e| (e.start, e.end) <= key);
        self.events.insert(i, ev);
    }

    /// Removes and returns the matured prefix: every event starting before
    /// `upto`, in time order. Events starting at or after the watermark
    /// stay buffered — an earlier-starting straggler could still arrive
    /// and must sort in front of them.
    pub(crate) fn drain_matured(&mut self, upto: Time) -> Vec<Event<Value>> {
        let n = self.events.partition_point(|e| e.start < upto);
        self.events.drain(..n).collect()
    }

    /// Whether any events are pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of pending events.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }
}

/// Per-key state: the engine session plus the per-source reorder buffers
/// feeding it.
struct KeyState<S> {
    session: S,
    /// Out-of-order arrivals per source, held until the watermark passes
    /// them.
    pending: Vec<ReorderBuf>,
    /// End of the last event pushed into the session, per source: the
    /// frontier behind which arrivals are unsalvageably late.
    pushed_end: Vec<Time>,
    /// Finalized output events per query (drained by `finish` unless that
    /// query has a sink).
    out: Vec<Vec<Event<Value>>>,
    /// Whether events were pushed since the session last advanced.
    dirty: bool,
    /// Whether the key is already on the shard's active-visit queue.
    queued: bool,
}

/// Everything a shard returns when it drains and exits.
pub(crate) struct ShardOutput {
    /// Finalized output per key, one vector per registered query (empty
    /// when a sink consumed them).
    pub(crate) per_key: Vec<(u64, Vec<Vec<Event<Value>>>)>,
}

pub(crate) struct Shard<E: Engine> {
    id: usize,
    engine: E,
    cfg: RuntimeConfig,
    n_sources: usize,
    grid: i64,
    lookahead: i64,
    /// Cached `engine.kernel_counts()`: (executed, saved) per advance.
    kernel_counts: (u64, u64),
    keys: HashMap<u64, KeyState<E::Session>>,
    /// Per source: the largest event *start* observed on this shard.
    ///
    /// Watermarks are defined over starts, not ends: an event contributes
    /// value all the way back to its start, so a not-yet-arrived event with
    /// `start ≥ wm` can never change any tick at or before `wm` — which is
    /// exactly the finality emission needs. (An end-based watermark would
    /// let a long straddling event arrive after its early ticks were
    /// already emitted.)
    max_start: Vec<Time>,
    /// The largest event end observed (final flush horizon).
    max_end: Time,
    /// Per source: the largest explicit watermark received.
    explicit: Vec<Time>,
    /// The last emission target the shard advanced its keys to.
    emitted: Time,
    /// Keys needing a visit on the next emission cycle (have new input,
    /// pushed-but-unemitted history, or — with a sink — an unexhausted
    /// output tail). Emission cost scales with this set, not with the
    /// total key population.
    active: Vec<u64>,
    /// Per registered query: where finalized events stream to, if anywhere.
    sinks: Arc<[Option<OutputSink>]>,
    stats: Arc<SharedStats>,
}

impl<E: Engine> Shard<E> {
    pub(crate) fn new(
        id: usize,
        engine: E,
        cfg: RuntimeConfig,
        sinks: Arc<[Option<OutputSink>]>,
        stats: Arc<SharedStats>,
    ) -> Self {
        let n_sources = engine.n_sources();
        let grid = engine.grid();
        let lookahead = engine.lookahead();
        let kernel_counts = engine.kernel_counts();
        Shard {
            id,
            engine,
            cfg,
            n_sources,
            grid,
            lookahead,
            kernel_counts,
            keys: HashMap::new(),
            max_start: vec![Time::MIN; n_sources],
            max_end: Time::MIN,
            explicit: vec![Time::MIN; n_sources],
            emitted: cfg.start,
            active: Vec::new(),
            sinks,
            stats,
        }
    }

    /// The shard main loop: drain the channel, then flush and exit.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMsg>) -> ShardOutput {
        let mut finish_at: Option<Time> = None;
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Batch(events) => {
                    self.stats.queue_depth[self.id]
                        .fetch_sub(events.len() as i64, Ordering::Relaxed);
                    for ev in events {
                        self.accept(ev);
                    }
                }
                ShardMsg::Watermark { source, time } => {
                    if source < self.n_sources {
                        let w = &mut self.explicit[source];
                        *w = (*w).max(time);
                    }
                }
                ShardMsg::FinishAt(time) => finish_at = Some(time),
            }
            self.maybe_advance();
        }
        self.flush(finish_at)
    }

    /// Routes one event into its key's reorder buffer, creating the key's
    /// session on first contact.
    fn accept(&mut self, ev: KeyedEvent) {
        assert!(
            ev.source < self.n_sources,
            "source index {} out of range: engine reads {} sources",
            ev.source,
            self.n_sources
        );
        self.max_start[ev.source] = self.max_start[ev.source].max(ev.event.start);
        self.max_end = self.max_end.max(ev.event.end);

        let state = match self.keys.entry(ev.key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.stats.keys.fetch_add(1, Ordering::Relaxed);
                let session = self.engine.open(self.cfg.start);
                e.insert(KeyState {
                    session,
                    pending: (0..self.n_sources).map(|_| ReorderBuf::default()).collect(),
                    pushed_end: vec![self.cfg.start; self.n_sources],
                    out: vec![Vec::new(); self.engine.n_queries()],
                    dirty: false,
                    queued: false,
                })
            }
        };

        // Beyond-lateness arrivals cannot be spliced in front of history
        // that already reached the session; count and drop them. (Counted
        // once per event, however many queries the engine serves.)
        let frontier = state.pushed_end[ev.source].max(E::watermark(&state.session));
        if ev.event.start < frontier {
            self.stats.late_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.pending[ev.source].insert(ev.event);
        self.stats.reorder_buffered.fetch_add(1, Ordering::Relaxed);
        if !state.queued {
            state.queued = true;
            self.active.push(ev.key);
        }
    }

    /// The shard low-watermark: the min across sources of
    /// `max(max_start − allowed_lateness, explicit)`. No future event may
    /// start before it (later arrivals are dropped as late).
    fn watermark(&self) -> Time {
        (0..self.n_sources)
            .map(|s| {
                self.max_start[s].saturating_add(-self.cfg.allowed_lateness).max(self.explicit[s])
            })
            .min()
            .unwrap_or(Time::MIN)
    }

    /// Advances keys when the watermark has crossed a new emission point
    /// (at least `emit_interval` past the previous one, snapped to the
    /// kernel grid).
    ///
    /// Only keys on the active queue are visited, so a cycle costs
    /// O(active keys), not O(total keys). A visited key is re-queued while
    /// it still has buffered input or pushed-but-unemitted history; with a
    /// sink it is additionally re-queued while its eager advances keep
    /// producing output, so a quiet key's already-final tail (the closing
    /// windows after its last event) reaches the sink while the service
    /// keeps running. Once an eager advance produces nothing the key is
    /// parked until new input arrives — for window-style queries an empty
    /// region stays empty without new events. (Queries that emit output on
    /// an empty timeline only surface that output at the shutdown flush.)
    fn maybe_advance(&mut self) {
        let wm = self.watermark();
        self.stats.shard_watermark[self.id].store(wm.ticks(), Ordering::Relaxed);
        // The session emission horizon for watermark `wm`
        // (cf. `StreamSessionIn::advance_to`).
        let target = Time::new(wm.ticks().saturating_sub(self.lookahead)).align_down(self.grid);
        if target.ticks() < self.emitted.ticks().saturating_add(self.cfg.emit_interval) {
            return;
        }
        self.emitted = target;
        let eager = self.sinks.iter().any(|s| s.is_some());
        let (sinks, stats) = (&self.sinks, &self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let mut visit = std::mem::take(&mut self.active);
        for key in visit.drain(..) {
            let Some(state) = self.keys.get_mut(&key) else { continue };
            state.queued = false;
            Self::drain_pending(state, wm, stats);
            let mut emitted_any = false;
            if (state.dirty || eager) && target > E::watermark(&state.session) {
                let bufs = E::advance(&mut state.session, wm);
                state.dirty = false;
                stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                for (qi, buf) in bufs.into_iter().enumerate() {
                    let emitted = buf.to_events();
                    emitted_any |= !emitted.is_empty();
                    Self::deliver(key, qi, emitted, state, sinks, stats);
                }
            }
            let revisit = state.dirty
                || state.pending.iter().any(|p| !p.is_empty())
                || (eager && emitted_any);
            if revisit {
                state.queued = true;
                self.active.push(key);
            }
        }
    }

    /// Moves every matured pending event (start < `upto`) into the
    /// session, in time order (the buffers are kept sorted at insertion).
    fn drain_pending(state: &mut KeyState<E::Session>, upto: Time, stats: &SharedStats) {
        for (source, pending) in state.pending.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            let mut matured = pending.drain_matured(upto);
            if matured.is_empty() {
                continue;
            }
            // Duplicate or overlapping arrivals (malformed per-key streams)
            // cannot be appended disjointly; count them as drops rather
            // than corrupting the session history.
            matured.retain(|e| {
                if e.start < state.pushed_end[source] {
                    stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    state.pushed_end[source] = e.end;
                    true
                }
            });
            if !matured.is_empty() {
                E::push(&mut state.session, source, &matured);
                state.dirty = true;
            }
        }
    }

    fn deliver(
        key: u64,
        query: usize,
        events: Vec<Event<Value>>,
        state: &mut KeyState<E::Session>,
        sinks: &[Option<OutputSink>],
        stats: &SharedStats,
    ) {
        if events.is_empty() {
            return;
        }
        stats.events_out.fetch_add(events.len() as u64, Ordering::Relaxed);
        stats.events_out_query[query].fetch_add(events.len() as u64, Ordering::Relaxed);
        match &sinks[query] {
            Some(sink) => sink(key, &events),
            None => state.out[query].extend(events),
        }
    }

    /// End-of-stream: push everything still pending (the watermark can no
    /// longer refute it), flush every session through the final horizon,
    /// and hand the per-key outputs back.
    fn flush(mut self, finish_at: Option<Time>) -> ShardOutput {
        let horizon =
            finish_at.unwrap_or_else(|| self.max_end.max(self.cfg.start).align_up(self.grid));
        self.stats.shard_watermark[self.id].store(horizon.ticks(), Ordering::Relaxed);
        let (sinks, stats) = (&self.sinks, &self.stats);
        let (k_run, k_saved) = self.kernel_counts;
        let mut per_key: Vec<(u64, Vec<Vec<Event<Value>>>)> = Vec::with_capacity(self.keys.len());
        for (key, mut state) in self.keys.drain() {
            Self::drain_pending(&mut state, Time::MAX, stats);
            if horizon > E::watermark(&state.session) {
                let bufs = E::flush(&mut state.session, horizon);
                stats.kernels_run.fetch_add(k_run, Ordering::Relaxed);
                stats.kernels_saved.fetch_add(k_saved, Ordering::Relaxed);
                for (qi, buf) in bufs.into_iter().enumerate() {
                    let emitted = buf.to_events();
                    Self::deliver(key, qi, emitted, &mut state, sinks, stats);
                }
            }
            per_key.push((key, state.out));
        }
        per_key.sort_by_key(|(k, _)| *k);
        ShardOutput { per_key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: i64, end: i64, v: f64) -> Event<Value> {
        Event::new(Time::new(start), Time::new(end), Value::Float(v))
    }

    #[test]
    fn monotone_insertion_preserves_drain_order() {
        // Bounded-out-of-order arrivals; drain must be (start, end)-sorted —
        // exactly what the previous sort-per-drain produced.
        let mut buf = ReorderBuf::default();
        for (s, e, v) in [(3, 4, 0.0), (1, 2, 1.0), (5, 6, 2.0), (2, 3, 3.0), (4, 5, 4.0)] {
            buf.insert(ev(s, e, v));
        }
        let drained = buf.drain_matured(Time::new(5));
        let starts: Vec<i64> = drained.iter().map(|e| e.start.ticks()).collect();
        assert_eq!(starts, vec![1, 2, 3, 4]);
        assert_eq!(buf.len(), 1, "event starting at 5 is not yet matured");
        let rest = buf.drain_matured(Time::MAX);
        assert_eq!(rest.len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        // Stability: ties on (start, end) must drain in arrival order, as
        // the previous stable sort guaranteed.
        let mut buf = ReorderBuf::default();
        buf.insert(ev(1, 2, 10.0));
        buf.insert(ev(1, 2, 20.0));
        buf.insert(ev(0, 1, 5.0));
        buf.insert(ev(1, 2, 30.0));
        let drained = buf.drain_matured(Time::MAX);
        let vals: Vec<f64> = drained
            .iter()
            .map(|e| match e.payload {
                Value::Float(f) => f,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![5.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn in_order_insertion_is_append_only() {
        // The fast path: monotone arrivals never trigger a shifting insert.
        let mut buf = ReorderBuf::default();
        for t in 1..=1000 {
            buf.insert(ev(t, t + 1, t as f64));
        }
        assert_eq!(buf.len(), 1000);
        let drained = buf.drain_matured(Time::new(500));
        assert_eq!(drained.len(), 499);
        assert!(drained.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn drain_random_interleaving_matches_sorted_reference() {
        // Pseudo-random bounded shuffle vs a reference sort.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut events: Vec<Event<Value>> =
            (0..200).map(|i| ev(i + next() % 8, i + 8 + next() % 4, i as f64)).collect();
        let mut reference = events.clone();
        reference.sort_by_key(|e| (e.start, e.end));
        // Scramble arrival order deterministically.
        for i in (1..events.len()).rev() {
            let j = (next() as usize) % (i + 1);
            events.swap(i, j);
        }
        let mut buf = ReorderBuf::default();
        for e in events {
            buf.insert(e);
        }
        let drained = buf.drain_matured(Time::MAX);
        let got: Vec<(Time, Time)> = drained.iter().map(|e| (e.start, e.end)).collect();
        let want: Vec<(Time, Time)> = reference.iter().map(|e| (e.start, e.end)).collect();
        assert_eq!(got, want);
    }
}
