//! Runtime observability: lock-free counters updated by producers and
//! shard workers, snapshotted on demand as [`RuntimeStats`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tilt_data::Time;

/// Shared atomic counters; one instance per [`crate::Runtime`], updated by
/// every producer and shard thread.
#[derive(Debug)]
pub(crate) struct SharedStats {
    pub(crate) started: Instant,
    pub(crate) events_in: AtomicU64,
    pub(crate) events_out: AtomicU64,
    pub(crate) late_dropped: AtomicU64,
    pub(crate) keys: AtomicU64,
    pub(crate) max_event_end: AtomicI64,
    /// Per shard: events currently queued (sent, not yet received).
    pub(crate) queue_depth: Vec<AtomicI64>,
    /// Per shard: the low-watermark the shard last propagated.
    pub(crate) shard_watermark: Vec<AtomicI64>,
}

impl SharedStats {
    pub(crate) fn new(shards: usize) -> Self {
        SharedStats {
            started: Instant::now(),
            events_in: AtomicU64::new(0),
            events_out: AtomicU64::new(0),
            late_dropped: AtomicU64::new(0),
            keys: AtomicU64::new(0),
            max_event_end: AtomicI64::new(Time::MIN.ticks()),
            queue_depth: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            shard_watermark: (0..shards).map(|_| AtomicI64::new(Time::MIN.ticks())).collect(),
        }
    }

    pub(crate) fn note_event_end(&self, end: Time) {
        self.max_event_end.fetch_max(end.ticks(), Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        let queue_depths: Vec<usize> =
            self.queue_depth.iter().map(|d| d.load(Ordering::Relaxed).max(0) as usize).collect();
        let shard_watermarks: Vec<Time> =
            self.shard_watermark.iter().map(|w| Time::new(w.load(Ordering::Relaxed))).collect();
        let min_watermark = shard_watermarks.iter().copied().min().unwrap_or(Time::MIN);
        let max_event_end = Time::new(self.max_event_end.load(Ordering::Relaxed));
        let elapsed = self.started.elapsed();
        let events_in = self.events_in.load(Ordering::Relaxed);
        RuntimeStats {
            events_in,
            events_out: self.events_out.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            keys: self.keys.load(Ordering::Relaxed),
            queue_depths,
            shard_watermarks,
            min_watermark,
            watermark_lag: if max_event_end > min_watermark {
                max_event_end - min_watermark
            } else {
                0
            },
            elapsed,
            events_per_sec: if elapsed.as_secs_f64() > 0.0 {
                events_in as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time snapshot of runtime health, returned by
/// [`crate::Runtime::stats`].
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Events accepted by [`crate::Runtime::ingest`] so far.
    pub events_in: u64,
    /// Output events emitted across all keys so far.
    pub events_out: u64,
    /// Events dropped for arriving later than the configured
    /// allowed lateness.
    pub late_dropped: u64,
    /// Distinct keys with live sessions.
    pub keys: u64,
    /// Events sitting in each shard's ingest queue (backpressure signal).
    pub queue_depths: Vec<usize>,
    /// Each shard's current low-watermark.
    pub shard_watermarks: Vec<Time>,
    /// The minimum shard watermark: everything at or before this time has
    /// been finalized on every shard.
    pub min_watermark: Time,
    /// Ticks between the newest event seen and the minimum watermark — how
    /// far finalization trails ingestion.
    pub watermark_lag: i64,
    /// Wall-clock time since the runtime started.
    pub elapsed: Duration,
    /// Ingest throughput since start (events per wall-clock second).
    pub events_per_sec: f64,
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in={} out={} late={} keys={} lag={} ticks, {:.0} ev/s, queues {:?}",
            self.events_in,
            self.events_out,
            self.late_dropped,
            self.keys,
            self.watermark_lag,
            self.events_per_sec,
            self.queue_depths,
        )
    }
}
