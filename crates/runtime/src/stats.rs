//! Runtime observability: lock-free counters updated by producers and
//! shard workers, snapshotted on demand as [`RuntimeStats`].
//!
//! Per-query tables (output counts, join frontiers, sinks) are growable
//! behind `RwLock`s because the control plane can attach queries to a
//! *running* service; the hot paths only ever take the read lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tilt_data::Time;

use crate::OutputSink;

/// Shared atomic counters; one instance per service, updated by every
/// producer and shard thread.
#[derive(Debug)]
pub(crate) struct SharedStats {
    pub(crate) started: Instant,
    pub(crate) events_in: AtomicU64,
    pub(crate) events_out: AtomicU64,
    /// Per registered query (by [`crate::QueryHandle`] index): output
    /// events emitted for that query. Grows on live attach.
    pub(crate) events_out_query: RwLock<Vec<AtomicU64>>,
    /// Per registered query: the join frontier it was admitted at
    /// (`config.start` for queries registered before the service started).
    pub(crate) query_frontier: RwLock<Vec<i64>>,
    pub(crate) late_dropped: AtomicU64,
    pub(crate) keys: AtomicU64,
    /// Gauge: keys with a live session right now (created − evicted −
    /// quarantined + revived).
    pub(crate) live_keys: AtomicI64,
    /// Idle sessions retired by the TTL policies (event-time and
    /// wall-clock).
    pub(crate) evictions: AtomicU64,
    /// The subset of `evictions` triggered by the wall-clock TTL
    /// ([`crate::RuntimeConfig::wall_clock_ttl`]).
    pub(crate) wall_evictions: AtomicU64,
    /// Evicted keys transparently re-created by a later arrival.
    pub(crate) revivals: AtomicU64,
    /// Events rejected by the reorder-buffer backstop (drop-and-count
    /// policy, or arrivals behind a force-drained frontier are counted as
    /// `late_dropped` instead).
    pub(crate) backstop_dropped: AtomicU64,
    /// Events force-drained into their session ahead of the watermark by
    /// the backstop.
    pub(crate) backstop_forced: AtomicU64,
    /// Keys whose kernel execution panicked and were quarantined.
    pub(crate) keys_quarantined: AtomicU64,
    /// Events dropped because their key is quarantined.
    pub(crate) quarantine_dropped: AtomicU64,
    /// Events accepted into a reorder buffer. Ingestion and reorder
    /// buffering are shared across registered queries, so this counts each
    /// event once — N independent services would count it N times.
    pub(crate) reorder_buffered: AtomicU64,
    /// Kernel executions performed by session advances/flushes.
    pub(crate) kernels_run: AtomicU64,
    /// Kernel executions *avoided* by structural prefix dedup (what the
    /// same advances would have cost without sharing, minus what they
    /// actually cost).
    pub(crate) kernels_saved: AtomicU64,
    /// Queries attached to the *running* service (registrations before
    /// `start` are not counted here).
    pub(crate) attached: AtomicU64,
    /// Queries detached from the running service.
    pub(crate) detached: AtomicU64,
    /// Gauge: queries currently being served.
    pub(crate) queries_live: AtomicI64,
    /// Per-key execution sessions torn down by detach (the reclamation a
    /// detach buys back; tombstone output reclamation is counted here too,
    /// one per cleared tombstone slot).
    pub(crate) sessions_reclaimed: AtomicU64,
    pub(crate) max_event_end: AtomicI64,
    /// The largest explicit watermark promise made on any source (feeds
    /// attach-frontier negotiation).
    pub(crate) max_promise: AtomicI64,
    /// Per shard: events currently queued (sent, not yet received).
    pub(crate) queue_depth: Vec<AtomicI64>,
    /// Per shard: events currently held in reorder buffers (gauge; the
    /// backstop caps this).
    pub(crate) reorder_pending: Vec<AtomicI64>,
    /// Per shard: the low-watermark the shard last propagated (minimum
    /// over its live cells' watermarks).
    pub(crate) shard_watermark: Vec<AtomicI64>,
}

impl SharedStats {
    pub(crate) fn new(shards: usize) -> Self {
        SharedStats {
            started: Instant::now(),
            events_in: AtomicU64::new(0),
            events_out: AtomicU64::new(0),
            events_out_query: RwLock::new(Vec::new()),
            query_frontier: RwLock::new(Vec::new()),
            late_dropped: AtomicU64::new(0),
            keys: AtomicU64::new(0),
            live_keys: AtomicI64::new(0),
            evictions: AtomicU64::new(0),
            wall_evictions: AtomicU64::new(0),
            revivals: AtomicU64::new(0),
            backstop_dropped: AtomicU64::new(0),
            backstop_forced: AtomicU64::new(0),
            keys_quarantined: AtomicU64::new(0),
            quarantine_dropped: AtomicU64::new(0),
            reorder_buffered: AtomicU64::new(0),
            kernels_run: AtomicU64::new(0),
            kernels_saved: AtomicU64::new(0),
            attached: AtomicU64::new(0),
            detached: AtomicU64::new(0),
            queries_live: AtomicI64::new(0),
            sessions_reclaimed: AtomicU64::new(0),
            max_event_end: AtomicI64::new(Time::MIN.ticks()),
            max_promise: AtomicI64::new(Time::MIN.ticks()),
            queue_depth: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            reorder_pending: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            shard_watermark: (0..shards).map(|_| AtomicI64::new(Time::MIN.ticks())).collect(),
        }
    }

    /// Allocates the next query slot (output counter + frontier record) and
    /// returns its index. Callers serialize registrations (the service's
    /// registry lock), so slot indices agree with registry order.
    pub(crate) fn register_query(&self, frontier: Time, live_attach: bool) -> usize {
        let mut counters = self.events_out_query.write().expect("stats lock");
        counters.push(AtomicU64::new(0));
        let id = counters.len() - 1;
        drop(counters);
        self.query_frontier.write().expect("stats lock").push(frontier.ticks());
        self.queries_live.fetch_add(1, Ordering::Relaxed);
        if live_attach {
            self.attached.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    pub(crate) fn note_detach(&self) {
        self.detached.fetch_add(1, Ordering::Relaxed);
        self.queries_live.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn add_events_out(&self, query: usize, n: u64) {
        self.events_out.fetch_add(n, Ordering::Relaxed);
        let counters = self.events_out_query.read().expect("stats lock");
        if let Some(c) = counters.get(query) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_event_end(&self, end: Time) {
        self.max_event_end.fetch_max(end.ticks(), Ordering::Relaxed);
    }

    pub(crate) fn note_promise(&self, time: Time) {
        self.max_promise.fetch_max(time.ticks(), Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        let queue_depths: Vec<usize> =
            self.queue_depth.iter().map(|d| d.load(Ordering::Relaxed).max(0) as usize).collect();
        let shard_watermarks: Vec<Time> =
            self.shard_watermark.iter().map(|w| Time::new(w.load(Ordering::Relaxed))).collect();
        let min_watermark = shard_watermarks.iter().copied().min().unwrap_or(Time::MIN);
        let max_event_end = Time::new(self.max_event_end.load(Ordering::Relaxed));
        let elapsed = self.started.elapsed();
        let events_in = self.events_in.load(Ordering::Relaxed);
        RuntimeStats {
            events_in,
            events_out: self.events_out.load(Ordering::Relaxed),
            events_out_per_query: self
                .events_out_query
                .read()
                .expect("stats lock")
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            query_frontiers: self
                .query_frontier
                .read()
                .expect("stats lock")
                .iter()
                .map(|t| Time::new(*t))
                .collect(),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            keys: self.keys.load(Ordering::Relaxed),
            live_keys: self.live_keys.load(Ordering::Relaxed).max(0) as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
            wall_evictions: self.wall_evictions.load(Ordering::Relaxed),
            revivals: self.revivals.load(Ordering::Relaxed),
            backstop_dropped: self.backstop_dropped.load(Ordering::Relaxed),
            backstop_forced: self.backstop_forced.load(Ordering::Relaxed),
            keys_quarantined: self.keys_quarantined.load(Ordering::Relaxed),
            quarantine_dropped: self.quarantine_dropped.load(Ordering::Relaxed),
            reorder_pending: self
                .reorder_pending
                .iter()
                .map(|d| d.load(Ordering::Relaxed).max(0) as usize)
                .collect(),
            reorder_buffered: self.reorder_buffered.load(Ordering::Relaxed),
            kernels_run: self.kernels_run.load(Ordering::Relaxed),
            kernels_saved: self.kernels_saved.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Relaxed),
            detached: self.detached.load(Ordering::Relaxed),
            queries_live: self.queries_live.load(Ordering::Relaxed).max(0) as u64,
            sessions_reclaimed: self.sessions_reclaimed.load(Ordering::Relaxed),
            queue_depths,
            shard_watermarks,
            min_watermark,
            watermark_lag: if max_event_end > min_watermark {
                max_event_end - min_watermark
            } else {
                0
            },
            elapsed,
            events_per_sec: if elapsed.as_secs_f64() > 0.0 {
                events_in as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

/// The per-query sink registry: where each query's finalized events stream,
/// if anywhere. Growable and editable at runtime — that is what lets a
/// caller subscribe to a live query's output without waiting for `finish`.
pub(crate) struct SinkTable {
    sinks: RwLock<Vec<Option<OutputSink>>>,
}

impl std::fmt::Debug for SinkTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sinks = self.sinks.read().expect("sink lock");
        write!(f, "SinkTable({}/{} set)", sinks.iter().filter(|s| s.is_some()).count(), sinks.len())
    }
}

impl SinkTable {
    pub(crate) fn new() -> Self {
        SinkTable { sinks: RwLock::new(Vec::new()) }
    }

    /// Appends the slot for a newly registered query.
    pub(crate) fn push(&self, sink: Option<OutputSink>) {
        self.sinks.write().expect("sink lock").push(sink);
    }

    /// Installs (or replaces) a live query's sink.
    pub(crate) fn set(&self, query: usize, sink: Option<OutputSink>) {
        let mut sinks = self.sinks.write().expect("sink lock");
        if query >= sinks.len() {
            sinks.resize_with(query + 1, || None);
        }
        sinks[query] = sink;
    }

    /// The sink for `query`, if one is installed.
    pub(crate) fn get(&self, query: usize) -> Option<OutputSink> {
        self.sinks.read().expect("sink lock").get(query).and_then(Clone::clone)
    }

    /// Whether any query has a sink (drives eager emission).
    pub(crate) fn any(&self) -> bool {
        self.sinks.read().expect("sink lock").iter().any(Option::is_some)
    }
}

/// A point-in-time snapshot of service health, returned by
/// [`crate::StreamService::stats`].
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Events accepted by ingestion so far.
    pub events_in: u64,
    /// Output events emitted across all keys and queries so far.
    pub events_out: u64,
    /// Output events emitted per registered query, indexed by
    /// [`crate::QueryHandle::index`]. Detached queries keep their final
    /// counts.
    pub events_out_per_query: Vec<u64>,
    /// Per registered query: the join frontier it was admitted at —
    /// `config.start` for queries registered before the service started,
    /// the negotiated attach frontier for live attaches. Monotone
    /// non-decreasing in registration order.
    pub query_frontiers: Vec<Time>,
    /// Events no registered query could use: later than every interested
    /// query's allowed lateness, or addressed to a source position no
    /// query reads (e.g. ingesting into an attach-first service before
    /// its first attach). Counted once per event, however many queries
    /// are registered.
    pub late_dropped: u64,
    /// Distinct keys ever seen (live, evicted, and quarantined).
    pub keys: u64,
    /// Keys with a live session right now. With idle eviction enabled
    /// ([`crate::RuntimeConfig::key_ttl`] /
    /// [`crate::RuntimeConfig::wall_clock_ttl`]) this is the steady-state
    /// memory gauge: it tracks the *active* key population, not every key
    /// ever seen.
    pub live_keys: u64,
    /// Idle sessions retired by the TTL policies.
    pub evictions: u64,
    /// The subset of `evictions` triggered by the wall-clock TTL
    /// ([`crate::RuntimeConfig::wall_clock_ttl`]) rather than event-time
    /// idleness.
    pub wall_evictions: u64,
    /// Evicted keys whose session was transparently re-created by a later
    /// arrival.
    pub revivals: u64,
    /// Events rejected by the reorder-buffer backstop under
    /// [`crate::BackstopPolicy::DropNewest`].
    pub backstop_dropped: u64,
    /// Events force-drained into their session ahead of the watermark under
    /// [`crate::BackstopPolicy::ForceDrain`].
    pub backstop_forced: u64,
    /// Keys quarantined after a panic inside their kernel execution; their
    /// subsequent events are dropped (`quarantine_dropped`) instead of
    /// taking the shard down.
    pub keys_quarantined: u64,
    /// Events dropped because their key is quarantined.
    pub quarantine_dropped: u64,
    /// Events currently held in each shard's reorder buffers (gauge; the
    /// backstop caps on this are [`crate::RuntimeConfig::max_pending_per_key`]
    /// and [`crate::RuntimeConfig::max_pending_per_shard`]).
    pub reorder_pending: Vec<usize>,
    /// Events accepted into per-key reorder buffers. Reorder/watermark work
    /// is shared: this counts each ingested event once no matter how many
    /// queries are registered, whereas N independent services would buffer
    /// and sort every event N times.
    pub reorder_buffered: u64,
    /// Kernel executions performed by session advances.
    pub kernels_run: u64,
    /// Kernel executions avoided by the structural prefix dedup across
    /// registered queries (0 for a single-query service).
    pub kernels_saved: u64,
    /// Queries attached to the running service (pre-start registrations
    /// are not counted).
    pub attached: u64,
    /// Queries detached from the running service.
    pub detached: u64,
    /// Queries currently being served.
    pub queries_live: u64,
    /// Per-key execution sessions (and tombstone output slots) reclaimed
    /// by detach.
    pub sessions_reclaimed: u64,
    /// Events sitting in each shard's ingest queue (backpressure signal).
    pub queue_depths: Vec<usize>,
    /// Each shard's current low-watermark.
    pub shard_watermarks: Vec<Time>,
    /// The minimum shard watermark: everything at or before this time has
    /// been finalized on every shard.
    pub min_watermark: Time,
    /// Ticks between the newest event seen and the minimum watermark — how
    /// far finalization trails ingestion.
    pub watermark_lag: i64,
    /// Wall-clock time since the service started.
    pub elapsed: Duration,
    /// Ingest throughput since start (events per wall-clock second).
    pub events_per_sec: f64,
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in={} out={} late={} keys={} lag={} ticks, {:.0} ev/s, queues {:?}",
            self.events_in,
            self.events_out,
            self.late_dropped,
            self.keys,
            self.watermark_lag,
            self.events_per_sec,
            self.queue_depths,
        )?;
        if self.kernels_saved > 0 {
            write!(f, ", kernels {} run / {} deduped", self.kernels_run, self.kernels_saved)?;
        }
        if self.attached + self.detached > 0 {
            write!(
                f,
                ", queries {} live ({} attached, {} detached, {} sessions reclaimed)",
                self.queries_live, self.attached, self.detached, self.sessions_reclaimed
            )?;
        }
        if self.evictions > 0 {
            write!(
                f,
                ", sessions {} live ({} evicted ({} wall-clock), {} revived)",
                self.live_keys, self.evictions, self.wall_evictions, self.revivals
            )?;
        }
        if self.backstop_dropped + self.backstop_forced > 0 {
            write!(
                f,
                ", backstop {} dropped / {} forced",
                self.backstop_dropped, self.backstop_forced
            )?;
        }
        if self.keys_quarantined > 0 {
            write!(
                f,
                ", {} keys quarantined ({} events refused)",
                self.keys_quarantined, self.quarantine_dropped
            )?;
        }
        Ok(())
    }
}
