//! Runtime observability: lock-free counters updated by producers and
//! shard workers, snapshotted on demand as [`RuntimeStats`].
//!
//! Since the `tilt-obs` rework, every scalar counter and gauge here is an
//! instrument registered in a [`tilt_obs::Registry`], so the same numbers
//! that drive [`RuntimeStats`] are exportable as Prometheus text
//! exposition or JSON ([`crate::StreamService::metrics`]) without a second
//! bookkeeping path. The registry hands out `Arc`'d atomics at
//! registration; hot paths never touch the registry lock.
//!
//! Three layers of detail:
//!
//! * **Base counters** — always on (they are the seed-era service health
//!   numbers: throughput, drops, keys, control-plane counts). One relaxed
//!   atomic op each, same cost as before the rework.
//! * **Detailed instrumentation** — gated by
//!   [`crate::RuntimeConfig::metrics`]: per-shard histograms (ingest lag,
//!   watermark lag, reorder residency, advance/flush wall time), per-query
//!   late/kernel attribution, and the control-plane [`Journal`]. Disabled,
//!   none of these paths read a clock or touch a histogram.
//! * **Conservation counters** — `events_consumed` and `detach_dropped`
//!   complete the event-accounting partition so that
//!   [`RuntimeStats::conservation_balance`] can audit that every ingested
//!   event is accounted for exactly once.
//!
//! Per-query tables (output counts, join frontiers, sinks) are growable
//! behind `RwLock`s because the control plane can attach queries to a
//! *running* service; the hot paths only ever take the read lock.

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use tilt_data::Time;
use tilt_obs::{Counter, Gauge, Histogram, Journal, JournalSnapshot, MetricsSnapshot};

use crate::OutputSink;

/// One control-plane transition, as recorded in the service journal
/// ([`crate::StreamService::journal`]).
///
/// The journal records *transitions* — state changes of the service's
/// key/query population — not per-event outcomes: a `DropNewest` backstop
/// refusal only moves a counter ([`RuntimeStats::backstop_dropped`]),
/// while a force-drain *trigger* changes a key's effective frontier and is
/// journaled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlEvent {
    /// A query joined: at service start (`live: false`) or via
    /// [`crate::StreamService::attach`] (`live: true`).
    Attach {
        /// The query's slot ([`crate::QueryHandle::index`]).
        query: usize,
        /// The join frontier it was admitted at.
        frontier: Time,
        /// Whether this was a live attach to the running service.
        live: bool,
    },
    /// A query was detached ([`crate::StreamService::detach`]).
    Detach {
        /// The query's slot.
        query: usize,
    },
    /// An idle key's sessions were retired by a TTL policy.
    Evict {
        /// The shard that owned the key.
        shard: usize,
        /// The retired key.
        key: u64,
        /// `true` for the wall-clock TTL, `false` for event-time idleness.
        wall: bool,
    },
    /// An evicted key was transparently re-created by a later arrival.
    Revive {
        /// The shard that owns the key.
        shard: usize,
        /// The revived key.
        key: u64,
    },
    /// A key's kernel execution panicked; the key is quarantined and its
    /// pending events were discarded.
    Quarantine {
        /// The shard that owned the key.
        shard: usize,
        /// The quarantined key.
        key: u64,
        /// Buffered events discarded at quarantine time (subsequent
        /// arrivals are counted in [`RuntimeStats::quarantine_dropped`]
        /// as they are refused).
        dropped: u64,
    },
    /// The [`crate::BackstopPolicy::ForceDrain`] backstop fired: a cap was
    /// hit and the key's oldest buffered events were drained into its
    /// sessions ahead of the watermark.
    BackstopDrain {
        /// The shard that owns the key.
        shard: usize,
        /// The drained key.
        key: u64,
        /// Events force-drained by this trigger.
        drained: u64,
    },
    /// A whole-service checkpoint was written
    /// ([`crate::StreamService::checkpoint`]).
    Checkpoint {
        /// Shards quiesced into the snapshot.
        shards: usize,
        /// Snapshot file size in bytes.
        bytes: u64,
    },
    /// A service was rebuilt from a checkpoint
    /// ([`crate::StreamService::restore`]).
    Restored {
        /// Shards rebuilt from the snapshot.
        shards: usize,
        /// Snapshot file size in bytes.
        bytes: u64,
    },
    /// An idle key's state was serialized verbatim to the spill store
    /// instead of being flushed to a tombstone.
    Spill {
        /// The shard that owned the key.
        shard: usize,
        /// The spilled key.
        key: u64,
    },
    /// A spilled key's on-disk bundle failed to read back (torn,
    /// bit-rotted, or lost). The key quarantines fail-closed, but this
    /// event — unlike a plain [`ControlEvent::Quarantine`] — tells the
    /// operator the cause was disk corruption, not a kernel panic.
    SpillCorrupt {
        /// The shard that owns the key.
        shard: usize,
        /// The key whose bundle was unreadable.
        key: u64,
    },
    /// A key's sessions moved between shards
    /// ([`crate::StreamService::migrate_key`] /
    /// [`crate::StreamService::rebalance`]).
    Migrate {
        /// The migrated key.
        key: u64,
        /// The shard the key left.
        from: usize,
        /// The shard the key now lives on.
        to: usize,
    },
    /// A remote client connected to a network front end serving this
    /// service (recorded via [`crate::StreamService::record_control`]).
    Connect {
        /// The front end's connection id.
        conn: u64,
    },
    /// A remote client's connection closed (cleanly or on error).
    Disconnect {
        /// The front end's connection id.
        conn: u64,
    },
    /// A remote client subscribed to a query's per-key output stream.
    Subscribe {
        /// The front end's connection id.
        conn: u64,
        /// The subscribed query's slot.
        query: usize,
    },
}

impl std::fmt::Display for ControlEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlEvent::Attach { query, frontier, live } => {
                let how = if *live { "live-attach" } else { "register" };
                write!(f, "{how} query={query} frontier={}", frontier.ticks())
            }
            ControlEvent::Detach { query } => write!(f, "detach query={query}"),
            ControlEvent::Evict { shard, key, wall } => {
                let how = if *wall { "wall-evict" } else { "evict" };
                write!(f, "{how} shard={shard} key={key}")
            }
            ControlEvent::Revive { shard, key } => write!(f, "revive shard={shard} key={key}"),
            ControlEvent::Quarantine { shard, key, dropped } => {
                write!(f, "quarantine shard={shard} key={key} dropped={dropped}")
            }
            ControlEvent::BackstopDrain { shard, key, drained } => {
                write!(f, "backstop-drain shard={shard} key={key} drained={drained}")
            }
            ControlEvent::Checkpoint { shards, bytes } => {
                write!(f, "checkpoint shards={shards} bytes={bytes}")
            }
            ControlEvent::Restored { shards, bytes } => {
                write!(f, "restored shards={shards} bytes={bytes}")
            }
            ControlEvent::Spill { shard, key } => write!(f, "spill shard={shard} key={key}"),
            ControlEvent::SpillCorrupt { shard, key } => {
                write!(f, "spill-corrupt shard={shard} key={key}")
            }
            ControlEvent::Migrate { key, from, to } => {
                write!(f, "migrate key={key} from={from} to={to}")
            }
            ControlEvent::Connect { conn } => write!(f, "connect conn={conn}"),
            ControlEvent::Disconnect { conn } => write!(f, "disconnect conn={conn}"),
            ControlEvent::Subscribe { conn, query } => {
                write!(f, "subscribe conn={conn} query={query}")
            }
        }
    }
}

/// The per-query attribution counters, cached by execution cells so the
/// emit/advance hot paths touch plain `Arc`'d atomics instead of the
/// per-query table lock.
#[derive(Clone, Debug)]
pub(crate) struct QueryCounters {
    /// Output events emitted for this query.
    pub(crate) emitted: Arc<Counter>,
    /// Events this query lost to its lateness bound (admission refusals
    /// and released-but-never-admitted stragglers, attributed per query —
    /// the service-wide [`RuntimeStats::late_dropped`] counts an event
    /// only when *no* query could use it).
    pub(crate) late: Arc<Counter>,
    /// Kernel work attributed to this query, in *millikernels*: each cell
    /// advance that runs `d` distinct kernels for `m` member queries
    /// charges each member `d·1000/m`, so shared-kernel work splits
    /// evenly and the totals still sum to `kernels_run × 1000` per cell.
    pub(crate) kernel_millis: Arc<Counter>,
}

/// Shared counters and instruments; one instance per service, updated by
/// every producer and shard thread.
pub(crate) struct SharedStats {
    /// The metric registry every instrument below is registered in; the
    /// source for [`crate::StreamService::metrics`].
    pub(crate) registry: Arc<tilt_obs::Registry>,
    pub(crate) started: Instant,
    /// Whether detailed instrumentation (histograms, per-query
    /// attribution, kernel timing, the journal) is collected.
    /// Base counters are always on.
    pub(crate) detailed: bool,
    journal: Journal<ControlEvent>,
    pub(crate) events_in: Arc<Counter>,
    pub(crate) events_out: Arc<Counter>,
    /// Events released from reorder buffers into at least one query's
    /// session (the "usefully processed" leg of the conservation
    /// partition). An event consumed by several cells counts once.
    pub(crate) events_consumed: Arc<Counter>,
    /// Events released from reorder buffers after every cell that could
    /// have consumed them was detached (the uncounted leak the obs rework
    /// closed: they are neither consumed nor late).
    pub(crate) detach_dropped: Arc<Counter>,
    /// Per registered query (by [`crate::QueryHandle`] index):
    /// attribution counters. Grows on live attach.
    per_query: RwLock<Vec<QueryCounters>>,
    /// Per registered query: the join frontier it was admitted at
    /// (`config.start` for queries registered before the service started).
    pub(crate) query_frontier: RwLock<Vec<i64>>,
    pub(crate) late_dropped: Arc<Counter>,
    pub(crate) keys: Arc<Counter>,
    /// Gauge: keys with a live session right now (created − evicted −
    /// quarantined + revived).
    pub(crate) live_keys: Arc<Gauge>,
    /// Idle sessions retired by the TTL policies (event-time and
    /// wall-clock).
    pub(crate) evictions: Arc<Counter>,
    /// The subset of `evictions` triggered by the wall-clock TTL
    /// ([`crate::RuntimeConfig::wall_clock_ttl`]).
    pub(crate) wall_evictions: Arc<Counter>,
    /// Evicted keys transparently re-created by a later arrival.
    pub(crate) revivals: Arc<Counter>,
    /// Events rejected by the reorder-buffer backstop (drop-and-count
    /// policy; arrivals behind a force-drained frontier are counted as
    /// `late_dropped` instead).
    pub(crate) backstop_dropped: Arc<Counter>,
    /// Events force-drained into their session ahead of the watermark by
    /// the backstop.
    pub(crate) backstop_forced: Arc<Counter>,
    /// Keys whose kernel execution panicked and were quarantined.
    pub(crate) keys_quarantined: Arc<Counter>,
    /// Events dropped because their key is quarantined, plus buffered
    /// events discarded at quarantine time.
    pub(crate) quarantine_dropped: Arc<Counter>,
    /// Events accepted into a reorder buffer. Ingestion and reorder
    /// buffering are shared across registered queries, so this counts each
    /// event once — N independent services would count it N times.
    pub(crate) reorder_buffered: Arc<Counter>,
    /// Kernel executions performed by session advances/flushes.
    pub(crate) kernels_run: Arc<Counter>,
    /// Kernel executions *avoided* by structural prefix dedup (what the
    /// same advances would have cost without sharing, minus what they
    /// actually cost).
    pub(crate) kernels_saved: Arc<Counter>,
    /// Queries attached to the *running* service (registrations before
    /// `start` are not counted here).
    pub(crate) attached: Arc<Counter>,
    /// Queries detached from the running service.
    pub(crate) detached: Arc<Counter>,
    /// Gauge: queries currently being served.
    pub(crate) queries_live: Arc<Gauge>,
    /// Per-key execution sessions torn down by detach (the reclamation a
    /// detach buys back; tombstone output reclamation is counted here too,
    /// one per cleared tombstone slot).
    pub(crate) sessions_reclaimed: Arc<Counter>,
    /// `reorder_pending` decrements that would have pushed a shard's gauge
    /// negative (clamped instead). Always 0 unless accounting is broken;
    /// the guardrail asserts on it.
    pub(crate) reorder_underflow: Arc<Counter>,
    /// Whole-service checkpoints written.
    pub(crate) checkpoints: Arc<Counter>,
    /// Bytes written through the durable state layer (checkpoints + spill
    /// + migration bundles).
    pub(crate) state_bytes_written: Arc<Counter>,
    /// Bytes read back through the durable state layer.
    pub(crate) state_bytes_read: Arc<Counter>,
    /// Keys spilled to the cold store instead of being flushed to a
    /// tombstone.
    pub(crate) spills: Arc<Counter>,
    /// Spilled keys revived from disk by a later arrival (or the final
    /// flush).
    pub(crate) spill_revivals: Arc<Counter>,
    /// Keys migrated between shards.
    pub(crate) migrations: Arc<Counter>,
    /// Spill bundles that failed to read back (disk corruption, as
    /// opposed to kernel panics — both quarantine, only this increments).
    pub(crate) spill_corrupt: Arc<Counter>,
    /// Gauge: buffered events currently serialized inside spill or
    /// migration bundles rather than resident in a reorder buffer. Part of
    /// the conservation partition — events on disk are still accounted
    /// for.
    pub(crate) spilled_pending: Arc<Gauge>,
    /// Tombstone output events discarded by
    /// [`crate::RuntimeConfig::tombstone_output_cap`].
    pub(crate) tombstone_dropped: Arc<Counter>,
    pub(crate) max_event_end: Arc<Gauge>,
    /// The largest explicit watermark promise made on any source (feeds
    /// attach-frontier negotiation).
    pub(crate) max_promise: Arc<Gauge>,
    /// Per shard: events currently queued (sent, not yet received).
    pub(crate) queue_depth: Vec<Arc<Gauge>>,
    /// Per shard: events currently held in reorder buffers (gauge; the
    /// backstop caps this).
    pub(crate) reorder_pending: Vec<Arc<Gauge>>,
    /// Per shard: the low-watermark the shard last propagated (minimum
    /// over its live cells' watermarks).
    pub(crate) shard_watermark: Vec<Arc<Gauge>>,
    /// Per shard: how many ticks each accepted event trails the newest
    /// event start seen on its source (0 = in order).
    pub(crate) ingest_lag: Vec<Arc<Histogram>>,
    /// Per shard: ticks between the newest event start the shard has seen
    /// and each cell's previously finalized emission point, sampled as a
    /// new cycle becomes due (finalization staleness at catch-up).
    pub(crate) watermark_lag_hist: Vec<Arc<Histogram>>,
    /// Per shard: ticks each event sat in a reorder buffer past its start
    /// before release.
    pub(crate) reorder_residency: Vec<Arc<Histogram>>,
    /// Per shard: wall nanoseconds per watermark-advance cycle.
    pub(crate) advance_ns: Vec<Arc<Histogram>>,
    /// Per shard: wall nanoseconds per shutdown-flush drain.
    pub(crate) flush_ns: Vec<Arc<Histogram>>,
}

impl std::fmt::Debug for SharedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedStats(in={}, out={}, shards={}, detailed={})",
            self.events_in.get(),
            self.events_out.get(),
            self.queue_depth.len(),
            self.detailed,
        )
    }
}

impl SharedStats {
    pub(crate) fn new(shards: usize, detailed: bool, journal_capacity: usize) -> Self {
        let r = Arc::new(tilt_obs::Registry::new());
        let per_shard_gauge = |name: &str| -> Vec<Arc<Gauge>> {
            (0..shards).map(|i| r.gauge_with(name, &[("shard", &i.to_string())])).collect()
        };
        let per_shard_hist = |name: &str| -> Vec<Arc<Histogram>> {
            (0..shards).map(|i| r.histogram_with(name, &[("shard", &i.to_string())])).collect()
        };
        let max_event_end = r.gauge("tilt_max_event_end_ticks");
        max_event_end.set(Time::MIN.ticks());
        let max_promise = r.gauge("tilt_max_promise_ticks");
        max_promise.set(Time::MIN.ticks());
        let shard_watermark = per_shard_gauge("tilt_shard_watermark_ticks");
        for w in &shard_watermark {
            w.set(Time::MIN.ticks());
        }
        SharedStats {
            started: Instant::now(),
            detailed,
            journal: Journal::new(journal_capacity),
            events_in: r.counter("tilt_events_in_total"),
            events_out: r.counter("tilt_events_out_total"),
            events_consumed: r.counter("tilt_events_consumed_total"),
            detach_dropped: r.counter("tilt_detach_dropped_total"),
            per_query: RwLock::new(Vec::new()),
            query_frontier: RwLock::new(Vec::new()),
            late_dropped: r.counter("tilt_late_dropped_total"),
            keys: r.counter("tilt_keys_total"),
            live_keys: r.gauge("tilt_live_keys"),
            evictions: r.counter("tilt_evictions_total"),
            wall_evictions: r.counter("tilt_wall_evictions_total"),
            revivals: r.counter("tilt_revivals_total"),
            backstop_dropped: r.counter("tilt_backstop_dropped_total"),
            backstop_forced: r.counter("tilt_backstop_forced_total"),
            keys_quarantined: r.counter("tilt_keys_quarantined_total"),
            quarantine_dropped: r.counter("tilt_quarantine_dropped_total"),
            reorder_buffered: r.counter("tilt_reorder_buffered_total"),
            kernels_run: r.counter("tilt_kernels_run_total"),
            kernels_saved: r.counter("tilt_kernels_saved_total"),
            attached: r.counter("tilt_attached_total"),
            detached: r.counter("tilt_detached_total"),
            queries_live: r.gauge("tilt_queries_live"),
            sessions_reclaimed: r.counter("tilt_sessions_reclaimed_total"),
            reorder_underflow: r.counter("tilt_reorder_underflow_total"),
            checkpoints: r.counter("tilt_state_checkpoints_total"),
            state_bytes_written: r.counter("tilt_state_bytes_written_total"),
            state_bytes_read: r.counter("tilt_state_bytes_read_total"),
            spills: r.counter("tilt_state_spills_total"),
            spill_revivals: r.counter("tilt_state_revivals_total"),
            migrations: r.counter("tilt_state_migrations_total"),
            spill_corrupt: r.counter("tilt_state_spill_corrupt_total"),
            spilled_pending: r.gauge("tilt_state_spilled_pending"),
            tombstone_dropped: r.counter("tilt_tombstone_output_dropped_total"),
            max_event_end,
            max_promise,
            queue_depth: per_shard_gauge("tilt_queue_depth"),
            reorder_pending: per_shard_gauge("tilt_reorder_pending"),
            shard_watermark,
            ingest_lag: per_shard_hist("tilt_ingest_lag_ticks"),
            watermark_lag_hist: per_shard_hist("tilt_watermark_lag_ticks"),
            reorder_residency: per_shard_hist("tilt_reorder_residency_ticks"),
            advance_ns: per_shard_hist("tilt_advance_ns"),
            flush_ns: per_shard_hist("tilt_flush_ns"),
            registry: r,
        }
    }

    /// Records a control-plane transition in the journal (a no-op when
    /// detailed instrumentation is off).
    pub(crate) fn note_control(&self, event: ControlEvent) {
        if self.detailed {
            self.journal.push(event);
        }
    }

    /// Copies out the retained journal events.
    pub(crate) fn journal_snapshot(&self) -> JournalSnapshot<ControlEvent> {
        self.journal.snapshot()
    }

    /// Freezes every registered metric.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        // Bridge the dependency-free fault registry's per-site injection
        // counts into the scrape (absolute values, so a gauge). Empty —
        // and absent — in every production run.
        for (site, n) in tilt_fault::counters() {
            self.registry
                .gauge_with("tilt_fault_injected_total", &[("site", &site)])
                .set(n.min(i64::MAX as u64) as i64);
        }
        self.registry.snapshot()
    }

    /// Allocates the next query slot (attribution counters + frontier
    /// record) and returns its index. Callers serialize registrations (the
    /// service's registry lock), so slot indices agree with registry order.
    pub(crate) fn register_query(&self, frontier: Time, live_attach: bool) -> usize {
        let mut counters = self.per_query.write().expect("stats lock");
        let id = counters.len();
        let q = id.to_string();
        let labels: &[(&str, &str)] = &[("query", &q)];
        counters.push(QueryCounters {
            emitted: self.registry.counter_with("tilt_query_emitted_total", labels),
            late: self.registry.counter_with("tilt_query_late_total", labels),
            kernel_millis: self.registry.counter_with("tilt_query_kernel_millis_total", labels),
        });
        drop(counters);
        self.query_frontier.write().expect("stats lock").push(frontier.ticks());
        self.queries_live.add(1);
        if live_attach {
            self.attached.inc();
        }
        self.note_control(ControlEvent::Attach { query: id, frontier, live: live_attach });
        id
    }

    pub(crate) fn note_detach(&self, query: usize) {
        self.detached.inc();
        self.queries_live.sub(1);
        self.note_control(ControlEvent::Detach { query });
    }

    /// The attribution counters for a set of query slots, for cells to
    /// cache (missing slots are skipped — they cannot occur for live
    /// cells).
    pub(crate) fn query_counters(&self, qids: &[usize]) -> Vec<QueryCounters> {
        let table = self.per_query.read().expect("stats lock");
        qids.iter().filter_map(|&q| table.get(q).cloned()).collect()
    }

    pub(crate) fn add_events_out(&self, query: usize, n: u64) {
        self.events_out.add(n);
        let counters = self.per_query.read().expect("stats lock");
        if let Some(c) = counters.get(query) {
            c.emitted.add(n);
        }
    }

    pub(crate) fn note_event_end(&self, end: Time) {
        self.max_event_end.set_max(end.ticks());
    }

    pub(crate) fn note_promise(&self, time: Time) {
        self.max_promise.set_max(time.ticks());
    }

    /// The monotone service counters a checkpoint carries, in the fixed
    /// order [`SharedStats::restore_counters`] reads them back. Gauges
    /// (queue depths, pending, live keys) are deliberately absent: restore
    /// recomputes them from the reinstalled state.
    pub(crate) fn durable_counters(&self) -> Vec<u64> {
        vec![
            self.events_in.get(),
            self.events_out.get(),
            self.events_consumed.get(),
            self.detach_dropped.get(),
            self.late_dropped.get(),
            self.keys.get(),
            self.evictions.get(),
            self.wall_evictions.get(),
            self.revivals.get(),
            self.backstop_dropped.get(),
            self.backstop_forced.get(),
            self.keys_quarantined.get(),
            self.quarantine_dropped.get(),
            self.reorder_buffered.get(),
            self.kernels_run.get(),
            self.kernels_saved.get(),
            self.attached.get(),
            self.detached.get(),
            self.sessions_reclaimed.get(),
            self.tombstone_dropped.get(),
            self.spills.get(),
            self.spill_revivals.get(),
            self.migrations.get(),
            self.checkpoints.get(),
            self.state_bytes_written.get(),
            self.state_bytes_read.get(),
            // Appended in PR 10; must stay last-but-extendable — restore
            // zips, so older snapshots with fewer entries still load.
            self.spill_corrupt.get(),
        ]
    }

    /// Adds checkpointed counter values onto this (fresh) instance; the
    /// slice must come from [`SharedStats::durable_counters`].
    pub(crate) fn restore_counters(&self, vals: &[u64]) {
        let targets = [
            &self.events_in,
            &self.events_out,
            &self.events_consumed,
            &self.detach_dropped,
            &self.late_dropped,
            &self.keys,
            &self.evictions,
            &self.wall_evictions,
            &self.revivals,
            &self.backstop_dropped,
            &self.backstop_forced,
            &self.keys_quarantined,
            &self.quarantine_dropped,
            &self.reorder_buffered,
            &self.kernels_run,
            &self.kernels_saved,
            &self.attached,
            &self.detached,
            &self.sessions_reclaimed,
            &self.tombstone_dropped,
            &self.spills,
            &self.spill_revivals,
            &self.migrations,
            &self.checkpoints,
            &self.state_bytes_written,
            &self.state_bytes_read,
            &self.spill_corrupt,
        ];
        for (target, v) in targets.iter().zip(vals) {
            target.add(*v);
        }
    }

    /// Decrements a shard's `reorder_pending` gauge, clamping at zero: a
    /// deficit means the accounting double-subtracted (a bug), so it is
    /// surfaced on the `reorder_underflow` counter (and trips debug
    /// builds) instead of corrupting the gauge.
    pub(crate) fn sub_reorder_pending(&self, shard: usize, n: usize) {
        let deficit = self.reorder_pending[shard].sub_clamped(n as i64);
        debug_assert_eq!(deficit, 0, "reorder_pending[{shard}] underflow by {deficit}");
        self.reorder_underflow.add(deficit as u64);
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        let queue_depths: Vec<usize> =
            self.queue_depth.iter().map(|d| d.get().max(0) as usize).collect();
        let shard_watermarks: Vec<Time> =
            self.shard_watermark.iter().map(|w| Time::new(w.get())).collect();
        let min_watermark = shard_watermarks.iter().copied().min().unwrap_or(Time::MIN);
        let max_event_end = Time::new(self.max_event_end.get());
        let elapsed = self.started.elapsed();
        let events_in = self.events_in.get();
        let per_query = self.per_query.read().expect("stats lock");
        RuntimeStats {
            events_in,
            events_out: self.events_out.get(),
            events_consumed: self.events_consumed.get(),
            detach_dropped: self.detach_dropped.get(),
            events_out_per_query: per_query.iter().map(|c| c.emitted.get()).collect(),
            late_per_query: per_query.iter().map(|c| c.late.get()).collect(),
            kernel_millis_per_query: per_query.iter().map(|c| c.kernel_millis.get()).collect(),
            query_frontiers: self
                .query_frontier
                .read()
                .expect("stats lock")
                .iter()
                .map(|t| Time::new(*t))
                .collect(),
            late_dropped: self.late_dropped.get(),
            keys: self.keys.get(),
            live_keys: self.live_keys.get().max(0) as u64,
            evictions: self.evictions.get(),
            wall_evictions: self.wall_evictions.get(),
            revivals: self.revivals.get(),
            backstop_dropped: self.backstop_dropped.get(),
            backstop_forced: self.backstop_forced.get(),
            keys_quarantined: self.keys_quarantined.get(),
            quarantine_dropped: self.quarantine_dropped.get(),
            reorder_pending: self.reorder_pending.iter().map(|d| d.get().max(0) as usize).collect(),
            reorder_buffered: self.reorder_buffered.get(),
            reorder_underflow: self.reorder_underflow.get(),
            kernels_run: self.kernels_run.get(),
            kernels_saved: self.kernels_saved.get(),
            attached: self.attached.get(),
            detached: self.detached.get(),
            queries_live: self.queries_live.get().max(0) as u64,
            sessions_reclaimed: self.sessions_reclaimed.get(),
            checkpoints: self.checkpoints.get(),
            state_bytes_written: self.state_bytes_written.get(),
            state_bytes_read: self.state_bytes_read.get(),
            spills: self.spills.get(),
            spill_revivals: self.spill_revivals.get(),
            migrations: self.migrations.get(),
            spill_corrupt: self.spill_corrupt.get(),
            spilled_pending: self.spilled_pending.get().max(0) as usize,
            tombstone_dropped: self.tombstone_dropped.get(),
            queue_depths,
            shard_watermarks,
            min_watermark,
            watermark_lag: if max_event_end > min_watermark {
                max_event_end - min_watermark
            } else {
                0
            },
            elapsed,
            events_per_sec: if elapsed.as_secs_f64() > 0.0 {
                events_in as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

/// The per-query sink registry: where each query's finalized events stream,
/// if anywhere. Growable and editable at runtime — that is what lets a
/// caller subscribe to a live query's output without waiting for `finish`.
pub(crate) struct SinkTable {
    sinks: RwLock<Vec<Option<OutputSink>>>,
}

impl std::fmt::Debug for SinkTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sinks = self.sinks.read().expect("sink lock");
        write!(f, "SinkTable({}/{} set)", sinks.iter().filter(|s| s.is_some()).count(), sinks.len())
    }
}

impl SinkTable {
    pub(crate) fn new() -> Self {
        SinkTable { sinks: RwLock::new(Vec::new()) }
    }

    /// Appends the slot for a newly registered query.
    pub(crate) fn push(&self, sink: Option<OutputSink>) {
        self.sinks.write().expect("sink lock").push(sink);
    }

    /// Installs (or replaces) a live query's sink.
    pub(crate) fn set(&self, query: usize, sink: Option<OutputSink>) {
        let mut sinks = self.sinks.write().expect("sink lock");
        if query >= sinks.len() {
            sinks.resize_with(query + 1, || None);
        }
        sinks[query] = sink;
    }

    /// The sink for `query`, if one is installed.
    pub(crate) fn get(&self, query: usize) -> Option<OutputSink> {
        self.sinks.read().expect("sink lock").get(query).and_then(Clone::clone)
    }

    /// Whether any query has a sink (drives eager emission).
    pub(crate) fn any(&self) -> bool {
        self.sinks.read().expect("sink lock").iter().any(Option::is_some)
    }
}

/// A point-in-time snapshot of service health, returned by
/// [`crate::StreamService::stats`].
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Events accepted by ingestion so far.
    pub events_in: u64,
    /// Output events emitted across all keys and queries so far.
    pub events_out: u64,
    /// Events released from reorder buffers into at least one query's
    /// session. With `late_dropped`, the drop counters, and the pending
    /// gauges this partitions `events_in` — see
    /// [`RuntimeStats::conservation_balance`].
    pub events_consumed: u64,
    /// Events released from reorder buffers after every query that could
    /// have consumed them detached (neither consumed nor late).
    pub detach_dropped: u64,
    /// Output events emitted per registered query, indexed by
    /// [`crate::QueryHandle::index`]. Detached queries keep their final
    /// counts.
    pub events_out_per_query: Vec<u64>,
    /// Per registered query: events that query lost to its own lateness
    /// bound (admission refusals attributed per query; an event several
    /// queries refuse is attributed to each). Collected only with
    /// [`crate::RuntimeConfig::metrics`] on; zeros otherwise.
    pub late_per_query: Vec<u64>,
    /// Per registered query: kernel work attributed to it, in
    /// *millikernels* (an advance running `d` distinct kernels for `m`
    /// member queries charges each member `d·1000/m`). Collected only with
    /// [`crate::RuntimeConfig::metrics`] on; zeros otherwise.
    pub kernel_millis_per_query: Vec<u64>,
    /// Per registered query: the join frontier it was admitted at —
    /// `config.start` for queries registered before the service started,
    /// the negotiated attach frontier for live attaches. Monotone
    /// non-decreasing in registration order.
    pub query_frontiers: Vec<Time>,
    /// Events no registered query could use: later than every interested
    /// query's allowed lateness, or addressed to a source position no
    /// query reads (e.g. ingesting into an attach-first service before
    /// its first attach). Counted once per event, however many queries
    /// are registered.
    pub late_dropped: u64,
    /// Distinct keys ever seen (live, evicted, and quarantined).
    pub keys: u64,
    /// Keys with a live session right now. With idle eviction enabled
    /// ([`crate::RuntimeConfig::key_ttl`] /
    /// [`crate::RuntimeConfig::wall_clock_ttl`]) this is the steady-state
    /// memory gauge: it tracks the *active* key population, not every key
    /// ever seen.
    pub live_keys: u64,
    /// Idle sessions retired by the TTL policies.
    pub evictions: u64,
    /// The subset of `evictions` triggered by the wall-clock TTL
    /// ([`crate::RuntimeConfig::wall_clock_ttl`]) rather than event-time
    /// idleness.
    pub wall_evictions: u64,
    /// Evicted keys whose session was transparently re-created by a later
    /// arrival.
    pub revivals: u64,
    /// Events rejected by the reorder-buffer backstop under
    /// [`crate::BackstopPolicy::DropNewest`].
    pub backstop_dropped: u64,
    /// Events force-drained into their session ahead of the watermark under
    /// [`crate::BackstopPolicy::ForceDrain`].
    pub backstop_forced: u64,
    /// Keys quarantined after a panic inside their kernel execution; their
    /// subsequent events are dropped (`quarantine_dropped`) instead of
    /// taking the shard down.
    pub keys_quarantined: u64,
    /// Events dropped because their key is quarantined, plus buffered
    /// events discarded at quarantine time.
    pub quarantine_dropped: u64,
    /// Events currently held in each shard's reorder buffers (gauge; the
    /// backstop caps on this are [`crate::RuntimeConfig::max_pending_per_key`]
    /// and [`crate::RuntimeConfig::max_pending_per_shard`]).
    pub reorder_pending: Vec<usize>,
    /// Events accepted into per-key reorder buffers. Reorder/watermark work
    /// is shared: this counts each ingested event once no matter how many
    /// queries are registered, whereas N independent services would buffer
    /// and sort every event N times.
    pub reorder_buffered: u64,
    /// Reorder-pending decrements that had to be clamped at zero (always 0
    /// unless accounting is broken; the bench guardrail asserts on it).
    pub reorder_underflow: u64,
    /// Kernel executions performed by session advances.
    pub kernels_run: u64,
    /// Kernel executions avoided by the structural prefix dedup across
    /// registered queries (0 for a single-query service).
    pub kernels_saved: u64,
    /// Queries attached to the running service (pre-start registrations
    /// are not counted).
    pub attached: u64,
    /// Queries detached from the running service.
    pub detached: u64,
    /// Queries currently being served.
    pub queries_live: u64,
    /// Per-key execution sessions (and tombstone output slots) reclaimed
    /// by detach.
    pub sessions_reclaimed: u64,
    /// Whole-service checkpoints written
    /// ([`crate::StreamService::checkpoint`]).
    pub checkpoints: u64,
    /// Bytes written through the durable state layer: checkpoints, spill
    /// bundles, and migration payloads.
    pub state_bytes_written: u64,
    /// Bytes read back through the durable state layer.
    pub state_bytes_read: u64,
    /// Keys whose state was spilled verbatim to the cold store instead of
    /// being flushed to an in-memory tombstone (requires
    /// [`crate::StreamServiceBuilder::spill_to`]).
    pub spills: u64,
    /// Spilled keys revived from disk — by a later arrival or by the final
    /// flush. Every spilled key is eventually revived exactly once (the
    /// `durability` bench guardrail asserts `spills == spill_revivals` at
    /// shutdown).
    pub spill_revivals: u64,
    /// Keys migrated between shards ([`crate::StreamService::migrate_key`]
    /// / [`crate::StreamService::rebalance`]).
    pub migrations: u64,
    /// Spill bundles that failed to read back from disk. Each one also
    /// quarantined its key — this counter is what distinguishes disk
    /// corruption from kernel panics in [`RuntimeStats::keys_quarantined`].
    pub spill_corrupt: u64,
    /// Buffered events currently serialized inside spill or migration
    /// bundles (gauge). These are neither consumed nor resident in a
    /// reorder buffer, so [`RuntimeStats::conservation_balance`] counts
    /// them as their own account.
    pub spilled_pending: usize,
    /// Tombstone output events discarded by
    /// [`crate::RuntimeConfig::tombstone_output_cap`].
    pub tombstone_dropped: u64,
    /// Events sitting in each shard's ingest queue (backpressure signal).
    pub queue_depths: Vec<usize>,
    /// Each shard's current low-watermark.
    pub shard_watermarks: Vec<Time>,
    /// The minimum shard watermark: everything at or before this time has
    /// been finalized on every shard.
    pub min_watermark: Time,
    /// Ticks between the newest event seen and the minimum watermark — how
    /// far finalization trails ingestion.
    pub watermark_lag: i64,
    /// Wall-clock time since the service started.
    pub elapsed: Duration,
    /// Ingest throughput since start (events per wall-clock second).
    pub events_per_sec: f64,
}

impl RuntimeStats {
    /// The event-conservation imbalance: `events_in` minus every account
    /// an ingested event can end up in —
    ///
    /// `consumed + late_dropped + backstop_dropped + quarantine_dropped +
    ///  detach_dropped + spilled_pending + Σ reorder_pending + Σ queue_depths`
    ///
    /// Zero at any quiescent point (in particular on the final snapshot a
    /// `finish` returns, where the pending, spilled, and queue terms are
    /// zero). A positive balance means events vanished unaccounted;
    /// negative means something was double-counted. The bench guardrail
    /// asserts 0. (`tombstone_dropped` counts *output* events, which are
    /// not part of this partition.)
    pub fn conservation_balance(&self) -> i64 {
        let accounted = self.events_consumed
            + self.late_dropped
            + self.backstop_dropped
            + self.quarantine_dropped
            + self.detach_dropped
            + self.spilled_pending as u64
            + self.reorder_pending.iter().sum::<usize>() as u64
            + self.queue_depths.iter().sum::<usize>() as u64;
        self.events_in as i64 - accounted as i64
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if f.alternate() {
            return self.fmt_multiline(f);
        }
        write!(
            f,
            "in={} out={} late={} keys={} lag={} ticks, {:.0} ev/s, queues {:?}",
            self.events_in,
            self.events_out,
            self.late_dropped,
            self.keys,
            self.watermark_lag,
            self.events_per_sec,
            self.queue_depths,
        )?;
        if self.kernels_saved > 0 {
            write!(f, ", kernels {} run / {} deduped", self.kernels_run, self.kernels_saved)?;
        }
        if self.attached + self.detached > 0 {
            write!(
                f,
                ", queries {} live ({} attached, {} detached, {} sessions reclaimed)",
                self.queries_live, self.attached, self.detached, self.sessions_reclaimed
            )?;
        }
        if self.evictions > 0 {
            write!(
                f,
                ", sessions {} live ({} evicted ({} wall-clock), {} revived)",
                self.live_keys, self.evictions, self.wall_evictions, self.revivals
            )?;
        }
        if self.backstop_dropped + self.backstop_forced > 0 {
            write!(
                f,
                ", backstop {} dropped / {} forced",
                self.backstop_dropped, self.backstop_forced
            )?;
        }
        if self.keys_quarantined > 0 {
            write!(
                f,
                ", {} keys quarantined ({} events refused)",
                self.keys_quarantined, self.quarantine_dropped
            )?;
        }
        if self.checkpoints + self.spills + self.migrations > 0 {
            write!(
                f,
                ", durability {} checkpoints / {} spills ({} revived) / {} migrations",
                self.checkpoints, self.spills, self.spill_revivals, self.migrations
            )?;
        }
        Ok(())
    }
}

impl RuntimeStats {
    /// The `{:#}` pretty form: one labelled line per concern, for
    /// human-facing reports (the examples print this).
    fn fmt_multiline(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "throughput   {} in / {} out in {:.2?} ({:.0} ev/s)",
            self.events_in, self.events_out, self.elapsed, self.events_per_sec
        )?;
        writeln!(
            f,
            "accounting   {} consumed, {} late, {} backstop, {} quarantine, {} detach (balance {})",
            self.events_consumed,
            self.late_dropped,
            self.backstop_dropped,
            self.quarantine_dropped,
            self.detach_dropped,
            self.conservation_balance(),
        )?;
        writeln!(
            f,
            "keys         {} seen, {} live, {} evicted ({} wall-clock), {} revived, {} quarantined",
            self.keys,
            self.live_keys,
            self.evictions,
            self.wall_evictions,
            self.revivals,
            self.keys_quarantined
        )?;
        writeln!(
            f,
            "queries      {} live ({} attached, {} detached, {} sessions reclaimed)",
            self.queries_live, self.attached, self.detached, self.sessions_reclaimed
        )?;
        writeln!(f, "  out        {:?}", self.events_out_per_query)?;
        if self.late_per_query.iter().any(|&n| n > 0) {
            writeln!(f, "  late       {:?}", self.late_per_query)?;
        }
        if self.kernel_millis_per_query.iter().any(|&n| n > 0) {
            writeln!(f, "  kernel(m)  {:?}", self.kernel_millis_per_query)?;
        }
        writeln!(f, "kernels      {} run, {} deduped", self.kernels_run, self.kernels_saved)?;
        if self.checkpoints + self.spills + self.migrations > 0 {
            writeln!(
                f,
                "durability   {} checkpoints, {} spills ({} revived), {} migrations, \
                 {}B written / {}B read",
                self.checkpoints,
                self.spills,
                self.spill_revivals,
                self.migrations,
                self.state_bytes_written,
                self.state_bytes_read
            )?;
        }
        writeln!(
            f,
            "watermark    min {} (lag {} ticks)",
            self.min_watermark.ticks(),
            self.watermark_lag
        )?;
        write!(f, "shards       queues {:?}, pending {:?}", self.queue_depths, self.reorder_pending)
    }
}
