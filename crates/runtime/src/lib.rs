//! `tilt-runtime` — a sharded, keyed, out-of-order-tolerant streaming
//! runtime that serves compiled TiLT queries over many independent key
//! streams.
//!
//! The TiLT compiler (paper §6) produces a [`CompiledQuery`] for a single
//! logical stream. Long-running services need the layer above: millions of
//! per-key streams (one per user, campaign, device, …) multiplexed over a
//! fixed worker pool, with events arriving out of order — and usually more
//! than one query watching the same streams. This crate provides that
//! layer, compile-once/serve-many style:
//!
//! * **Keyed ingestion** — [`Runtime::ingest`] hash-partitions
//!   [`KeyedEvent`]s across `N` shard threads over bounded channels
//!   (backpressure: producers block when a shard falls behind);
//! * **Out-of-order tolerance** — each shard holds a per-key, per-source
//!   reorder buffer (kept sorted by monotone insertion; drains never
//!   re-sort); events mature once the shard watermark passes them.
//!   Per-source watermarks advance as `max event start seen −
//!   allowed_lateness` (floored by explicit [`Runtime::watermark`]
//!   promises) and their minimum drives emission, so a slow source holds
//!   results back rather than corrupting them. Watermarks bound event
//!   *starts* because an event contributes value back to its start: once
//!   no future event can start at or before `wm`, every tick up to `wm`
//!   is final;
//! * **Multi-query sharing** — a [`MultiRuntime`] serves N registered
//!   queries over *one* ingested stream: reorder buffering and watermark
//!   tracking happen once per shard (not once per query), and structurally
//!   identical kernel prefixes across queries execute once per advance
//!   (via [`tilt_core::sharing::QueryGroup`] — cf. *Shared Arrangements*
//!   and *Factor Windows*). Each query keeps its own [`QueryId`], sink,
//!   and output/stats accounting;
//! * **Synchronization-free data parallelism** — keys never migrate
//!   between shards; each shard drives plain per-key sessions, so shards
//!   share nothing but the read-only compiled queries (the runtime
//!   analogue of §6.2's partition workers);
//! * **Hardening for long-running skewed traffic** — sessions for keys
//!   idle past a configurable TTL are *evicted* and transparently
//!   re-created on revival ([`RuntimeConfig::key_ttl`]); reorder buffers
//!   are *capped* so a stalled source cannot pin unbounded memory
//!   ([`RuntimeConfig::max_pending_per_key`] /
//!   [`RuntimeConfig::max_pending_per_shard`] with a [`BackstopPolicy`]);
//!   and kernel execution runs under `catch_unwind`, so a poisoned key is
//!   *quarantined* — counted, its later events refused — instead of
//!   killing its shard thread and every other key on it;
//! * **Observability** — [`Runtime::stats`] snapshots throughput,
//!   watermark lag, late-drop counts, live/evicted/quarantined key counts,
//!   reorder-buffer occupancy, per-shard queue depths, per-query output
//!   counts, and the kernel executions saved by dedup.
//!
//! Events later than `allowed_lateness` are *dropped and counted*
//! ([`RuntimeStats::late_dropped`]), the classic watermark trade-off.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
//! use tilt_core::Compiler;
//! use tilt_data::{Event, Time, Value};
//! use tilt_runtime::{KeyedEvent, Runtime, RuntimeConfig};
//!
//! // Per-key 4-tick sliding sum.
//! let mut b = Query::builder();
//! let input = b.input("x", DataType::Float);
//! let sum = b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 4));
//! let query = b.finish(sum).unwrap();
//! let cq = Arc::new(Compiler::new().compile(&query).unwrap());
//!
//! let runtime = Runtime::start(
//!     Arc::clone(&cq),
//!     RuntimeConfig { shards: 2, allowed_lateness: 8, ..RuntimeConfig::default() },
//! );
//! // Two keys, events interleaved and out of order within each key.
//! runtime.ingest([
//!     KeyedEvent::new(7, 0, Event::point(Time::new(2), Value::Float(1.0))),
//!     KeyedEvent::new(9, 0, Event::point(Time::new(1), Value::Float(5.0))),
//!     KeyedEvent::new(7, 0, Event::point(Time::new(1), Value::Float(2.0))), // late, in bound
//!     KeyedEvent::new(9, 0, Event::point(Time::new(2), Value::Float(6.0))),
//! ]);
//! let output = runtime.finish_at(Time::new(4));
//! assert_eq!(output.stats.late_dropped, 0);
//! // Key 7 saw 1.0@2 and 2.0@1: the 4-tick sum at t=2 is 3.0.
//! let key7 = &output.per_key[&7];
//! assert!(key7.iter().any(|e| e.payload == Value::Float(3.0)));
//! ```
//!
//! # Multi-query example
//!
//! ```
//! use std::sync::Arc;
//! use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
//! use tilt_core::Compiler;
//! use tilt_data::{Event, Time, Value};
//! use tilt_runtime::{KeyedEvent, MultiRuntime, RuntimeConfig};
//!
//! let compile = |window: i64| {
//!     let mut b = Query::builder();
//!     let input = b.input("x", DataType::Float);
//!     let s = b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
//!     Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
//! };
//! let mut builder = MultiRuntime::builder(RuntimeConfig { shards: 2, ..Default::default() });
//! let q_fast = builder.register(compile(2));
//! let q_slow = builder.register(compile(8));
//! let tenant2 = builder.register(compile(2)); // identical to q_fast: kernel deduped
//! let runtime = builder.start().unwrap();
//! runtime.ingest((1..=100).map(|t| {
//!     KeyedEvent::new(t % 5, 0, Event::point(Time::new(t as i64), Value::Float(1.0)))
//! }));
//! let out = runtime.finish_at(Time::new(108));
//! // One ingestion pass served all three queries...
//! assert_eq!(out.stats.reorder_buffered, 100);
//! // ...and the duplicated kernel ran once per advance, not twice.
//! assert!(out.stats.kernels_saved > 0);
//! assert_eq!(out.per_query[q_fast.index()].len(), 5);
//! assert_eq!(out.per_query[q_slow.index()].len(), 5);
//! assert_eq!(out.per_query[q_fast.index()], out.per_query[tenant2.index()]);
//! ```

#![warn(missing_docs)]

mod engine;
mod shard;
mod stats;

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;

use tilt_core::sharing::QueryGroup;
use tilt_core::CompiledQuery;
use tilt_data::{Event, Time, Value};

use engine::Engine;
use shard::{Shard, ShardMsg, ShardOutput};
pub use stats::RuntimeStats;
use stats::SharedStats;

/// One event addressed to one key's stream.
///
/// `source` selects which input stream the event feeds (0 for single-input
/// queries). In a [`MultiRuntime`], source `i` feeds input `i` of every
/// registered query that declares at least `i + 1` inputs.
#[derive(Clone, Debug)]
pub struct KeyedEvent {
    /// The stream key (user id, campaign id, device id, …).
    pub key: u64,
    /// Index into the runtime's input sources.
    pub source: usize,
    /// The event itself.
    pub event: Event<Value>,
}

impl KeyedEvent {
    /// Convenience constructor.
    pub fn new(key: u64, source: usize, event: Event<Value>) -> Self {
        KeyedEvent { key, source, event }
    }
}

/// Streaming output consumer: called by shard threads with each key's
/// newly finalized events, in per-key time order.
pub type OutputSink = Arc<dyn Fn(u64, &[Event<Value>]) + Send + Sync>;

/// Identifies one registered query of a [`MultiRuntime`]; indexes
/// [`MultiRuntimeOutput::per_query`] and
/// [`RuntimeStats::events_out_per_query`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QueryId(usize);

impl QueryId {
    /// The query's position in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a shard does when a reorder-buffer cap
/// ([`RuntimeConfig::max_pending_per_key`] /
/// [`RuntimeConfig::max_pending_per_shard`]) is hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackstopPolicy {
    /// Drop the incoming event and count it
    /// ([`RuntimeStats::backstop_dropped`]). Strictly bounds memory; the
    /// stream loses its newest out-of-order arrivals while the cap holds.
    #[default]
    DropNewest,
    /// Force-drain the oldest buffered events into their key's session
    /// ahead of the watermark, emitting what matures
    /// ([`RuntimeStats::backstop_forced`]). Nothing is lost at the moment
    /// the cap is hit, but the drained keys sacrifice lateness tolerance:
    /// stragglers older than the force-drained frontier are late-dropped.
    ForceDrain,
}

/// Configuration for [`Runtime::start`] / [`MultiRuntime::builder`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of shard worker threads (keys are hash-partitioned across
    /// them). Defaults to available parallelism.
    pub shards: usize,
    /// How many ticks late an event may arrive (its start relative to the
    /// newest event start seen on its source) before it is dropped.
    /// 0 = in-order input.
    pub allowed_lateness: i64,
    /// Target bound on each shard's ingest queue, in events; producers
    /// block when a queue is full (backpressure). Enforced in channel
    /// messages as `max(channel_capacity / ingest_batch, 1)`, so it is
    /// exact for full [`Runtime::ingest`] batches; producers sending
    /// single-event messages ([`Runtime::send`]) hit the message bound
    /// after `channel_capacity / ingest_batch` events instead.
    pub channel_capacity: usize,
    /// Events per channel message: [`Runtime::ingest`] groups routed
    /// events into batches of this size to amortize channel overhead.
    pub ingest_batch: usize,
    /// Minimum watermark advance (ticks) between kernel re-runs per key.
    /// Larger values batch more input into each kernel invocation.
    pub emit_interval: i64,
    /// Logical start of every key's timeline.
    pub start: Time,
    /// Idle-eviction TTL in ticks: a key whose reorder buffers are empty
    /// and whose newest event trails the shard's emission horizon by more
    /// than this is retired — its session (history, buffers) is torn down
    /// and transparently re-created if the key revives. `None` (default)
    /// keeps every session forever. The TTL is clamped up to the engine's
    /// *state horizon* (lookback + lookahead + 2 grid steps) so eviction
    /// never changes output; an evicted key's revival events must start at
    /// or after its eviction frontier (earlier stragglers are late-dropped,
    /// as they would be past any lateness horizon).
    pub key_ttl: Option<i64>,
    /// Cap on buffered out-of-order events per key and source (`None` =
    /// unbounded). On overflow, [`RuntimeConfig::backstop`] applies.
    pub max_pending_per_key: Option<usize>,
    /// Cap on buffered out-of-order events across a whole shard (`None` =
    /// unbounded) — the OOM backstop for a stalled source holding the
    /// watermark while other sources keep feeding. On overflow,
    /// [`RuntimeConfig::backstop`] applies to the fullest key.
    pub max_pending_per_shard: Option<usize>,
    /// What to do when a reorder-buffer cap is hit.
    pub backstop: BackstopPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: std::thread::available_parallelism().map_or(4, |n| n.get()),
            allowed_lateness: 0,
            channel_capacity: 65_536,
            ingest_batch: 256,
            emit_interval: 64,
            start: Time::ZERO,
            key_ttl: None,
            max_pending_per_key: None,
            max_pending_per_shard: None,
            backstop: BackstopPolicy::DropNewest,
        }
    }
}

/// Everything a single-query [`Runtime`] hands back when it drains and
/// shuts down.
#[derive(Debug)]
pub struct RuntimeOutput {
    /// Finalized output events per key. Keys whose queries emitted nothing
    /// map to empty vectors; when an [`OutputSink`] consumed events as
    /// they were finalized, the vectors are empty too.
    pub per_key: PerKeyOutput,
    /// Final counter snapshot.
    pub stats: RuntimeStats,
}

/// One query's finalized output events, per key.
pub type PerKeyOutput = HashMap<u64, Vec<Event<Value>>>;

/// Everything a [`MultiRuntime`] hands back when it drains and shuts down.
#[derive(Debug)]
pub struct MultiRuntimeOutput {
    /// Per registered query (in [`QueryId`] order): finalized output events
    /// per key. Queries with sinks have empty vectors here.
    pub per_query: Vec<PerKeyOutput>,
    /// Final counter snapshot.
    pub stats: RuntimeStats,
}

/// The engine-agnostic running service: shard threads, channels, counters.
/// [`Runtime`] and [`MultiRuntime`] are thin typed views over this.
#[derive(Debug)]
struct Core {
    senders: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardOutput>>,
    stats: Arc<SharedStats>,
    shards: usize,
    ingest_batch: usize,
    queries: usize,
}

impl Core {
    fn start<E: Engine>(engine: E, config: RuntimeConfig, sinks: Vec<Option<OutputSink>>) -> Core {
        let shards = config.shards.max(1);
        let ingest_batch = config.ingest_batch.max(1);
        let queries = engine.n_queries();
        debug_assert_eq!(sinks.len(), queries);
        let sinks: Arc<[Option<OutputSink>]> = sinks.into();
        let stats = Arc::new(SharedStats::new(shards, queries));
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let cap_msgs = (config.channel_capacity / ingest_batch).max(1);
        for id in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(cap_msgs);
            let shard =
                Shard::new(id, engine.clone(), config, Arc::clone(&sinks), Arc::clone(&stats));
            let handle = std::thread::Builder::new()
                .name(format!("tilt-shard-{id}"))
                .spawn(move || shard.run(rx))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Core { senders, handles, stats, shards, ingest_batch, queries }
    }

    fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        let mut routed: Vec<Vec<KeyedEvent>> = (0..self.shards).map(|_| Vec::new()).collect();
        let mut n: u64 = 0;
        for ev in events {
            n += 1;
            self.stats.note_event_end(ev.event.end);
            let s = shard_index(ev.key, self.shards);
            routed[s].push(ev);
            if routed[s].len() >= self.ingest_batch {
                self.send_batch(s, std::mem::take(&mut routed[s]));
            }
        }
        for (s, batch) in routed.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send_batch(s, batch);
            }
        }
        self.stats.events_in.fetch_add(n, Ordering::Relaxed);
    }

    fn send(&self, event: KeyedEvent) {
        self.stats.note_event_end(event.event.end);
        let s = shard_index(event.key, self.shards);
        self.send_batch(s, vec![event]);
        self.stats.events_in.fetch_add(1, Ordering::Relaxed);
    }

    fn watermark(&self, source: usize, time: Time) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Watermark { source, time });
        }
    }

    fn shutdown(&mut self, end: Option<Time>) -> (Vec<PerKeyOutput>, RuntimeStats) {
        if let Some(end) = end {
            for tx in &self.senders {
                let _ = tx.send(ShardMsg::FinishAt(end));
            }
        }
        self.senders.clear(); // close channels: workers drain and exit
        let mut per_query: Vec<PerKeyOutput> = (0..self.queries).map(|_| HashMap::new()).collect();
        for handle in self.handles.drain(..) {
            let out = match handle.join() {
                Ok(out) => out,
                Err(cause) => std::panic::resume_unwind(cause),
            };
            for (key, outs) in out.per_key {
                for (qi, events) in outs.into_iter().enumerate() {
                    per_query[qi].insert(key, events);
                }
            }
        }
        (per_query, self.stats.snapshot())
    }

    fn send_batch(&self, shard: usize, batch: Vec<KeyedEvent>) {
        self.stats.queue_depth[shard].fetch_add(batch.len() as i64, Ordering::Relaxed);
        // A send can only fail if the shard thread died; surface that on
        // join rather than panicking mid-ingest.
        let _ = self.senders[shard].send(ShardMsg::Batch(batch));
    }
}

impl Drop for Core {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            if let Err(cause) = handle.join() {
                // A dead shard means lost events; surface the worker's
                // panic instead of silently discarding it (unless this
                // drop is itself part of a panic unwind).
                if !std::thread::panicking() {
                    std::panic::resume_unwind(cause);
                }
            }
        }
    }
}

/// A running sharded streaming service over one compiled query.
///
/// Create with [`Runtime::start`], feed with [`Runtime::ingest`], observe
/// with [`Runtime::stats`], and shut down with [`Runtime::finish`] /
/// [`Runtime::finish_at`] (graceful drain: buffered events are flushed
/// through the final horizon before worker threads exit). Dropping a
/// `Runtime` without finishing also joins the workers, discarding their
/// output.
///
/// To serve several queries over one ingested stream, use
/// [`MultiRuntime`] instead.
#[derive(Debug)]
pub struct Runtime {
    core: Core,
}

impl Runtime {
    /// Spawns `config.shards` worker threads serving `cq` and returns the
    /// ingestion handle.
    pub fn start(cq: Arc<CompiledQuery>, config: RuntimeConfig) -> Runtime {
        Runtime { core: Core::start(cq, config, vec![None]) }
    }

    /// Like [`Runtime::start`], with a sink receiving each key's events as
    /// they are finalized instead of accumulating them for `finish`.
    pub fn start_with_sink(
        cq: Arc<CompiledQuery>,
        config: RuntimeConfig,
        sink: OutputSink,
    ) -> Runtime {
        Runtime { core: Core::start(cq, config, vec![Some(sink)]) }
    }

    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_index(key, self.core.shards)
    }

    /// Routes and enqueues events, blocking when a destination shard's
    /// queue is full (backpressure). Events for different keys may be
    /// interleaved arbitrarily; within a key and source, arrival order may
    /// deviate from time order by up to the configured allowed lateness.
    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.core.ingest(events);
    }

    /// Ingests a single event ([`Runtime::ingest`] amortizes better).
    pub fn send(&self, event: KeyedEvent) {
        self.core.send(event);
    }

    /// Broadcasts an explicit watermark: source `source` promises to
    /// deliver no further events starting at or before `time`. Drives
    /// emission forward on sources that have gone quiet. Floors, never
    /// regresses: a promise behind the observed event frontier is a no-op.
    pub fn watermark(&self, source: usize, time: Time) {
        self.core.watermark(source, time);
    }

    /// Snapshots runtime health counters.
    pub fn stats(&self) -> RuntimeStats {
        self.core.stats.snapshot()
    }

    /// Gracefully drains and shuts down: every buffered event is flushed,
    /// every session is run through the horizon of its shard's newest
    /// event, and per-key outputs are returned.
    pub fn finish(self) -> RuntimeOutput {
        self.shutdown(None)
    }

    /// Like [`Runtime::finish`], but flushes every key's session through
    /// the same explicit horizon `end`, making outputs independent of how
    /// events were interleaved across shards.
    pub fn finish_at(self, end: Time) -> RuntimeOutput {
        self.shutdown(Some(end))
    }

    fn shutdown(mut self, end: Option<Time>) -> RuntimeOutput {
        let (mut per_query, stats) = self.core.shutdown(end);
        RuntimeOutput { per_key: per_query.pop().expect("single query"), stats }
    }
}

/// Registers queries (and optional per-query sinks) for a
/// [`MultiRuntime`]; create with [`MultiRuntime::builder`].
pub struct MultiRuntimeBuilder {
    config: RuntimeConfig,
    queries: Vec<Arc<CompiledQuery>>,
    sinks: Vec<Option<OutputSink>>,
}

impl MultiRuntimeBuilder {
    /// Registers a query whose outputs accumulate until
    /// [`MultiRuntime::finish`].
    pub fn register(&mut self, cq: Arc<CompiledQuery>) -> QueryId {
        self.queries.push(cq);
        self.sinks.push(None);
        QueryId(self.queries.len() - 1)
    }

    /// Registers a query whose finalized events stream to `sink` as they
    /// mature.
    pub fn register_with_sink(&mut self, cq: Arc<CompiledQuery>, sink: OutputSink) -> QueryId {
        self.queries.push(cq);
        self.sinks.push(Some(sink));
        QueryId(self.queries.len() - 1)
    }

    /// Builds the shared [`QueryGroup`] (deduplicating structurally
    /// identical kernel prefixes) and spawns the shard workers.
    ///
    /// # Errors
    ///
    /// Fails when no query was registered or two queries declare different
    /// payload types for the same source position (see [`QueryGroup::new`]).
    pub fn start(self) -> tilt_core::Result<MultiRuntime> {
        let group = Arc::new(QueryGroup::new(self.queries)?);
        Ok(MultiRuntime { core: Core::start(Arc::clone(&group), self.config, self.sinks), group })
    }
}

/// A running sharded streaming service over **N registered queries**
/// sharing one ingested keyed stream.
///
/// Ingestion, hash-partitioning, reorder buffering, and watermark tracking
/// happen once per shard and fan out to every query; structurally
/// identical kernel prefixes across queries execute once per advance
/// ([`QueryGroup`]). Each query's output is observationally identical to
/// running it alone in a [`Runtime`] — the workspace's differential
/// property tests (`tests/multi_query_properties.rs`) pin this guarantee.
///
/// **Watermarks are group-wide.** Emission is driven by the minimum
/// watermark over *all* sources any member declares — the multi-query
/// extension of "a slow source holds results back". When queries of
/// different input arity are mixed, a source only the wider query reads
/// gates streaming emission for every member: if it stays silent, no
/// query streams until an explicit [`MultiRuntime::watermark`] promise
/// (or shutdown flush) advances it. Results are never wrong, only held;
/// per-query emission cadence is a ROADMAP follow-up.
///
/// See the [crate-level multi-query example](crate#multi-query-example).
#[derive(Debug)]
pub struct MultiRuntime {
    core: Core,
    group: Arc<QueryGroup>,
}

impl MultiRuntime {
    /// Starts registering queries for a shared runtime.
    pub fn builder(config: RuntimeConfig) -> MultiRuntimeBuilder {
        MultiRuntimeBuilder { config, queries: Vec::new(), sinks: Vec::new() }
    }

    /// The shared execution plan (kernel dedup structure) being served.
    pub fn group(&self) -> &QueryGroup {
        &self.group
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.core.queries
    }

    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_index(key, self.core.shards)
    }

    /// Routes and enqueues events once for all registered queries; see
    /// [`Runtime::ingest`].
    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.core.ingest(events);
    }

    /// Ingests a single event ([`MultiRuntime::ingest`] amortizes better).
    pub fn send(&self, event: KeyedEvent) {
        self.core.send(event);
    }

    /// Broadcasts an explicit watermark for one shared source; see
    /// [`Runtime::watermark`].
    pub fn watermark(&self, source: usize, time: Time) {
        self.core.watermark(source, time);
    }

    /// Snapshots runtime health counters (shared ingestion counters plus
    /// per-query output counts).
    pub fn stats(&self) -> RuntimeStats {
        self.core.stats.snapshot()
    }

    /// Gracefully drains and shuts down, returning every query's per-key
    /// outputs.
    pub fn finish(self) -> MultiRuntimeOutput {
        self.shutdown(None)
    }

    /// Like [`MultiRuntime::finish`], but flushes every key's session
    /// through the same explicit horizon `end`.
    pub fn finish_at(self, end: Time) -> MultiRuntimeOutput {
        self.shutdown(Some(end))
    }

    fn shutdown(mut self, end: Option<Time>) -> MultiRuntimeOutput {
        let (per_query, stats) = self.core.shutdown(end);
        MultiRuntimeOutput { per_query, stats }
    }
}

fn shard_index(key: u64, shards: usize) -> usize {
    // SplitMix64 finalizer: cheap, well-mixed, stable across runs.
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
    use tilt_core::Compiler;
    use tilt_data::{coalesce, streams_equivalent, TimeRange};

    fn sliding_sum_query(window: i64) -> Arc<CompiledQuery> {
        let mut b = Query::builder();
        let input = b.input("x", DataType::Float);
        let sum = b.temporal(
            "sum",
            TDom::every_tick(),
            Expr::reduce_window(ReduceOp::Sum, input, window),
        );
        let q = b.finish(sum).unwrap();
        Arc::new(Compiler::new().compile(&q).unwrap())
    }

    fn key_events(key: u64, n: i64) -> Vec<KeyedEvent> {
        (1..=n)
            .map(|t| {
                KeyedEvent::new(
                    key,
                    0,
                    Event::point(Time::new(t), Value::Float((key as f64) + t as f64)),
                )
            })
            .collect()
    }

    /// In-order replay of one key through a borrowed StreamSession — the
    /// ground truth the runtime must reproduce.
    fn replay(cq: &CompiledQuery, events: &[Event<Value>], end: Time) -> Vec<Event<Value>> {
        let mut session = cq.stream_session(Time::ZERO);
        session.push_events(0, events);
        session.flush_to(end).to_events()
    }

    #[test]
    fn in_order_multi_key_matches_replay() {
        let cq = sliding_sum_query(10);
        let n = 300i64;
        let keys: Vec<u64> = (0..7).collect();
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 3, ..RuntimeConfig::default() },
        );
        // Interleave keys round-robin, in time order within each key.
        for t in 1..=n {
            runtime.ingest(keys.iter().map(|&k| {
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64 + t as f64)))
            }));
        }
        let end = Time::new(n + 10);
        let out = runtime.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert_eq!(out.stats.events_in, (n as u64) * keys.len() as u64);
        assert_eq!(out.per_key.len(), keys.len());
        for &k in &keys {
            let expected = replay(
                &cq,
                &key_events(k, n).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
                end,
            );
            let got = &out.per_key[&k];
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(got)),
                "key {k}: {} vs {} events",
                expected.len(),
                got.len()
            );
        }
    }

    #[test]
    fn bounded_out_of_order_matches_replay() {
        let cq = sliding_sum_query(8);
        let n = 240i64;
        let key = 42u64;
        let mut events = key_events(key, n);
        // Deterministic bounded shuffle: swap within windows of 6.
        for w in events.chunks_mut(6) {
            w.reverse();
        }
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 2, allowed_lateness: 8, ..RuntimeConfig::default() },
        );
        runtime.ingest(events.clone());
        let end = Time::new(n + 8);
        let out = runtime.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0, "lateness bound must absorb the shuffle");
        let expected = replay(
            &cq,
            &key_events(key, n).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            end,
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&key])));
    }

    #[test]
    fn beyond_lateness_events_are_dropped_and_counted() {
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 2,
                emit_interval: 1,
                ..RuntimeConfig::default()
            },
        );
        let key = 5u64;
        // Advance far, then send a hopeless straggler.
        runtime.ingest(
            (1..=100)
                .map(|t| KeyedEvent::new(key, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        runtime.ingest([KeyedEvent::new(key, 0, Event::point(Time::new(3), Value::Float(9.0)))]);
        let out = runtime.finish_at(Time::new(104));
        assert_eq!(out.stats.late_dropped, 1);
        // Output equals a replay that never saw the straggler.
        let clean: Vec<Event<Value>> =
            (1..=100).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect();
        let expected = replay(&cq, &clean, Time::new(104));
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&key])));
    }

    // ── Hardening: eviction, backstop ──────────────────────────────────

    /// One shard, one hot key driving the watermark, one key that goes
    /// idle past the TTL and then revives. The evicting runtime's output
    /// must equal both a never-evicting runtime's and an in-order replay.
    #[test]
    fn idle_key_eviction_and_revival_are_transparent() {
        let cq = sliding_sum_query(4);
        let config = |ttl| RuntimeConfig {
            shards: 1,
            emit_interval: 8,
            key_ttl: ttl,
            ..RuntimeConfig::default()
        };
        let phase1: Vec<KeyedEvent> =
            key_events(7, 20).into_iter().chain(key_events(9, 500)).collect();
        let phase2: Vec<KeyedEvent> = (501..=520)
            .flat_map(|t| {
                [7u64, 9u64].map(|k| {
                    KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64)))
                })
            })
            .collect();
        let end = Time::new(530);

        let evicting = Runtime::start(Arc::clone(&cq), config(Some(32)));
        evicting.ingest(phase1.iter().cloned());
        // Key 7 idles while key 9 drives the watermark: wait for the sweep
        // to retire it before reviving it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while evicting.stats().evictions == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(evicting.stats().evictions >= 1, "idle key was never evicted");
        assert_eq!(evicting.stats().live_keys, 1, "only the hot key stays live");
        evicting.ingest(phase2.iter().cloned());
        let out = evicting.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert!(out.stats.revivals >= 1, "revival event must re-create the session");
        assert_eq!(out.stats.keys, 2, "keys counts distinct keys ever seen");

        let plain = Runtime::start(Arc::clone(&cq), config(None));
        plain.ingest(phase1.iter().cloned());
        plain.ingest(phase2.iter().cloned());
        let base = plain.finish_at(end);
        assert_eq!(base.stats.evictions, 0);
        for k in [7u64, 9u64] {
            assert!(
                streams_equivalent(&coalesce(&base.per_key[&k]), &coalesce(&out.per_key[&k])),
                "key {k}: evicting runtime diverged from never-evicting"
            );
            // And both equal the in-order replay of the key's own stream.
            let events: Vec<Event<Value>> = phase1
                .iter()
                .chain(phase2.iter())
                .filter(|ke| ke.key == k)
                .map(|ke| ke.event.clone())
                .collect();
            let expected = replay(&cq, &events, end);
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&k])),
                "key {k}: evicting runtime diverged from replay"
            );
        }
    }

    #[test]
    fn backstop_drop_newest_caps_buffered_events() {
        // A watermark pinned by huge allowed lateness: nothing matures, so
        // the reorder buffer is the only place events can live. The cap
        // holds and the overflow is counted.
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_key: Some(64),
                backstop: BackstopPolicy::DropNewest,
                ..RuntimeConfig::default()
            },
        );
        runtime.ingest(key_events(1, 500));
        let out = runtime.finish_at(Time::new(504));
        assert_eq!(out.stats.backstop_dropped, 500 - 64, "overflow is dropped and counted");
        assert_eq!(out.stats.backstop_forced, 0);
        // The survivors are the oldest 64 (the cap refuses newest), so the
        // output equals a replay of the in-order prefix.
        let prefix: Vec<Event<Value>> =
            key_events(1, 64).iter().map(|ke| ke.event.clone()).collect();
        let expected = replay(&cq, &prefix, Time::new(504));
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&1])));
        assert!(out.stats.reorder_pending.iter().all(|&p| p == 0), "drained at shutdown");
    }

    #[test]
    fn backstop_force_drain_is_lossless_for_in_order_input() {
        // Same pinned watermark, but the force-drain policy pushes the
        // oldest buffered events through the session instead of dropping
        // the newest: for in-order input nothing is lost at all.
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_key: Some(64),
                backstop: BackstopPolicy::ForceDrain,
                ..RuntimeConfig::default()
            },
        );
        runtime.ingest(key_events(1, 500));
        let out = runtime.finish_at(Time::new(504));
        assert_eq!(out.stats.backstop_dropped, 0);
        assert_eq!(out.stats.late_dropped, 0, "in-order input loses nothing to force-drain");
        assert!(out.stats.backstop_forced > 0, "the cap must have fired");
        let all: Vec<Event<Value>> = key_events(1, 500).iter().map(|ke| ke.event.clone()).collect();
        let expected = replay(&cq, &all, Time::new(504));
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&1])));
    }

    #[test]
    fn shard_level_backstop_bounds_total_pending() {
        // Many keys share one shard: no single key exceeds the per-key cap,
        // but the shard-wide cap still bounds the backlog.
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_shard: Some(100),
                backstop: BackstopPolicy::DropNewest,
                ..RuntimeConfig::default()
            },
        );
        for k in 0..20u64 {
            runtime.ingest(key_events(k, 10));
        }
        let out = runtime.finish_at(Time::new(20));
        assert_eq!(out.stats.backstop_dropped, 100, "200 sent, 100 buffered, 100 refused");
        assert_eq!(out.stats.reorder_buffered, 100);
    }

    #[test]
    fn explicit_watermarks_drive_emission_and_sink_streams() {
        let cq = sliding_sum_query(4);
        let emitted = Arc::new(std::sync::Mutex::new(Vec::<(u64, Event<Value>)>::new()));
        let sink_store = Arc::clone(&emitted);
        let runtime = Runtime::start_with_sink(
            Arc::clone(&cq),
            RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() },
            Arc::new(move |key, events| {
                sink_store.lock().unwrap().extend(events.iter().map(|e| (key, e.clone())));
            }),
        );
        runtime.ingest(key_events(1, 50));
        runtime.watermark(0, Time::new(50));
        // The sink sees finalized prefixes before shutdown.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while emitted.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(!emitted.lock().unwrap().is_empty(), "sink never saw streamed output");
        let out = runtime.finish_at(Time::new(54));
        assert!(out.per_key[&1].is_empty(), "sink consumed the events");
        assert_eq!(out.stats.events_out as usize, emitted.lock().unwrap().len());
        // Streamed output equals replay.
        let expected = replay(
            &cq,
            &key_events(1, 50).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(54),
        );
        let streamed: Vec<Event<Value>> =
            emitted.lock().unwrap().iter().map(|(_, e)| e.clone()).collect();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&streamed)));
    }

    #[test]
    fn quiet_key_tail_reaches_sink_without_finish() {
        // Key 1 stops at t=20; key 2 keeps driving the shard watermark
        // forward. The sink must receive key 1's closing windows (the last
        // non-φ output of a 4-tick sum ends at t=23) while the runtime is
        // still running — not only at shutdown flush.
        let cq = sliding_sum_query(4);
        let emitted = Arc::new(std::sync::Mutex::new(Vec::<(u64, Event<Value>)>::new()));
        let sink_store = Arc::clone(&emitted);
        let runtime = Runtime::start_with_sink(
            Arc::clone(&cq),
            RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() },
            Arc::new(move |key, events| {
                sink_store.lock().unwrap().extend(events.iter().map(|e| (key, e.clone())));
            }),
        );
        runtime.ingest(key_events(1, 20));
        let quiet_tail_seen = |emitted: &std::sync::Mutex<Vec<(u64, Event<Value>)>>| {
            emitted.lock().unwrap().iter().any(|(k, e)| *k == 1 && e.end >= Time::new(23))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut t = 21i64;
        while !quiet_tail_seen(&emitted) && std::time::Instant::now() < deadline {
            runtime.send(KeyedEvent::new(2, 0, Event::point(Time::new(t), Value::Float(1.0))));
            t += 1;
        }
        assert!(
            quiet_tail_seen(&emitted),
            "quiet key's finalized tail never reached the sink while running (watermark pushed to t={t})"
        );
        runtime.finish();
    }

    #[test]
    fn stats_track_queue_and_watermarks() {
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() },
        );
        runtime.ingest(key_events(3, 100));
        runtime.ingest(key_events(4, 100));
        let out = runtime.finish();
        assert_eq!(out.stats.events_in, 200);
        assert!(out.stats.events_out > 0);
        assert_eq!(out.stats.keys, 2);
        assert_eq!(out.stats.queue_depths.len(), 2);
        assert!(out.stats.queue_depths.iter().all(|&d| d == 0), "drained queues");
        assert!(out.stats.min_watermark >= Time::new(100), "flush horizon reached");
        // Single-query accounting: every event buffered once, nothing saved.
        assert_eq!(out.stats.reorder_buffered, 200);
        assert_eq!(out.stats.kernels_saved, 0);
        assert_eq!(out.stats.events_out_per_query, vec![out.stats.events_out]);
    }

    #[test]
    fn two_source_query_holds_back_for_slowest_source() {
        // join(a, b): per-key sum of two sources' running 4-windows.
        let mut b = Query::builder();
        let a_in = b.input("a", DataType::Float);
        let b_in = b.input("b", DataType::Float);
        let sum = b.temporal(
            "sum",
            TDom::every_tick(),
            Expr::reduce_window(ReduceOp::Sum, a_in, 4).add(Expr::reduce_window(
                ReduceOp::Sum,
                b_in,
                4,
            )),
        );
        let q = b.finish(sum).unwrap();
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());

        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() },
        );
        let key = 9u64;
        // Source 0 races ahead; source 1 lags at t=10.
        runtime.ingest(
            (1..=60)
                .map(|t| KeyedEvent::new(key, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        runtime.ingest(
            (1..=10)
                .map(|t| KeyedEvent::new(key, 1, Event::point(Time::new(t), Value::Float(10.0)))),
        );
        let stats = runtime.stats();
        // Min-watermark propagation: the shard watermark tracks the slow
        // source, not the fast one.
        assert!(
            stats.shard_watermarks.iter().all(|&w| w <= Time::new(10)),
            "watermarks {:?} ran ahead of the slow source",
            stats.shard_watermarks
        );
        let out = runtime.finish_at(Time::new(64));
        // Ground truth: replay both sources in order.
        let mut session = cq.stream_session(Time::ZERO);
        session.push_events(
            0,
            &(1..=60).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect::<Vec<_>>(),
        );
        session.push_events(
            1,
            &(1..=10).map(|t| Event::point(Time::new(t), Value::Float(10.0))).collect::<Vec<_>>(),
        );
        let expected = session.flush_to(Time::new(64)).to_events();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&key])));
    }

    #[test]
    fn keys_partition_stably_across_shards() {
        let shards = 8;
        for key in 0..1000u64 {
            let a = shard_index(key, shards);
            let b = shard_index(key, shards);
            assert_eq!(a, b);
            assert!(a < shards);
        }
        // Rough balance over sequential keys.
        let mut counts = vec![0usize; shards];
        for key in 0..8000u64 {
            counts[shard_index(key, shards)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(Arc::clone(&cq), RuntimeConfig::default());
        runtime.ingest(key_events(1, 10));
        drop(runtime); // must not hang or leak panics
    }

    #[test]
    fn one_shot_run_agrees_with_runtime_for_single_key() {
        // Closing the loop with the batch executor: runtime output ==
        // CompiledQuery::run over the same events.
        let cq = sliding_sum_query(6);
        let n = 120i64;
        let events: Vec<Event<Value>> =
            (1..=n).map(|t| Event::point(Time::new(t), Value::Float(t as f64 * 0.5))).collect();
        let range = TimeRange::new(Time::ZERO, Time::new(n + 6));
        let buf = tilt_data::SnapshotBuf::from_events(&events, range);
        let oneshot = cq.run(&[&buf], range).to_events();

        let runtime = Runtime::start(Arc::clone(&cq), RuntimeConfig::default());
        runtime.ingest(events.iter().map(|e| KeyedEvent::new(77, 0, e.clone())));
        let out = runtime.finish_at(Time::new(n + 6));
        assert!(streams_equivalent(&coalesce(&oneshot), &coalesce(&out.per_key[&77])));
    }

    // ── Watermark / lateness edge cases ────────────────────────────────

    #[test]
    fn explicit_watermark_floors_but_never_regresses() {
        // The event-driven watermark reached t=50; a stale explicit promise
        // at t=10 must not pull emission backwards, and a forward promise
        // must floor the watermark even with no further events.
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() },
        );
        runtime.ingest(key_events(1, 50));
        runtime.watermark(0, Time::new(10)); // stale: behind max_start
        let wait_for_wm = |runtime: &Runtime, at_least: Time| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                if runtime.stats().min_watermark >= at_least {
                    return true;
                }
                std::thread::yield_now();
            }
            false
        };
        // Point events at t=1..=50 span (t−1, t]: the start-based watermark
        // rests at 49, and the stale promise at 10 must not move it.
        assert!(wait_for_wm(&runtime, Time::new(49)), "event-driven watermark must hold at 49");
        // Forward promise: emission advances past the last event with no
        // new input at all.
        runtime.watermark(0, Time::new(90));
        assert!(wait_for_wm(&runtime, Time::new(90)), "explicit watermark must floor to 90");
        // A second stale promise after the forward one is also a no-op.
        runtime.watermark(0, Time::new(40));
        let out = runtime.finish_at(Time::new(94));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(
            &cq,
            &key_events(1, 50).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(94),
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&1])));
    }

    #[test]
    fn finish_at_drains_events_still_held_by_lateness() {
        // A huge allowed lateness keeps the watermark far behind the data:
        // nothing matures during the run. finish_at must still flush every
        // buffered event through the horizon — a drained shutdown loses
        // nothing.
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards: 2,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                ..RuntimeConfig::default()
            },
        );
        runtime.ingest(key_events(8, 60));
        let mid = runtime.stats();
        assert_eq!(mid.events_out, 0, "nothing may emit while the watermark holds everything");
        let out = runtime.finish_at(Time::new(64));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(
            &cq,
            &key_events(8, 60).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(64),
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&8])));
    }

    #[test]
    fn interval_event_straddling_emission_horizon_is_exact() {
        // Regression for the PR 1 boundary fix: a long interval event spans
        // several emission cycles (emit_interval 8 with points driving the
        // watermark across its extent). The straddled event's early ticks
        // are emitted before its interval closes; the result must still
        // equal an in-order replay.
        let mut b = Query::builder();
        let input = b.input("x", DataType::Float);
        let sum =
            b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 5));
        let q = b.finish(sum).unwrap();
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());

        // One long event (10, 40] then points 41..=80 pushing the watermark
        // over both of its edges.
        let mut events: Vec<Event<Value>> =
            vec![Event::new(Time::new(10), Time::new(40), Value::Float(2.5))];
        events.extend((41..=80).map(|t| Event::point(Time::new(t), Value::Float(1.0))));
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 1, emit_interval: 8, ..RuntimeConfig::default() },
        );
        runtime.ingest(events.iter().map(|e| KeyedEvent::new(3, 0, e.clone())));
        let out = runtime.finish_at(Time::new(85));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(&cq, &events, Time::new(85));
        assert!(
            streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&3])),
            "straddling interval event corrupted emission: {:?} vs {:?}",
            expected,
            out.per_key[&3]
        );
    }

    // ── Multi-query runtime ────────────────────────────────────────────

    #[test]
    fn multi_runtime_outputs_match_standalone_runtimes() {
        let fast = sliding_sum_query(3);
        let slow = sliding_sum_query(9);
        let mut builder = MultiRuntime::builder(RuntimeConfig {
            shards: 2,
            allowed_lateness: 8,
            ..RuntimeConfig::default()
        });
        let q_fast = builder.register(Arc::clone(&fast));
        let q_slow = builder.register(Arc::clone(&slow));
        let multi = builder.start().unwrap();

        // Interleave keys by time, then scramble arrival order within
        // bounded blocks (shared by the multi and standalone runs).
        let mut events: Vec<KeyedEvent> = Vec::new();
        for t in 1..=120i64 {
            for k in 0..4u64 {
                events.push(KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float(k as f64 + t as f64)),
                ));
            }
        }
        for w in events.chunks_mut(5) {
            w.reverse();
        }
        multi.ingest(events.iter().cloned());
        let end = Time::new(140);
        let out = multi.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert_eq!(out.stats.reorder_buffered, events.len() as u64, "buffered once, not per query");

        for (qid, cq) in [(q_fast, &fast), (q_slow, &slow)] {
            let standalone = Runtime::start(
                Arc::clone(cq),
                RuntimeConfig { shards: 2, allowed_lateness: 8, ..RuntimeConfig::default() },
            );
            standalone.ingest(events.iter().cloned());
            let solo = standalone.finish_at(end);
            for k in 0..4u64 {
                assert!(
                    streams_equivalent(
                        &coalesce(&solo.per_key[&k]),
                        &coalesce(&out.per_query[qid.index()][&k])
                    ),
                    "query {} key {k} diverged from standalone runtime",
                    qid.index()
                );
            }
        }
    }

    #[test]
    fn multi_runtime_per_query_sinks_and_stats() {
        let cq = sliding_sum_query(4);
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        let mut builder = MultiRuntime::builder(RuntimeConfig {
            shards: 1,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let sunk = builder.register_with_sink(
            Arc::clone(&cq),
            Arc::new(move |_key, events| {
                sink_store.lock().unwrap().extend(events.iter().cloned());
            }),
        );
        let kept = builder.register(Arc::clone(&cq));
        let multi = builder.start().unwrap();
        assert_eq!(multi.num_queries(), 2);
        assert_eq!(multi.group().shared_kernels(), 1, "identical queries share their kernel");

        multi.ingest(key_events(1, 50));
        let out = multi.finish_at(Time::new(54));
        // The sink consumed query 0; query 1 accumulated.
        assert!(out.per_query[sunk.index()][&1].is_empty());
        assert!(!out.per_query[kept.index()][&1].is_empty());
        // Both queries emitted the same number of events, counted per query.
        assert_eq!(
            out.stats.events_out_per_query[sunk.index()],
            out.stats.events_out_per_query[kept.index()]
        );
        assert_eq!(out.stats.events_out_per_query.iter().sum::<u64>(), out.stats.events_out);
        assert!(out.stats.kernels_saved > 0, "dedup must fire for identical queries");
        // Streamed == kept.
        assert!(streams_equivalent(
            &coalesce(&streamed.lock().unwrap()),
            &coalesce(&out.per_query[kept.index()][&1])
        ));
    }

    #[test]
    fn multi_runtime_drops_late_events_once() {
        // A beyond-lateness straggler is one lost *ingest* event, however
        // many queries are registered.
        let cq = sliding_sum_query(4);
        let mut builder = MultiRuntime::builder(RuntimeConfig {
            shards: 1,
            allowed_lateness: 2,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let a = builder.register(Arc::clone(&cq));
        let b = builder.register(Arc::clone(&cq));
        let multi = builder.start().unwrap();
        multi.ingest(
            (1..=100).map(|t| KeyedEvent::new(5, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        multi.ingest([KeyedEvent::new(5, 0, Event::point(Time::new(3), Value::Float(9.0)))]);
        let out = multi.finish_at(Time::new(104));
        assert_eq!(out.stats.late_dropped, 1, "dropped once, not once per query");
        let clean: Vec<Event<Value>> =
            (1..=100).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect();
        let expected = replay(&cq, &clean, Time::new(104));
        for qid in [a, b] {
            assert!(streams_equivalent(
                &coalesce(&expected),
                &coalesce(&out.per_query[qid.index()][&5])
            ));
        }
    }

    #[test]
    fn mixed_arity_group_waits_for_quiet_source_until_promised() {
        // Group-wide watermark semantics (documented on MultiRuntime): a
        // 1-input query co-registered with a 2-input query is gated by the
        // 2-input query's second source. With source 1 silent nothing
        // streams; an explicit watermark promise on source 1 releases
        // emission for everyone; the flush output still matches replay.
        let single = sliding_sum_query(4);
        let dual = {
            let mut b = Query::builder();
            let a_in = b.input("a", DataType::Float);
            let b_in = b.input("b", DataType::Float);
            let sum = b.temporal(
                "sum",
                TDom::every_tick(),
                Expr::reduce_window(ReduceOp::Sum, a_in, 4).add(Expr::reduce_window(
                    ReduceOp::Sum,
                    b_in,
                    4,
                )),
            );
            Arc::new(Compiler::new().compile(&b.finish(sum).unwrap()).unwrap())
        };
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        let mut builder = MultiRuntime::builder(RuntimeConfig {
            shards: 1,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let single_id = builder.register_with_sink(
            Arc::clone(&single),
            Arc::new(move |_key, events| {
                sink_store.lock().unwrap().extend(events.iter().cloned());
            }),
        );
        builder.register(dual);
        let multi = builder.start().unwrap();

        multi.ingest(key_events(1, 40)); // source 0 only; source 1 silent
                                         // The quiet source holds the group watermark at -inf: nothing may
                                         // stream yet (bounded wait to let the shard process the batch).
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            assert!(
                streamed.lock().unwrap().is_empty(),
                "1-input query streamed while the group watermark was held"
            );
            std::thread::yield_now();
        }
        // An explicit promise on the silent source releases emission.
        multi.watermark(1, Time::new(40));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while streamed.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            !streamed.lock().unwrap().is_empty(),
            "explicit watermark on the quiet source must unstick streaming"
        );
        let out = multi.finish_at(Time::new(44));
        assert!(out.per_query[single_id.index()][&1].is_empty(), "sink consumed the events");
        let expected = replay(
            &single,
            &key_events(1, 40).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(44),
        );
        let streamed: Vec<Event<Value>> = streamed.lock().unwrap().clone();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&streamed)));
    }

    #[test]
    fn multi_runtime_rejects_conflicting_source_types() {
        let float_q = sliding_sum_query(4);
        let int_q = {
            let mut b = Query::builder();
            let input = b.input("x", DataType::Int);
            let s =
                b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Count, input, 4));
            Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
        };
        let mut builder = MultiRuntime::builder(RuntimeConfig::default());
        builder.register(float_q);
        builder.register(int_q);
        assert!(builder.start().is_err());
        let empty = MultiRuntime::builder(RuntimeConfig::default());
        assert!(empty.start().is_err());
    }
}
