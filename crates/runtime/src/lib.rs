//! `tilt-runtime` — a sharded, keyed, out-of-order-tolerant streaming
//! service that serves a **dynamic set** of compiled TiLT queries over
//! many independent key streams.
//!
//! The TiLT compiler (paper §6) produces a [`CompiledQuery`] for a single
//! logical stream. Long-running services need the layer above: millions of
//! per-key streams (one per user, campaign, device, …) multiplexed over a
//! fixed worker pool, events arriving out of order, many queries watching
//! the same streams — and tenants coming and going *while the service
//! runs*. This crate provides that layer behind one handle-based control
//! plane, [`StreamService`]:
//!
//! * **Build → run** — [`StreamService::builder`] registers queries (each
//!   returning a typed [`QueryHandle`]) and [`StreamServiceBuilder::start`]
//!   spawns the shard workers;
//! * **Live attach/detach** — [`StreamService::attach`] admits a query to
//!   the *running* service: it joins at a negotiated frontier at or above
//!   the current watermark, and from that frontier onward its output is
//!   identical to a standalone service fed only the post-frontier suffix
//!   (cf. *Shared Arrangements*). [`StreamService::detach`] removes a
//!   query, reclaiming its per-key sessions and tombstone output
//!   ([`RuntimeStats::sessions_reclaimed`]);
//! * **Per-query settings** — [`QuerySettings`] gives each registration its
//!   own allowed lateness, emission cadence, and sink instead of one
//!   group-wide conservative setting; queries with identical settings share
//!   an execution cell and its kernel-prefix dedup
//!   ([`tilt_core::sharing::QueryGroup`]);
//! * **Output subscription** — [`StreamService::subscribe`] installs a sink
//!   on a live query so finalized events stream out without waiting for
//!   [`StreamService::finish`];
//! * **Keyed ingestion** — [`StreamService::ingest`] hash-partitions
//!   [`KeyedEvent`]s across `N` shard threads over bounded channels
//!   (backpressure: producers block when a shard falls behind);
//! * **Out-of-order tolerance** — each shard holds a per-key, per-source
//!   reorder buffer shared by every query; events mature once a query's
//!   cell watermark passes them. Watermarks advance as `max event start
//!   seen − allowed_lateness` per source (floored by explicit
//!   [`StreamService::watermark`] promises) and their minimum over a
//!   cell's sources drives emission, so a slow source holds results back
//!   rather than corrupting them;
//! * **Hardening** — idle sessions are evicted by event-time TTL
//!   ([`RuntimeConfig::key_ttl`]) *and*, new in this revision, wall-clock
//!   TTL ([`RuntimeConfig::wall_clock_ttl`]) so a shard with no traffic
//!   still frees memory; reorder buffers are capped
//!   ([`RuntimeConfig::max_pending_per_key`] /
//!   [`RuntimeConfig::max_pending_per_shard`] with a [`BackstopPolicy`]);
//!   kernel execution runs under `catch_unwind` so a poisoned key is
//!   quarantined instead of killing its shard;
//! * **Observability** — [`StreamService::stats`] snapshots throughput,
//!   watermark lag, late drops, per-query output counts and join
//!   frontiers, attach/detach/reclamation counters, eviction and
//!   quarantine gauges, queue depths, and kernel executions saved by
//!   dedup. Underneath, every counter lives in a `tilt_obs` metrics
//!   registry: [`StreamService::metrics`] exposes the full structured
//!   snapshot (including ingest-lag / watermark-lag / advance-time
//!   histograms and per-query attribution when
//!   [`RuntimeConfig::metrics`] is on), [`StreamService::metrics_text`]
//!   renders Prometheus text exposition, and [`StreamService::journal`]
//!   replays recent control-plane transitions
//!   (attach/detach/evict/revive/quarantine/backstop) from a bounded
//!   ring journal.
//!
//! Events later than every interested query's allowed lateness are
//! *dropped and counted* ([`RuntimeStats::late_dropped`]), the classic
//! watermark trade-off.
//!
//! The pre-control-plane entry points ([`Runtime`], [`MultiRuntime`])
//! remain as thin deprecated shims over [`StreamService`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
//! use tilt_core::Compiler;
//! use tilt_data::{Event, Time, Value};
//! use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};
//!
//! // Per-key 4-tick sliding sum.
//! let mut b = Query::builder();
//! let input = b.input("x", DataType::Float);
//! let sum = b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 4));
//! let query = b.finish(sum).unwrap();
//! let cq = Arc::new(Compiler::new().compile(&query).unwrap());
//!
//! let mut builder = StreamService::builder(RuntimeConfig {
//!     shards: 2,
//!     allowed_lateness: 8,
//!     ..RuntimeConfig::default()
//! });
//! let sum_q = builder.register(Arc::clone(&cq));
//! let service = builder.start().unwrap();
//! // Two keys, events interleaved and out of order within each key.
//! service.ingest([
//!     KeyedEvent::new(7, 0, Event::point(Time::new(2), Value::Float(1.0))),
//!     KeyedEvent::new(9, 0, Event::point(Time::new(1), Value::Float(5.0))),
//!     KeyedEvent::new(7, 0, Event::point(Time::new(1), Value::Float(2.0))), // late, in bound
//!     KeyedEvent::new(9, 0, Event::point(Time::new(2), Value::Float(6.0))),
//! ]);
//! let output = service.finish_at(Time::new(4));
//! assert_eq!(output.stats.late_dropped, 0);
//! // Key 7 saw 1.0@2 and 2.0@1: the 4-tick sum at t=2 is 3.0.
//! let key7 = &output.per_query[sum_q.index()][&7];
//! assert!(key7.iter().any(|e| e.payload == Value::Float(3.0)));
//! ```
//!
//! # Live attach/detach example
//!
//! ```
//! use std::sync::Arc;
//! use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
//! use tilt_core::Compiler;
//! use tilt_data::{Event, Time, Value};
//! use tilt_runtime::{KeyedEvent, QuerySettings, RuntimeConfig, StreamService};
//!
//! let compile = |window: i64| {
//!     let mut b = Query::builder();
//!     let input = b.input("x", DataType::Float);
//!     let s = b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
//!     Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
//! };
//! let mut builder = StreamService::builder(RuntimeConfig { shards: 2, ..Default::default() });
//! let q_fast = builder.register(compile(2));
//! let service = builder.start().unwrap();
//! let event = |t: i64| KeyedEvent::new(t as u64 % 5, 0, Event::point(Time::new(t), Value::Float(1.0)));
//! service.ingest((1..=50).map(event));
//!
//! // A tenant joins the *running* service: its handle records the
//! // negotiated frontier, and it sees exactly the post-frontier suffix.
//! let tenant = service.attach(compile(2), QuerySettings::default()).unwrap();
//! assert!(tenant.frontier() >= Time::new(50));
//! service.ingest((51..=100).map(event));
//!
//! let out = service.finish_at(Time::new(108));
//! assert_eq!(out.stats.attached, 1);
//! // Both queries are live through the shutdown flush; the tenant's
//! // output covers only ticks at or after its join frontier.
//! assert!(!out.per_query[q_fast.index()].is_empty());
//! assert!(out.per_query[tenant.index()]
//!     .values()
//!     .flatten()
//!     .all(|e| e.start >= tenant.frontier()));
//! ```

#![warn(missing_docs)]

mod durability;
mod shard;
mod stats;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use tilt_core::ir::DataType;
use tilt_core::sharing::QueryGroup;
use tilt_core::CompiledQuery;
use tilt_data::{Event, Time, Value};
use tilt_state::{SnapshotFile, SnapshotWriter, StateError};

pub use tilt_state::Lineage;

use durability::{CellRecord, ServiceRecord, SpillStore, KIND_SERVICE, KIND_SHARD};
use shard::{CellSpec, Shard, ShardMsg, ShardOutput};
pub use stats::{ControlEvent, RuntimeStats};
use stats::{SharedStats, SinkTable};

/// One event addressed to one key's stream.
///
/// `source` selects which input stream the event feeds (0 for single-input
/// queries). Source `i` feeds input `i` of every registered query that
/// declares at least `i + 1` inputs.
#[derive(Clone, Debug)]
pub struct KeyedEvent {
    /// The stream key (user id, campaign id, device id, …).
    pub key: u64,
    /// Index into the service's input sources.
    pub source: usize,
    /// The event itself.
    pub event: Event<Value>,
}

impl KeyedEvent {
    /// Convenience constructor.
    pub fn new(key: u64, source: usize, event: Event<Value>) -> Self {
        KeyedEvent { key, source, event }
    }
}

/// Streaming output consumer: called by shard threads with each key's
/// newly finalized events, in per-key time order.
pub type OutputSink = Arc<dyn Fn(u64, &[Event<Value>]) + Send + Sync>;

/// What a shard does when a reorder-buffer cap
/// ([`RuntimeConfig::max_pending_per_key`] /
/// [`RuntimeConfig::max_pending_per_shard`]) is hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackstopPolicy {
    /// Drop the incoming event and count it
    /// ([`RuntimeStats::backstop_dropped`]). Strictly bounds memory; the
    /// stream loses its newest out-of-order arrivals while the cap holds.
    #[default]
    DropNewest,
    /// Force-drain the oldest buffered events into their key's sessions
    /// ahead of the watermark, emitting what matures
    /// ([`RuntimeStats::backstop_forced`]). Nothing is lost at the moment
    /// the cap is hit, but the drained keys sacrifice lateness tolerance:
    /// stragglers older than the force-drained frontier are late-dropped.
    ForceDrain,
}

/// Configuration for [`StreamService::builder`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of shard worker threads (keys are hash-partitioned across
    /// them). Defaults to available parallelism.
    pub shards: usize,
    /// Default allowed lateness (ticks): how late an event may arrive (its
    /// start relative to the newest event start seen on its source) before
    /// it is dropped. 0 = in-order input. Overridable per query via
    /// [`QuerySettings::allowed_lateness`].
    pub allowed_lateness: i64,
    /// Target bound on each shard's ingest queue, in events; producers
    /// block when a queue is full (backpressure). Enforced in channel
    /// messages as `max(channel_capacity / ingest_batch, 1)`, so it is
    /// exact for full [`StreamService::ingest`] batches; producers sending
    /// single-event messages ([`StreamService::send`]) hit the message
    /// bound after `channel_capacity / ingest_batch` events instead.
    pub channel_capacity: usize,
    /// Events per channel message: [`StreamService::ingest`] groups routed
    /// events into batches of this size to amortize channel overhead.
    pub ingest_batch: usize,
    /// Default minimum watermark advance (ticks) between kernel re-runs per
    /// key. Larger values batch more input into each kernel invocation.
    /// Overridable per query via [`QuerySettings::emit_interval`].
    pub emit_interval: i64,
    /// Logical start of every key's timeline.
    pub start: Time,
    /// Event-time idle-eviction TTL in ticks: a key whose reorder buffers
    /// are empty and whose newest event trails the shard's emission horizon
    /// by more than this is retired — its sessions (history, buffers) are
    /// torn down and transparently re-created if the key revives. `None`
    /// (default) keeps every session forever. The TTL is clamped up to the
    /// widest live query's *state horizon* (lookback + lookahead + 2 grid
    /// steps) so eviction never changes output; an evicted key's revival
    /// events must start at or after its eviction frontier (earlier
    /// stragglers are late-dropped, as they would be past any lateness
    /// horizon).
    pub key_ttl: Option<i64>,
    /// Wall-clock idle-eviction TTL: a key that has received no events for
    /// this long is retired even if the event-time watermark never moved —
    /// the escape hatch for shards whose sources went silent entirely,
    /// where the purely event-time `key_ttl` can never fire. Anything the
    /// key still has buffered is force-flushed through its sessions first
    /// (the wall clock, not the watermark, declares the stream over) and
    /// the key is tombstoned past its full output tail, so for traffic
    /// that simply stopped the output is unchanged; in-bound stragglers
    /// arriving *after* the eviction land behind that frontier and are
    /// late-dropped — the trade wall-clock reclamation makes that
    /// event-time eviction never has to. `None` (default) disables
    /// wall-clock eviction.
    pub wall_clock_ttl: Option<Duration>,
    /// Cap on buffered out-of-order events per key and source (`None` =
    /// unbounded). On overflow, [`RuntimeConfig::backstop`] applies.
    pub max_pending_per_key: Option<usize>,
    /// Cap on buffered out-of-order events across a whole shard (`None` =
    /// unbounded) — the OOM backstop for a stalled source holding the
    /// watermark while other sources keep feeding. On overflow,
    /// [`RuntimeConfig::backstop`] applies to the fullest key.
    pub max_pending_per_shard: Option<usize>,
    /// What to do when a reorder-buffer cap is hit.
    pub backstop: BackstopPolicy,
    /// Enables detailed metrics: latency/lag histograms, per-query late
    /// and shared-kernel attribution, and the control-plane event journal.
    /// The base counters behind [`StreamService::stats`] are always
    /// maintained; disabling this only turns off the parts that cost extra
    /// work on the hot path (clock reads, histogram records, journal
    /// pushes). Output events are byte-identical either way.
    pub metrics: bool,
    /// Capacity (events) of the bounded control-plane journal ring; when
    /// full, the oldest entries are overwritten and counted
    /// ([`tilt_obs::JournalSnapshot::dropped`]). Ignored when
    /// [`RuntimeConfig::metrics`] is off.
    pub journal_capacity: usize,
    /// Cap on the sink-less output events a *retired* key's tombstone may
    /// hold per query (`None` = unbounded, the default). Without a cap, a
    /// churning key population under eviction accumulates output in
    /// tombstones forever when nobody installed a sink; with one, each
    /// retiring key keeps only its newest `cap` events per query and the
    /// trimmed events are counted ([`RuntimeStats::tombstone_dropped`]).
    /// Live keys are never capped — [`StreamService::finish`] returns
    /// their output in full. Spilling
    /// ([`StreamServiceBuilder::spill_to`]) supersedes this: spilled keys
    /// hold no in-memory tombstone at all.
    pub tombstone_output_cap: Option<usize>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: std::thread::available_parallelism().map_or(4, |n| n.get()),
            allowed_lateness: 0,
            channel_capacity: 65_536,
            ingest_batch: 256,
            emit_interval: 64,
            start: Time::ZERO,
            key_ttl: None,
            wall_clock_ttl: None,
            max_pending_per_key: None,
            max_pending_per_shard: None,
            backstop: BackstopPolicy::DropNewest,
            metrics: true,
            journal_capacity: 1024,
            tombstone_output_cap: None,
        }
    }
}

/// Per-query settings, resolved against the service-wide
/// [`RuntimeConfig`] defaults at registration.
#[derive(Clone, Default)]
pub struct QuerySettings {
    /// Allowed lateness for this query, in ticks (`None` inherits
    /// [`RuntimeConfig::allowed_lateness`]). Queries with a larger bound
    /// hold shared reorder-buffer entries longer; each query drops exactly
    /// the stragglers *its* bound refuses.
    pub allowed_lateness: Option<i64>,
    /// Emission cadence for this query (`None` inherits
    /// [`RuntimeConfig::emit_interval`]).
    pub emit_interval: Option<i64>,
    /// Where this query's finalized events stream, if anywhere (also
    /// installable later via [`StreamService::subscribe`]).
    pub sink: Option<OutputSink>,
}

impl QuerySettings {
    /// Settings that inherit every service default and stream to `sink`.
    pub fn with_sink(sink: OutputSink) -> QuerySettings {
        QuerySettings { sink: Some(sink), ..QuerySettings::default() }
    }
}

impl std::fmt::Debug for QuerySettings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySettings")
            .field("allowed_lateness", &self.allowed_lateness)
            .field("emit_interval", &self.emit_interval)
            .field("sink", &self.sink.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Identifies one registered query of a [`StreamService`] and records the
/// frontier it joined at.
///
/// Handles index [`ServiceOutput::per_query`],
/// [`RuntimeStats::events_out_per_query`], and
/// [`RuntimeStats::query_frontiers`]; they stay valid (for indexing) after
/// detach — slots are never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QueryHandle {
    id: usize,
    frontier: Time,
}

impl QueryHandle {
    /// The query's slot in registration order.
    pub fn index(self) -> usize {
        self.id
    }

    /// The join frontier this query was admitted at: `config.start` for
    /// queries registered before the service started, the negotiated
    /// frontier (≥ every watermark at attach time) for live attaches. The
    /// query's output covers only ticks at or after it.
    pub fn frontier(self) -> Time {
        self.frontier
    }
}

/// Control-plane errors from [`StreamService::attach`] /
/// [`StreamService::detach`] / [`StreamService::subscribe`].
#[derive(Debug)]
pub enum ServiceError {
    /// The query could not be admitted (source-type conflict with a live
    /// query, or query-group construction failed).
    Compile(tilt_core::CompileError),
    /// The handle does not name a query of this service.
    UnknownQuery(usize),
    /// The query was already detached.
    Detached(usize),
    /// A durable-state operation failed (spill-store creation, checkpoint
    /// I/O, or a rejected snapshot).
    Durability(StateError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "cannot admit query: {e}"),
            ServiceError::UnknownQuery(id) => write!(f, "unknown query handle {id}"),
            ServiceError::Detached(id) => write!(f, "query {id} was already detached"),
            ServiceError::Durability(e) => write!(f, "durable state error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<tilt_core::CompileError> for ServiceError {
    fn from(e: tilt_core::CompileError) -> Self {
        ServiceError::Compile(e)
    }
}

impl From<StateError> for ServiceError {
    fn from(e: StateError) -> Self {
        ServiceError::Durability(e)
    }
}

/// One query's finalized output events, per key.
pub type PerKeyOutput = HashMap<u64, Vec<Event<Value>>>;

/// Everything a [`StreamService`] hands back when it drains and shuts
/// down.
#[derive(Debug)]
pub struct ServiceOutput {
    /// Per registered query (indexed by [`QueryHandle::index`]): finalized
    /// output events per key. Every map carries an entry for every key the
    /// service saw; the vectors are empty for queries whose sinks consumed
    /// their events and for detached queries (whose accumulated output was
    /// reclaimed).
    pub per_query: Vec<PerKeyOutput>,
    /// Final counter snapshot.
    pub stats: RuntimeStats,
    /// Final metrics-registry snapshot (counters, gauges, histograms),
    /// exportable via [`tilt_obs::MetricsSnapshot::to_prometheus`] /
    /// [`tilt_obs::MetricsSnapshot::to_json`].
    pub metrics: tilt_obs::MetricsSnapshot,
    /// Final control-plane journal snapshot (empty when
    /// [`RuntimeConfig::metrics`] is off).
    pub journal: tilt_obs::JournalSnapshot<ControlEvent>,
}

/// Service-side registry of query slots (shard-side state lives in the
/// cells; this is only what the control plane needs to validate calls and
/// assemble outputs).
#[derive(Debug, Default)]
struct Registry {
    /// Liveness per query slot.
    live: Vec<bool>,
    /// Source payload types any live-or-past query has declared, by source
    /// position (conservative: never shrinks on detach).
    source_types: Vec<Option<DataType>>,
    /// Service-side mirror of the shard cell roster (every shard applies
    /// the same attach/detach edits in the same order, so one mirror
    /// describes them all). This is what a checkpoint records so restore
    /// can rebuild the roster, dead cells included, with stable indices.
    cells: Vec<CellRecord>,
}

impl Registry {
    /// Checks `cq` against the declared source types and records its own.
    fn admit(&mut self, cq: &CompiledQuery) -> Result<(), ServiceError> {
        let q = cq.query();
        for (i, obj) in q.inputs().iter().enumerate() {
            let Some(ty) = q.input_type(*obj) else { continue };
            if self.source_types.len() <= i {
                self.source_types.resize(i + 1, None);
            }
            match &self.source_types[i] {
                None => self.source_types[i] = Some(ty.clone()),
                Some(prev) if prev == ty => {}
                Some(prev) => {
                    return Err(ServiceError::Compile(tilt_core::CompileError::Type(format!(
                        "query reads source {i} as {ty:?}, \
                         but a registered query reads it as {prev:?}"
                    ))));
                }
            }
        }
        Ok(())
    }
}

/// The running service: shard threads, channels, counters, registry.
#[derive(Debug)]
struct Core {
    config: RuntimeConfig,
    senders: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardOutput>>,
    stats: Arc<SharedStats>,
    sinks: Arc<SinkTable>,
    registry: Mutex<Registry>,
    shards: usize,
    ingest_batch: usize,
    /// Key-route overrides installed by migrations: keys not present here
    /// route by [`shard_index`] as always.
    routes: RwLock<HashMap<u64, usize>>,
    /// Fast-path flag: `false` until the first migration, so services that
    /// never rebalance pay one relaxed load (no lock) per routed event.
    routed: AtomicBool,
}

impl Core {
    fn start(
        cells: Vec<Arc<CellSpec>>,
        config: RuntimeConfig,
        sinks: Arc<SinkTable>,
        stats: Arc<SharedStats>,
        registry: Registry,
        spill: Option<Arc<SpillStore>>,
        routes: HashMap<u64, usize>,
    ) -> Core {
        let shards = config.shards.max(1);
        let ingest_batch = config.ingest_batch.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let cap_msgs = (config.channel_capacity / ingest_batch).max(1);
        for id in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(cap_msgs);
            let shard = Shard::new(
                id,
                &cells,
                config,
                Arc::clone(&sinks),
                Arc::clone(&stats),
                spill.clone(),
            );
            let handle = std::thread::Builder::new()
                .name(format!("tilt-shard-{id}"))
                .spawn(move || shard.run(rx))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        let routed = AtomicBool::new(!routes.is_empty());
        Core {
            config,
            senders,
            handles,
            stats,
            sinks,
            registry: Mutex::new(registry),
            shards,
            ingest_batch,
            routes: RwLock::new(routes),
            routed,
        }
    }

    /// The shard serving `key` right now: the migration route override if
    /// one exists, the stable hash partition otherwise.
    fn route_of(&self, key: u64) -> usize {
        if self.routed.load(Ordering::Relaxed) {
            if let Some(&s) = self.routes.read().expect("route lock").get(&key) {
                return s;
            }
        }
        shard_index(key, self.shards)
    }

    fn set_route(&self, key: u64, shard: usize) {
        self.routes.write().expect("route lock").insert(key, shard);
        self.routed.store(true, Ordering::Relaxed);
    }

    fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.ingest_with_pressure(events);
    }

    /// Like [`Core::ingest`], but reports whether any destination shard's
    /// queue was full at enqueue time (the events are still delivered —
    /// the full queue is waited out with a blocking send).
    fn ingest_with_pressure<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) -> bool {
        let mut routed: Vec<Vec<KeyedEvent>> = (0..self.shards).map(|_| Vec::new()).collect();
        let mut n: u64 = 0;
        let mut stalled = false;
        for ev in events {
            n += 1;
            self.stats.note_event_end(ev.event.end);
            let s = self.route_of(ev.key);
            routed[s].push(ev);
            if routed[s].len() >= self.ingest_batch {
                stalled |= self.send_batch(s, std::mem::take(&mut routed[s]));
            }
        }
        for (s, batch) in routed.into_iter().enumerate() {
            if !batch.is_empty() {
                stalled |= self.send_batch(s, batch);
            }
        }
        self.stats.events_in.add(n);
        stalled
    }

    fn send(&self, event: KeyedEvent) {
        self.stats.note_event_end(event.event.end);
        let s = self.route_of(event.key);
        self.send_batch(s, vec![event]);
        self.stats.events_in.inc();
    }

    fn watermark(&self, source: usize, time: Time) {
        self.stats.note_promise(time);
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Watermark { source, time });
        }
    }

    /// The frontier a query attaching right now joins at: past every event
    /// already ingested (event starts are strictly below their ends) and
    /// every explicit watermark promise, hence at or above every shard's
    /// current and future-given-no-new-input watermark. Monotone
    /// non-decreasing across attaches.
    fn negotiate_frontier(&self) -> Time {
        let seen = Time::new(self.stats.max_event_end.get());
        let promised = Time::new(self.stats.max_promise.get());
        self.config.start.max(seen).max(promised)
    }

    fn shutdown(&mut self, end: Option<Time>) -> (Vec<PerKeyOutput>, RuntimeStats) {
        if let Some(end) = end {
            for tx in &self.senders {
                let _ = tx.send(ShardMsg::FinishAt(end));
            }
        }
        self.senders.clear(); // close channels: workers drain and exit
        let n_queries = self.registry.lock().expect("registry lock").live.len();
        let mut per_query: Vec<PerKeyOutput> = (0..n_queries).map(|_| HashMap::new()).collect();
        for handle in self.handles.drain(..) {
            let out = match handle.join() {
                Ok(out) => out,
                Err(cause) => std::panic::resume_unwind(cause),
            };
            for (key, mut outs) in out.per_key {
                outs.resize_with(n_queries, Vec::new);
                for (qi, events) in outs.into_iter().enumerate() {
                    per_query[qi].insert(key, events);
                }
            }
        }
        (per_query, self.stats.snapshot())
    }

    /// Enqueues one routed batch, returning `true` if the shard's queue
    /// was full and the send had to block (the backpressure signal remote
    /// front ends surface to their producers as `Busy`).
    fn send_batch(&self, shard: usize, batch: Vec<KeyedEvent>) -> bool {
        self.stats.queue_depth[shard].add(batch.len() as i64);
        // A send can only fail if the shard thread died; surface that on
        // join rather than panicking mid-ingest.
        // Delay-only failpoint: a cross-thread send must never drop the
        // batch (that would lose events), so error policies are inert here
        // and Delay models a stalled shard queue instead.
        tilt_fault::fail_point!("runtime.shard.send");
        match self.senders[shard].try_send(ShardMsg::Batch(batch)) {
            Ok(()) => false,
            Err(std::sync::mpsc::TrySendError::Full(msg)) => {
                let _ = self.senders[shard].send(msg);
                true
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => false,
        }
    }
}

impl Drop for Core {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            if let Err(cause) = handle.join() {
                // A dead shard means lost events; surface the worker's
                // panic instead of silently discarding it (unless this
                // drop is itself part of a panic unwind).
                if !std::thread::panicking() {
                    std::panic::resume_unwind(cause);
                }
            }
        }
    }
}

/// Registers queries for a [`StreamService`] before it starts; create with
/// [`StreamService::builder`].
///
/// Queries registered with identical (resolved) lateness and emission
/// cadence share one execution cell, so structurally identical kernel
/// prefixes across them execute once per advance.
pub struct StreamServiceBuilder {
    config: RuntimeConfig,
    regs: Vec<(Arc<CompiledQuery>, QuerySettings)>,
    spill_dir: Option<PathBuf>,
}

impl StreamServiceBuilder {
    /// Enables cold spill: idle-evicted keys serialize their state
    /// verbatim into single-record bundle files under `dir` instead of
    /// being flushed and tombstoned, and revive transparently — byte-for-
    /// byte identically — when the key next receives an event (or at the
    /// final flush). Bounds resident memory by the *hot* key population
    /// under churn while keeping every key's output exact. The directory
    /// is created if needed.
    pub fn spill_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }
    /// Registers a query with default settings; its outputs accumulate
    /// until [`StreamService::finish`].
    pub fn register(&mut self, cq: Arc<CompiledQuery>) -> QueryHandle {
        self.register_with(cq, QuerySettings::default())
    }

    /// Registers a query with explicit per-query settings.
    pub fn register_with(
        &mut self,
        cq: Arc<CompiledQuery>,
        settings: QuerySettings,
    ) -> QueryHandle {
        self.regs.push((cq, settings));
        QueryHandle { id: self.regs.len() - 1, frontier: self.config.start }
    }

    /// Spawns the shard workers and returns the running service. A builder
    /// with no registrations starts an *empty* service — attach queries
    /// before ingesting events.
    ///
    /// # Errors
    ///
    /// Fails when two queries declare different payload types for the same
    /// source position, or a query group cannot be built.
    pub fn start(self) -> Result<StreamService, ServiceError> {
        let config = self.config;
        let stats = Arc::new(SharedStats::new(
            config.shards.max(1),
            config.metrics,
            config.journal_capacity,
        ));
        let sinks = Arc::new(SinkTable::new());
        let mut registry = Registry::default();
        // One cell per distinct (lateness, cadence) pair, preserving
        // registration order for handle indices.
        struct ProtoCell {
            lateness: i64,
            emit_interval: i64,
            qids: Vec<usize>,
            queries: Vec<Arc<CompiledQuery>>,
        }
        let mut protos: Vec<ProtoCell> = Vec::new();
        for (qid, (cq, settings)) in self.regs.into_iter().enumerate() {
            registry.admit(&cq)?;
            registry.live.push(true);
            let id = stats.register_query(config.start, false);
            debug_assert_eq!(id, qid);
            sinks.push(settings.sink);
            let lateness = settings.allowed_lateness.unwrap_or(config.allowed_lateness);
            let emit_interval = settings.emit_interval.unwrap_or(config.emit_interval);
            match protos
                .iter_mut()
                .find(|p| p.lateness == lateness && p.emit_interval == emit_interval)
            {
                Some(p) => {
                    p.qids.push(qid);
                    p.queries.push(cq);
                }
                None => protos.push(ProtoCell {
                    lateness,
                    emit_interval,
                    qids: vec![qid],
                    queries: vec![cq],
                }),
            }
        }
        let mut cells = Vec::with_capacity(protos.len());
        for p in protos {
            cells.push(Arc::new(CellSpec {
                group: Arc::new(QueryGroup::new(p.queries)?),
                qids: p.qids,
                root: config.start,
                lateness: p.lateness,
                emit_interval: p.emit_interval,
            }));
        }
        registry.cells = cells
            .iter()
            .map(|s| CellRecord {
                alive: true,
                qids: s.qids.clone(),
                root: s.root,
                lateness: s.lateness,
                emit_interval: s.emit_interval,
            })
            .collect();
        let spill = match &self.spill_dir {
            Some(dir) => Some(Arc::new(SpillStore::open(dir)?)),
            None => None,
        };
        Ok(StreamService {
            core: Core::start(cells, config, sinks, stats, registry, spill, HashMap::new()),
        })
    }
}

/// A running sharded streaming service over a **dynamic set of registered
/// queries** sharing one ingested keyed stream.
///
/// Build with [`StreamService::builder`], feed with
/// [`StreamService::ingest`], grow and shrink the query set with
/// [`StreamService::attach`] / [`StreamService::detach`], observe with
/// [`StreamService::stats`] and [`StreamService::subscribe`], and shut
/// down with [`StreamService::finish`] / [`StreamService::finish_at`]
/// (graceful drain: buffered events are flushed through the final horizon
/// before worker threads exit). Dropping a service without finishing also
/// joins the workers, discarding their output.
///
/// **Sharing.** Ingestion, hash-partitioning, reorder buffering, and
/// watermark tracking happen once per shard regardless of how many queries
/// are registered; queries with identical settings and join frontier
/// additionally share structurally identical kernel prefixes
/// ([`QueryGroup`]). Each query's output is observationally identical to
/// running it alone — the differential property suites pin this guarantee.
///
/// **Watermarks are per cell.** Emission for a query is driven by the
/// minimum watermark over the sources *its cell* reads, under *its*
/// allowed lateness. Queries of different input arity registered with the
/// same settings still gate each other (they share a cell); give the
/// narrow query its own [`QuerySettings`] to decouple it.
///
/// **Attach semantics.** A query attached mid-stream joins at a negotiated
/// frontier ≥ every current watermark ([`QueryHandle::frontier`]). Events
/// ingested after `attach` returns whose start is at or after the frontier
/// are guaranteed visible to it; its output is identical, per key, to a
/// standalone service (with `config.start` = the frontier) fed only those
/// suffix events. Events concurrently in flight during the call may or may
/// not be seen.
#[derive(Debug)]
pub struct StreamService {
    core: Core,
}

impl StreamService {
    /// Starts registering queries for a new service.
    pub fn builder(config: RuntimeConfig) -> StreamServiceBuilder {
        StreamServiceBuilder { config, regs: Vec::new(), spill_dir: None }
    }

    /// Starts an empty service (attach queries before ingesting events).
    pub fn start(config: RuntimeConfig) -> StreamService {
        StreamService::builder(config).start().expect("empty registration cannot conflict")
    }

    /// Attaches `cq` to the running service as a new query with its own
    /// settings. Returns a handle recording the negotiated join frontier;
    /// see the [type-level docs](StreamService) for the exact visibility
    /// guarantee.
    ///
    /// # Errors
    ///
    /// Fails when the query's source payload types conflict with a
    /// registered query's.
    pub fn attach(
        &self,
        cq: Arc<CompiledQuery>,
        settings: QuerySettings,
    ) -> Result<QueryHandle, ServiceError> {
        let mut registry = self.core.registry.lock().expect("registry lock");
        registry.admit(&cq)?;
        let group = Arc::new(QueryGroup::new(vec![cq])?);
        let frontier = self.core.negotiate_frontier();
        let qid = self.core.stats.register_query(frontier, true);
        debug_assert_eq!(qid, registry.live.len());
        registry.live.push(true);
        self.core.sinks.push(settings.sink);
        let spec = Arc::new(CellSpec {
            group,
            qids: vec![qid],
            root: frontier,
            lateness: settings.allowed_lateness.unwrap_or(self.core.config.allowed_lateness),
            emit_interval: settings.emit_interval.unwrap_or(self.core.config.emit_interval),
        });
        registry.cells.push(CellRecord {
            alive: true,
            qids: spec.qids.clone(),
            root: spec.root,
            lateness: spec.lateness,
            emit_interval: spec.emit_interval,
        });
        for tx in &self.core.senders {
            let _ = tx.send(ShardMsg::Attach(Arc::clone(&spec)));
        }
        Ok(QueryHandle { id: qid, frontier })
    }

    /// Detaches a query from the running service. Surviving queries are
    /// unaffected (their outputs stay byte-identical); the detached
    /// query's per-key sessions and tombstone output slots are reclaimed
    /// ([`RuntimeStats::sessions_reclaimed`]), and its slot in
    /// [`ServiceOutput::per_query`] comes back empty.
    ///
    /// # Errors
    ///
    /// Fails when the handle is unknown or already detached.
    pub fn detach(&self, handle: QueryHandle) -> Result<(), ServiceError> {
        let mut registry = self.core.registry.lock().expect("registry lock");
        match registry.live.get_mut(handle.id) {
            None => return Err(ServiceError::UnknownQuery(handle.id)),
            Some(live) if !*live => return Err(ServiceError::Detached(handle.id)),
            Some(live) => *live = false,
        }
        // Mirror the edit every shard will apply to its roster: a
        // single-member cell dies in place (its slot is never reused), a
        // multi-member cell sheds the leaving query.
        if let Some(ci) = registry.cells.iter().position(|c| c.alive && c.qids.contains(&handle.id))
        {
            if registry.cells[ci].qids.len() == 1 {
                registry.cells[ci].alive = false;
            } else {
                registry.cells[ci].qids.retain(|q| *q != handle.id);
            }
        }
        self.core.stats.note_detach(handle.id);
        self.core.sinks.set(handle.id, None);
        for tx in &self.core.senders {
            let _ = tx.send(ShardMsg::Detach { qid: handle.id });
        }
        Ok(())
    }

    /// Installs (or replaces) a live query's output sink: finalized events
    /// stream to it from now on, without waiting for
    /// [`StreamService::finish`]. Events finalized *before* the
    /// subscription keep accumulating for the shutdown output.
    ///
    /// # Errors
    ///
    /// Fails when the handle is unknown or detached.
    pub fn subscribe(&self, handle: QueryHandle, sink: OutputSink) -> Result<(), ServiceError> {
        let registry = self.core.registry.lock().expect("registry lock");
        match registry.live.get(handle.id) {
            None => return Err(ServiceError::UnknownQuery(handle.id)),
            Some(false) => return Err(ServiceError::Detached(handle.id)),
            Some(true) => {}
        }
        self.core.sinks.set(handle.id, Some(sink));
        Ok(())
    }

    /// Number of queries currently being served.
    pub fn num_queries(&self) -> usize {
        let registry = self.core.registry.lock().expect("registry lock");
        registry.live.iter().filter(|l| **l).count()
    }

    /// Which shard serves `key`: the stable hash partition, unless a
    /// migration ([`StreamService::migrate_key`] /
    /// [`StreamService::rebalance`]) installed a route override.
    pub fn shard_of(&self, key: u64) -> usize {
        self.core.route_of(key)
    }

    /// Routes and enqueues events once for all registered queries,
    /// blocking when a destination shard's queue is full (backpressure).
    /// Events for different keys may be interleaved arbitrarily; within a
    /// key and source, arrival order may deviate from time order by up to
    /// the configured allowed lateness.
    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.core.ingest(events);
    }

    /// Like [`StreamService::ingest`], but additionally reports whether
    /// backpressure engaged: `true` means at least one destination shard's
    /// queue was full when a batch arrived and the enqueue had to block
    /// until the shard caught up. The events are delivered either way.
    ///
    /// This is the entry point for network front ends (`tilt-server`) that
    /// surface backpressure to remote producers as explicit `Busy` replies
    /// instead of silently blocking their connection threads.
    pub fn ingest_with_pressure<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) -> bool {
        self.core.ingest_with_pressure(events)
    }

    /// Ingests a single event ([`StreamService::ingest`] amortizes
    /// better).
    pub fn send(&self, event: KeyedEvent) {
        self.core.send(event);
    }

    /// Broadcasts an explicit watermark: source `source` promises to
    /// deliver no further events starting at or before `time`. Drives
    /// emission forward on sources that have gone quiet. Floors, never
    /// regresses: a promise behind the observed event frontier is a no-op.
    pub fn watermark(&self, source: usize, time: Time) {
        self.core.watermark(source, time);
    }

    /// Snapshots service health counters.
    pub fn stats(&self) -> RuntimeStats {
        self.core.stats.snapshot()
    }

    /// Snapshots the full metrics registry: every counter, gauge, and
    /// histogram, with labels — the structured superset of
    /// [`StreamService::stats`]. Export with
    /// [`tilt_obs::MetricsSnapshot::to_prometheus`] or
    /// [`tilt_obs::MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> tilt_obs::MetricsSnapshot {
        self.core.stats.metrics()
    }

    /// The metrics registry in Prometheus text exposition format —
    /// shorthand for `self.metrics().to_prometheus()`.
    pub fn metrics_text(&self) -> String {
        self.core.stats.metrics().to_prometheus()
    }

    /// Snapshots the control-plane event journal: attach/detach,
    /// eviction, revival, quarantine, and backstop-drain transitions in
    /// sequence order. Empty when [`RuntimeConfig::metrics`] is off.
    pub fn journal(&self) -> tilt_obs::JournalSnapshot<ControlEvent> {
        self.core.stats.journal_snapshot()
    }

    /// The metrics registry every service instrument lives in. Front ends
    /// layered over the service (e.g. the `tilt-server` wire protocol)
    /// register their own instruments here so one
    /// [`StreamService::metrics_text`] scrape covers the whole process.
    pub fn registry(&self) -> Arc<tilt_obs::Registry> {
        Arc::clone(&self.core.stats.registry)
    }

    /// Appends a control-plane transition to the service journal on behalf
    /// of a front end layered over the service — the hook `tilt-server`
    /// uses to journal [`ControlEvent::Connect`] /
    /// [`ControlEvent::Disconnect`] / [`ControlEvent::Subscribe`]
    /// alongside the transitions the shards record themselves. A no-op
    /// when [`RuntimeConfig::metrics`] is off, like every other journal
    /// write.
    pub fn record_control(&self, event: ControlEvent) {
        self.core.stats.note_control(event);
    }

    /// Checkpoints the whole service into one snapshot file at `path`,
    /// returning the bytes written.
    ///
    /// Each shard is quiesced with an in-band message: the channel is
    /// FIFO, so the shard's reply reflects every batch enqueued before
    /// this call, and the snapshot is a consistent frontier for any
    /// driver that ingests and checkpoints from one thread. The file
    /// holds the service header (config, query and cell rosters, route
    /// overrides, counters) plus one record per shard (sessions, reorder
    /// buffers, tombstones, watermarks, emission progress), each
    /// CRC-guarded; a service rebuilt by [`StreamService::restore`]
    /// produces byte-identical subsequent output.
    ///
    /// Keys currently spilled to a cold store are *not* captured — their
    /// bundles live in the spill directory, not the snapshot. Checkpoint
    /// a spilling service only when spill and snapshot directories are
    /// preserved together (the property suites exercise them
    /// separately).
    pub fn checkpoint(&self, path: &Path) -> Result<u64, StateError> {
        let mut pending = Vec::with_capacity(self.core.senders.len());
        let mut resumes = Vec::with_capacity(self.core.senders.len());
        for tx in &self.core.senders {
            let (reply, rx) = std::sync::mpsc::sync_channel(1);
            let (resume_tx, resume) = std::sync::mpsc::sync_channel(1);
            if tx.send(ShardMsg::Checkpoint { reply, resume }).is_err() {
                return Err(StateError::Corrupt("shard exited before checkpoint"));
            }
            pending.push(rx);
            resumes.push(resume_tx);
        }
        let mut shard_payloads = Vec::with_capacity(pending.len());
        for rx in pending {
            match rx.recv() {
                Ok(p) => shard_payloads.push(p),
                Err(_) => return Err(StateError::Corrupt("shard exited during checkpoint")),
            }
        }
        // Every shard is now parked at the barrier: the counters read
        // below describe exactly the state the payloads carry. Counted
        // before the record is built so the snapshot itself remembers
        // this checkpoint: a restored service reports the checkpoint
        // lineage it came from.
        self.core.stats.checkpoints.inc();
        let record = self.service_record();
        drop(resumes);
        let mut w = SnapshotWriter::create(path)?;
        w.record(KIND_SERVICE, &record.encode())?;
        for p in &shard_payloads {
            w.record(KIND_SHARD, p)?;
        }
        let bytes = w.finish()?;
        self.core.stats.state_bytes_written.add(bytes);
        self.core
            .stats
            .note_control(ControlEvent::Checkpoint { shards: shard_payloads.len(), bytes });
        Ok(bytes)
    }

    /// Checkpoints into the next numbered member of a snapshot
    /// [`Lineage`] and prunes old generations, returning the published
    /// path and the bytes written. Combined with
    /// [`StreamService::restore_latest`] this is the crash-safe
    /// checkpoint loop: every write stages to `*.part` and renames over
    /// a *new* index, so no failure mode — torn write, failed fsync,
    /// failed rename, power loss — can damage an already-published
    /// snapshot.
    pub fn checkpoint_to(&self, lineage: &Lineage) -> Result<(PathBuf, u64), StateError> {
        let path = lineage.next_path();
        let bytes = self.checkpoint(&path)?;
        lineage.prune();
        Ok((path, bytes))
    }

    /// Rebuilds a service from the newest member of `lineage` that both
    /// validates *and* restores, walking backwards over retained
    /// generations. A torn or corrupt newer snapshot (a crash
    /// mid-checkpoint that somehow published, or bit rot since) falls
    /// back to the previous one instead of failing the recovery.
    /// Returns the service and the path it was restored from; errors
    /// only when no retained member restores.
    pub fn restore_latest(
        lineage: &Lineage,
        queries: &[Arc<CompiledQuery>],
    ) -> Result<(StreamService, PathBuf), StateError> {
        let mut last_err = StateError::Corrupt("snapshot lineage is empty");
        for path in lineage.paths().into_iter().rev() {
            match Self::restore(&path, queries) {
                Ok(service) => return Ok((service, path)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Assembles the service-wide checkpoint header from the registry
    /// mirror, route table, and counter registry.
    fn service_record(&self) -> ServiceRecord {
        let registry = self.core.registry.lock().expect("registry lock");
        let mut routes: Vec<(u64, u32)> = self
            .core
            .routes
            .read()
            .expect("route lock")
            .iter()
            .map(|(k, s)| (*k, *s as u32))
            .collect();
        routes.sort_unstable();
        ServiceRecord {
            config: self.core.config,
            live: registry.live.clone(),
            frontiers: self
                .core
                .stats
                .query_frontier
                .read()
                .expect("stats lock")
                .iter()
                .map(|t| Time::new(*t))
                .collect(),
            cells: registry.cells.clone(),
            routes,
            counters: self.core.stats.durable_counters(),
            max_event_end: self.core.stats.max_event_end.get(),
            max_promise: self.core.stats.max_promise.get(),
        }
    }

    /// Rebuilds a service from a [`StreamService::checkpoint`] snapshot.
    ///
    /// `queries` must provide the compiled query for every recorded slot,
    /// in registration order — queries are code, not data, so the
    /// snapshot records only their roster and the caller re-supplies the
    /// compiled artifacts (detached slots still need theirs; their cells
    /// are rebuilt dead to keep roster indices stable). The restored
    /// service's subsequent output is byte-identical to one that never
    /// stopped: sessions, reorder buffers (with per-cell consumption
    /// flags), tombstones, watermarks, emission progress, route
    /// overrides, and counters all resume exactly.
    ///
    /// Sinks are *not* restored (closures don't serialize) — re-install
    /// them with [`StreamService::subscribe`]. A torn, truncated, or
    /// bit-flipped snapshot is rejected with a typed [`StateError`]; it
    /// never panics and never half-starts a service.
    pub fn restore(
        path: &Path,
        queries: &[Arc<CompiledQuery>],
    ) -> Result<StreamService, StateError> {
        let file = SnapshotFile::read(path)?;
        let bytes = file.bytes();
        let records = file.records();
        let Some((kind, service_payload)) = records.first() else {
            return Err(StateError::Corrupt("snapshot holds no records"));
        };
        if *kind != KIND_SERVICE {
            return Err(StateError::Corrupt("snapshot does not start with a service record"));
        }
        let record = ServiceRecord::decode(service_payload)?;
        let shards = record.config.shards.max(1);
        let shard_records = &records[1..];
        if shard_records.len() != shards {
            return Err(StateError::Corrupt("shard record count does not match the config"));
        }
        if shard_records.iter().any(|(k, _)| *k != KIND_SHARD) {
            return Err(StateError::Corrupt("unexpected record kind after the service record"));
        }
        if queries.len() != record.live.len() {
            return Err(StateError::Corrupt("restore needs one compiled query per recorded slot"));
        }
        let stats = Arc::new(SharedStats::new(
            shards,
            record.config.metrics,
            record.config.journal_capacity,
        ));
        let sinks = Arc::new(SinkTable::new());
        let mut registry = Registry::default();
        for (qid, cq) in queries.iter().enumerate() {
            registry
                .admit(cq)
                .map_err(|_| StateError::Corrupt("query conflicts with recorded source types"))?;
            registry.live.push(record.live[qid]);
            let id = stats.register_query(record.frontiers[qid], false);
            debug_assert_eq!(id, qid);
            sinks.push(None);
            if !record.live[qid] {
                stats.queries_live.sub(1);
            }
        }
        registry.cells = record.cells.clone();
        let mut cells = Vec::with_capacity(record.cells.len());
        for c in &record.cells {
            let members: Vec<Arc<CompiledQuery>> = c
                .qids
                .iter()
                .map(|&q| {
                    queries
                        .get(q)
                        .cloned()
                        .ok_or(StateError::Corrupt("cell names an unknown query slot"))
                })
                .collect::<Result<_, _>>()?;
            let group = Arc::new(
                QueryGroup::new(members)
                    .map_err(|_| StateError::Corrupt("recorded cell failed to recompile"))?,
            );
            cells.push(Arc::new(CellSpec {
                group,
                qids: c.qids.clone(),
                root: c.root,
                lateness: c.lateness,
                emit_interval: c.emit_interval,
            }));
        }
        stats.restore_counters(&record.counters);
        stats.max_event_end.set_max(record.max_event_end);
        stats.max_promise.set_max(record.max_promise);
        let routes: HashMap<u64, usize> =
            record.routes.iter().map(|&(k, s)| (k, s as usize)).collect();
        let core =
            Core::start(cells, record.config, sinks, Arc::clone(&stats), registry, None, routes);
        // Install each shard's recorded state as that shard's first
        // message; a rejected record aborts the whole restore (dropping
        // the half-built core joins its workers).
        for ((_, payload), tx) in shard_records.iter().zip(&core.senders) {
            let (reply, rx) = std::sync::mpsc::sync_channel(1);
            if tx.send(ShardMsg::Restore { payload: payload.clone(), reply }).is_err() {
                return Err(StateError::Corrupt("shard exited before restore"));
            }
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(StateError::Corrupt("shard exited during restore")),
            }
        }
        stats.state_bytes_read.add(bytes);
        stats.note_control(ControlEvent::Restored { shards, bytes });
        Ok(StreamService { core })
    }

    /// Handles for every *live* query slot, with their current
    /// frontiers. [`StreamService::restore`] does not return handles
    /// (the roster is data, not a return value), so this is how a
    /// restore consumer re-installs sinks: enumerate the live slots and
    /// [`StreamService::subscribe`] each. Detached slots are omitted —
    /// their indices stay reserved but accept no sinks.
    pub fn query_handles(&self) -> Vec<QueryHandle> {
        let live = self.core.registry.lock().expect("registry lock").live.clone();
        let frontiers = self.core.stats.query_frontier.read().expect("stats lock");
        live.iter()
            .enumerate()
            .filter(|&(_, alive)| *alive)
            .map(|(id, _)| QueryHandle { id, frontier: Time::new(frontiers[id]) })
            .collect()
    }

    /// Migrates one key's complete state (sessions, reorder buffers,
    /// accumulated output) from its current shard to shard `to`, and
    /// installs a route override so subsequent arrivals follow it. The
    /// serialized hop uses the same encoding as checkpoints and spills,
    /// so the key's subsequent output is byte-identical to never moving.
    /// Returns `false` (and changes nothing) when `to` is out of range,
    /// already serves the key, or the key holds no live state on its
    /// shard. Like checkpointing, the consistency story assumes a
    /// single-threaded driver: don't ingest the key concurrently with
    /// migrating it.
    pub fn migrate_key(&self, key: u64, to: usize) -> bool {
        if to >= self.core.shards {
            return false;
        }
        let from = self.core.route_of(key);
        if from == to {
            return false;
        }
        let (reply, rx) = std::sync::mpsc::sync_channel(1);
        if self.core.senders[from].send(ShardMsg::MigrateOut { key, reply }).is_err() {
            return false;
        }
        let Ok(Some(bundle)) = rx.recv() else { return false };
        self.core.set_route(key, to);
        self.core.stats.state_bytes_written.add(bundle.len() as u64);
        self.core.stats.state_bytes_read.add(bundle.len() as u64);
        let _ = self.core.senders[to].send(ShardMsg::MigrateIn { key, bundle });
        self.core.stats.migrations.inc();
        self.core.stats.note_control(ControlEvent::Migrate { key, from, to });
        true
    }

    /// Rebalances load by migrating the heaviest keys off the most loaded
    /// shard onto the least loaded one, driven by a per-shard census of
    /// per-key load scores (sessions + buffered events). Moves at most 16
    /// keys per call and never more than half the load gap (so repeated
    /// calls converge instead of oscillating); returns how many keys
    /// moved. No-op on single-shard services or when the population is
    /// already balanced.
    pub fn rebalance(&self) -> usize {
        if self.core.shards < 2 {
            return 0;
        }
        let mut pending = Vec::with_capacity(self.core.senders.len());
        for tx in &self.core.senders {
            let (reply, rx) = std::sync::mpsc::sync_channel(1);
            if tx.send(ShardMsg::Census { reply }).is_err() {
                return 0;
            }
            pending.push(rx);
        }
        let mut per_shard: Vec<Vec<(u64, u64)>> = Vec::with_capacity(pending.len());
        for rx in pending {
            match rx.recv() {
                Ok(c) => per_shard.push(c),
                Err(_) => return 0,
            }
        }
        let loads: Vec<u64> = per_shard.iter().map(|c| c.iter().map(|(_, s)| *s).sum()).collect();
        let busiest = (0..loads.len()).max_by_key(|&i| loads[i]).expect("shards >= 2");
        let idlest = (0..loads.len()).min_by_key(|&i| loads[i]).expect("shards >= 2");
        let gap = loads[busiest] - loads[idlest];
        if busiest == idlest || gap < 2 {
            return 0;
        }
        let mut candidates = per_shard[busiest].clone();
        candidates.sort_unstable_by_key(|&(key, score)| (std::cmp::Reverse(score), key));
        let mut moved = 0usize;
        let mut moved_score = 0u64;
        for (key, score) in candidates {
            if moved >= 16 {
                break;
            }
            // Never move more than half the gap: overshooting would just
            // invert the imbalance and make the next call undo this one.
            if (moved_score + score) * 2 > gap {
                continue;
            }
            if self.migrate_key(key, idlest) {
                moved += 1;
                moved_score += score;
            }
        }
        moved
    }

    /// Gracefully drains and shuts down: every buffered event is flushed,
    /// every session is run through the horizon of its shard's newest
    /// event, and per-query, per-key outputs are returned.
    pub fn finish(self) -> ServiceOutput {
        self.shutdown(None)
    }

    /// Like [`StreamService::finish`], but flushes every key's sessions
    /// through the same explicit horizon `end`, making outputs independent
    /// of how events were interleaved across shards.
    pub fn finish_at(self, end: Time) -> ServiceOutput {
        self.shutdown(Some(end))
    }

    fn shutdown(mut self, end: Option<Time>) -> ServiceOutput {
        let (per_query, stats) = self.core.shutdown(end);
        let metrics = self.core.stats.metrics();
        let journal = self.core.stats.journal_snapshot();
        ServiceOutput { per_query, stats, metrics, journal }
    }
}

fn shard_index(key: u64, shards: usize) -> usize {
    // SplitMix64 finalizer: cheap, well-mixed, stable across runs.
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[allow(deprecated)]
mod compat {
    //! Deprecated pre-control-plane entry points, kept as thin shims over
    //! [`StreamService`]. Migration:
    //!
    //! * `Runtime::start(cq, config)` → `StreamService::builder(config)` +
    //!   `register(cq)` + `start()`;
    //! * `MultiRuntime::builder(config)` + `register`/`register_with_sink`
    //!   → `StreamServiceBuilder::register` / `register_with`;
    //! * `QueryId` → [`QueryHandle`] (same `index()` contract);
    //! * `finish().per_key` → `finish().per_query[handle.index()]`.

    use super::*;

    /// Identifies one registered query of a [`MultiRuntime`].
    #[deprecated(since = "0.2.0", note = "use `QueryHandle` returned by `StreamService`")]
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct QueryId(pub(crate) usize);

    impl QueryId {
        /// The query's position in registration order.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Everything a single-query [`Runtime`] hands back when it drains and
    /// shuts down.
    #[deprecated(since = "0.2.0", note = "use `ServiceOutput` from `StreamService::finish`")]
    #[derive(Debug)]
    pub struct RuntimeOutput {
        /// Finalized output events per key.
        pub per_key: PerKeyOutput,
        /// Final counter snapshot.
        pub stats: RuntimeStats,
    }

    /// Everything a [`MultiRuntime`] hands back when it drains and shuts
    /// down.
    #[deprecated(since = "0.2.0", note = "use `ServiceOutput` from `StreamService::finish`")]
    #[derive(Debug)]
    pub struct MultiRuntimeOutput {
        /// Per registered query (in [`QueryId`] order): finalized output
        /// events per key.
        pub per_query: Vec<PerKeyOutput>,
        /// Final counter snapshot.
        pub stats: RuntimeStats,
    }

    /// A running sharded streaming service over one compiled query.
    #[deprecated(since = "0.2.0", note = "use `StreamService` (handle-based control plane)")]
    #[derive(Debug)]
    pub struct Runtime {
        svc: StreamService,
        q: QueryHandle,
    }

    impl Runtime {
        /// Spawns `config.shards` worker threads serving `cq` and returns
        /// the ingestion handle.
        pub fn start(cq: Arc<CompiledQuery>, config: RuntimeConfig) -> Runtime {
            let mut builder = StreamService::builder(config);
            let q = builder.register(cq);
            Runtime { svc: builder.start().expect("single registration cannot conflict"), q }
        }

        /// Like [`Runtime::start`], with a sink receiving each key's events
        /// as they are finalized.
        pub fn start_with_sink(
            cq: Arc<CompiledQuery>,
            config: RuntimeConfig,
            sink: OutputSink,
        ) -> Runtime {
            let mut builder = StreamService::builder(config);
            let q = builder.register_with(cq, QuerySettings::with_sink(sink));
            Runtime { svc: builder.start().expect("single registration cannot conflict"), q }
        }

        /// Which shard serves `key`.
        pub fn shard_of(&self, key: u64) -> usize {
            self.svc.shard_of(key)
        }

        /// Routes and enqueues events; see [`StreamService::ingest`].
        pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
            self.svc.ingest(events);
        }

        /// Ingests a single event.
        pub fn send(&self, event: KeyedEvent) {
            self.svc.send(event);
        }

        /// Broadcasts an explicit watermark; see
        /// [`StreamService::watermark`].
        pub fn watermark(&self, source: usize, time: Time) {
            self.svc.watermark(source, time);
        }

        /// Snapshots runtime health counters.
        pub fn stats(&self) -> RuntimeStats {
            self.svc.stats()
        }

        /// Gracefully drains and shuts down.
        pub fn finish(self) -> RuntimeOutput {
            let mut out = self.svc.finish();
            RuntimeOutput { per_key: out.per_query.swap_remove(self.q.index()), stats: out.stats }
        }

        /// Like [`Runtime::finish`], flushing through the explicit horizon
        /// `end`.
        pub fn finish_at(self, end: Time) -> RuntimeOutput {
            let mut out = self.svc.finish_at(end);
            RuntimeOutput { per_key: out.per_query.swap_remove(self.q.index()), stats: out.stats }
        }
    }

    /// Registers queries for a [`MultiRuntime`].
    #[deprecated(since = "0.2.0", note = "use `StreamServiceBuilder`")]
    pub struct MultiRuntimeBuilder {
        inner: StreamServiceBuilder,
    }

    impl MultiRuntimeBuilder {
        /// Registers a query whose outputs accumulate until
        /// [`MultiRuntime::finish`].
        pub fn register(&mut self, cq: Arc<CompiledQuery>) -> QueryId {
            QueryId(self.inner.register(cq).index())
        }

        /// Registers a query whose finalized events stream to `sink`.
        pub fn register_with_sink(&mut self, cq: Arc<CompiledQuery>, sink: OutputSink) -> QueryId {
            QueryId(self.inner.register_with(cq, QuerySettings::with_sink(sink)).index())
        }

        /// Spawns the shard workers.
        ///
        /// # Errors
        ///
        /// Fails when no query was registered or two queries declare
        /// different payload types for the same source position.
        pub fn start(self) -> tilt_core::Result<MultiRuntime> {
            if self.inner.regs.is_empty() {
                return Err(tilt_core::CompileError::Invalid(
                    "a query group needs at least one query".into(),
                ));
            }
            let n = self.inner.regs.len();
            match self.inner.start() {
                Ok(svc) => Ok(MultiRuntime { svc, n }),
                Err(ServiceError::Compile(e)) => Err(e),
                Err(other) => Err(tilt_core::CompileError::Invalid(other.to_string())),
            }
        }
    }

    /// A running sharded streaming service over N registered queries.
    #[deprecated(since = "0.2.0", note = "use `StreamService` (handle-based control plane)")]
    #[derive(Debug)]
    pub struct MultiRuntime {
        svc: StreamService,
        n: usize,
    }

    impl MultiRuntime {
        /// Starts registering queries for a shared runtime.
        pub fn builder(config: RuntimeConfig) -> MultiRuntimeBuilder {
            MultiRuntimeBuilder { inner: StreamService::builder(config) }
        }

        /// Number of registered queries.
        pub fn num_queries(&self) -> usize {
            self.n
        }

        /// Which shard serves `key`.
        pub fn shard_of(&self, key: u64) -> usize {
            self.svc.shard_of(key)
        }

        /// Routes and enqueues events once for all registered queries.
        pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
            self.svc.ingest(events);
        }

        /// Ingests a single event.
        pub fn send(&self, event: KeyedEvent) {
            self.svc.send(event);
        }

        /// Broadcasts an explicit watermark for one shared source.
        pub fn watermark(&self, source: usize, time: Time) {
            self.svc.watermark(source, time);
        }

        /// Snapshots runtime health counters.
        pub fn stats(&self) -> RuntimeStats {
            self.svc.stats()
        }

        /// Gracefully drains and shuts down, returning every query's
        /// per-key outputs.
        pub fn finish(self) -> MultiRuntimeOutput {
            let out = self.svc.finish();
            MultiRuntimeOutput { per_query: out.per_query, stats: out.stats }
        }

        /// Like [`MultiRuntime::finish`], flushing through `end`.
        pub fn finish_at(self, end: Time) -> MultiRuntimeOutput {
            let out = self.svc.finish_at(end);
            MultiRuntimeOutput { per_query: out.per_query, stats: out.stats }
        }
    }
}

#[allow(deprecated)]
pub use compat::{
    MultiRuntime, MultiRuntimeBuilder, MultiRuntimeOutput, QueryId, Runtime, RuntimeOutput,
};

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
    use tilt_core::Compiler;
    use tilt_data::{coalesce, streams_equivalent, TimeRange};

    fn sliding_sum_query(window: i64) -> Arc<CompiledQuery> {
        let mut b = Query::builder();
        let input = b.input("x", DataType::Float);
        let sum = b.temporal(
            "sum",
            TDom::every_tick(),
            Expr::reduce_window(ReduceOp::Sum, input, window),
        );
        let q = b.finish(sum).unwrap();
        Arc::new(Compiler::new().compile(&q).unwrap())
    }

    /// A single-query service: the migration shape for the old `Runtime`.
    fn single(cq: &Arc<CompiledQuery>, config: RuntimeConfig) -> (StreamService, QueryHandle) {
        let mut builder = StreamService::builder(config);
        let q = builder.register(Arc::clone(cq));
        (builder.start().unwrap(), q)
    }

    fn single_with_sink(
        cq: &Arc<CompiledQuery>,
        config: RuntimeConfig,
        sink: OutputSink,
    ) -> (StreamService, QueryHandle) {
        let mut builder = StreamService::builder(config);
        let q = builder.register_with(Arc::clone(cq), QuerySettings::with_sink(sink));
        (builder.start().unwrap(), q)
    }

    fn key_events(key: u64, n: i64) -> Vec<KeyedEvent> {
        (1..=n)
            .map(|t| {
                KeyedEvent::new(
                    key,
                    0,
                    Event::point(Time::new(t), Value::Float((key as f64) + t as f64)),
                )
            })
            .collect()
    }

    /// In-order replay of one key through a borrowed StreamSession — the
    /// ground truth the service must reproduce.
    fn replay(cq: &CompiledQuery, events: &[Event<Value>], end: Time) -> Vec<Event<Value>> {
        let mut session = cq.stream_session(Time::ZERO);
        session.push_events(0, events);
        session.flush_to(end).to_events()
    }

    #[test]
    fn in_order_multi_key_matches_replay() {
        let cq = sliding_sum_query(10);
        let n = 300i64;
        let keys: Vec<u64> = (0..7).collect();
        let (service, q) = single(&cq, RuntimeConfig { shards: 3, ..RuntimeConfig::default() });
        // Interleave keys round-robin, in time order within each key.
        for t in 1..=n {
            service.ingest(keys.iter().map(|&k| {
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64 + t as f64)))
            }));
        }
        let end = Time::new(n + 10);
        let out = service.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert_eq!(out.stats.events_in, (n as u64) * keys.len() as u64);
        assert_eq!(out.per_query[q.index()].len(), keys.len());
        for &k in &keys {
            let expected = replay(
                &cq,
                &key_events(k, n).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
                end,
            );
            let got = &out.per_query[q.index()][&k];
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(got)),
                "key {k}: {} vs {} events",
                expected.len(),
                got.len()
            );
        }
    }

    #[test]
    fn bounded_out_of_order_matches_replay() {
        let cq = sliding_sum_query(8);
        let n = 240i64;
        let key = 42u64;
        let mut events = key_events(key, n);
        // Deterministic bounded shuffle: swap within windows of 6.
        for w in events.chunks_mut(6) {
            w.reverse();
        }
        let (service, q) = single(
            &cq,
            RuntimeConfig { shards: 2, allowed_lateness: 8, ..RuntimeConfig::default() },
        );
        service.ingest(events.clone());
        let end = Time::new(n + 8);
        let out = service.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0, "lateness bound must absorb the shuffle");
        let expected = replay(
            &cq,
            &key_events(key, n).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            end,
        );
        assert!(streams_equivalent(
            &coalesce(&expected),
            &coalesce(&out.per_query[q.index()][&key])
        ));
    }

    #[test]
    fn beyond_lateness_events_are_dropped_and_counted() {
        let cq = sliding_sum_query(4);
        let (service, q) = single(
            &cq,
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 2,
                emit_interval: 1,
                ..RuntimeConfig::default()
            },
        );
        let key = 5u64;
        // Advance far, then send a hopeless straggler.
        service.ingest(
            (1..=100)
                .map(|t| KeyedEvent::new(key, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        service.ingest([KeyedEvent::new(key, 0, Event::point(Time::new(3), Value::Float(9.0)))]);
        let out = service.finish_at(Time::new(104));
        assert_eq!(out.stats.late_dropped, 1);
        // Output equals a replay that never saw the straggler.
        let clean: Vec<Event<Value>> =
            (1..=100).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect();
        let expected = replay(&cq, &clean, Time::new(104));
        assert!(streams_equivalent(
            &coalesce(&expected),
            &coalesce(&out.per_query[q.index()][&key])
        ));
    }

    // ── Hardening: eviction, backstop ──────────────────────────────────

    /// One shard, one hot key driving the watermark, one key that goes
    /// idle past the TTL and then revives. The evicting service's output
    /// must equal both a never-evicting service's and an in-order replay.
    #[test]
    fn idle_key_eviction_and_revival_are_transparent() {
        let cq = sliding_sum_query(4);
        let config = |ttl| RuntimeConfig {
            shards: 1,
            emit_interval: 8,
            key_ttl: ttl,
            ..RuntimeConfig::default()
        };
        let phase1: Vec<KeyedEvent> =
            key_events(7, 20).into_iter().chain(key_events(9, 500)).collect();
        let phase2: Vec<KeyedEvent> = (501..=520)
            .flat_map(|t| {
                [7u64, 9u64].map(|k| {
                    KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64)))
                })
            })
            .collect();
        let end = Time::new(530);

        let (evicting, q) = single(&cq, config(Some(32)));
        evicting.ingest(phase1.iter().cloned());
        // Key 7 idles while key 9 drives the watermark: wait for the sweep
        // to retire it before reviving it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while evicting.stats().evictions == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(evicting.stats().evictions >= 1, "idle key was never evicted");
        assert_eq!(evicting.stats().live_keys, 1, "only the hot key stays live");
        evicting.ingest(phase2.iter().cloned());
        let out = evicting.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert!(out.stats.revivals >= 1, "revival event must re-create the session");
        assert_eq!(out.stats.keys, 2, "keys counts distinct keys ever seen");

        let (plain, pq) = single(&cq, config(None));
        plain.ingest(phase1.iter().cloned());
        plain.ingest(phase2.iter().cloned());
        let base = plain.finish_at(end);
        assert_eq!(base.stats.evictions, 0);
        for k in [7u64, 9u64] {
            assert!(
                streams_equivalent(
                    &coalesce(&base.per_query[pq.index()][&k]),
                    &coalesce(&out.per_query[q.index()][&k])
                ),
                "key {k}: evicting service diverged from never-evicting"
            );
            // And both equal the in-order replay of the key's own stream.
            let events: Vec<Event<Value>> = phase1
                .iter()
                .chain(phase2.iter())
                .filter(|ke| ke.key == k)
                .map(|ke| ke.event.clone())
                .collect();
            let expected = replay(&cq, &events, end);
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&k])),
                "key {k}: evicting service diverged from replay"
            );
        }
    }

    #[test]
    fn wall_clock_ttl_evicts_without_event_time_progress() {
        // No watermark movement at all after ingestion: the event-time
        // sweep can never fire, but the wall-clock TTL still retires the
        // idle sessions — and the final flush output is unchanged.
        let cq = sliding_sum_query(4);
        let (service, q) = single(
            &cq,
            RuntimeConfig {
                shards: 1,
                emit_interval: 1,
                wall_clock_ttl: Some(Duration::from_millis(30)),
                ..RuntimeConfig::default()
            },
        );
        service.ingest(key_events(1, 40));
        service.ingest(key_events(2, 40));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while service.stats().wall_evictions < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mid = service.stats();
        assert!(mid.wall_evictions >= 2, "wall-clock TTL never fired: {mid}");
        assert_eq!(mid.live_keys, 0, "both keys idle out");
        // Revive key 1 with traffic past the eviction frontier (the dead
        // stream's end + the query's state horizon).
        let revive_from = 41 + cq.state_horizon();
        service.ingest((revive_from..=revive_from + 20).map(|t| {
            KeyedEvent::new(1, 0, Event::point(Time::new(t), Value::Float(1.0 + t as f64)))
        }));
        let end = Time::new(revive_from + 30);
        let out = service.finish_at(end);
        assert!(out.stats.revivals >= 1);
        let mut full: Vec<Event<Value>> =
            key_events(1, 40).iter().map(|ke| ke.event.clone()).collect();
        full.extend(
            (revive_from..=revive_from + 20)
                .map(|t| Event::point(Time::new(t), Value::Float(1.0 + t as f64))),
        );
        let expected = replay(&cq, &full, end);
        assert!(
            streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&1])),
            "wall-clock eviction + revival diverged from replay"
        );
        let expected2 = replay(
            &cq,
            &key_events(2, 40).iter().map(|ke| ke.event.clone()).collect::<Vec<_>>(),
            end,
        );
        assert!(streams_equivalent(
            &coalesce(&expected2),
            &coalesce(&out.per_query[q.index()][&2])
        ));
    }

    #[test]
    fn backstop_drop_newest_caps_buffered_events() {
        // A watermark pinned by huge allowed lateness: nothing matures, so
        // the reorder buffer is the only place events can live. The cap
        // holds and the overflow is counted.
        let cq = sliding_sum_query(4);
        let (service, q) = single(
            &cq,
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_key: Some(64),
                backstop: BackstopPolicy::DropNewest,
                ..RuntimeConfig::default()
            },
        );
        service.ingest(key_events(1, 500));
        let out = service.finish_at(Time::new(504));
        assert_eq!(out.stats.backstop_dropped, 500 - 64, "overflow is dropped and counted");
        assert_eq!(out.stats.backstop_forced, 0);
        // The survivors are the oldest 64 (the cap refuses newest), so the
        // output equals a replay of the in-order prefix.
        let prefix: Vec<Event<Value>> =
            key_events(1, 64).iter().map(|ke| ke.event.clone()).collect();
        let expected = replay(&cq, &prefix, Time::new(504));
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&1])));
        assert!(out.stats.reorder_pending.iter().all(|&p| p == 0), "drained at shutdown");
    }

    #[test]
    fn backstop_force_drain_is_lossless_for_in_order_input() {
        // Same pinned watermark, but the force-drain policy pushes the
        // oldest buffered events through the session instead of dropping
        // the newest: for in-order input nothing is lost at all.
        let cq = sliding_sum_query(4);
        let (service, q) = single(
            &cq,
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_key: Some(64),
                backstop: BackstopPolicy::ForceDrain,
                ..RuntimeConfig::default()
            },
        );
        service.ingest(key_events(1, 500));
        let out = service.finish_at(Time::new(504));
        assert_eq!(out.stats.backstop_dropped, 0);
        assert_eq!(out.stats.late_dropped, 0, "in-order input loses nothing to force-drain");
        assert!(out.stats.backstop_forced > 0, "the cap must have fired");
        let all: Vec<Event<Value>> = key_events(1, 500).iter().map(|ke| ke.event.clone()).collect();
        let expected = replay(&cq, &all, Time::new(504));
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&1])));
    }

    #[test]
    fn shard_level_backstop_bounds_total_pending() {
        // Many keys share one shard: no single key exceeds the per-key cap,
        // but the shard-wide cap still bounds the backlog.
        let cq = sliding_sum_query(4);
        let (service, _q) = single(
            &cq,
            RuntimeConfig {
                shards: 1,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                max_pending_per_shard: Some(100),
                backstop: BackstopPolicy::DropNewest,
                ..RuntimeConfig::default()
            },
        );
        for k in 0..20u64 {
            service.ingest(key_events(k, 10));
        }
        let out = service.finish_at(Time::new(20));
        assert_eq!(out.stats.backstop_dropped, 100, "200 sent, 100 buffered, 100 refused");
        assert_eq!(out.stats.reorder_buffered, 100);
    }

    #[test]
    fn explicit_watermarks_drive_emission_and_sink_streams() {
        let cq = sliding_sum_query(4);
        let emitted = Arc::new(std::sync::Mutex::new(Vec::<(u64, Event<Value>)>::new()));
        let sink_store = Arc::clone(&emitted);
        let (service, q) = single_with_sink(
            &cq,
            RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() },
            Arc::new(move |key, events| {
                sink_store.lock().unwrap().extend(events.iter().map(|e| (key, e.clone())));
            }),
        );
        service.ingest(key_events(1, 50));
        service.watermark(0, Time::new(50));
        // The sink sees finalized prefixes before shutdown.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while emitted.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(!emitted.lock().unwrap().is_empty(), "sink never saw streamed output");
        let out = service.finish_at(Time::new(54));
        assert!(out.per_query[q.index()][&1].is_empty(), "sink consumed the events");
        assert_eq!(out.stats.events_out as usize, emitted.lock().unwrap().len());
        // Streamed output equals replay.
        let expected = replay(
            &cq,
            &key_events(1, 50).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(54),
        );
        let streamed: Vec<Event<Value>> =
            emitted.lock().unwrap().iter().map(|(_, e)| e.clone()).collect();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&streamed)));
    }

    #[test]
    fn quiet_key_tail_reaches_sink_without_finish() {
        // Key 1 stops at t=20; key 2 keeps driving the shard watermark
        // forward. The sink must receive key 1's closing windows (the last
        // non-φ output of a 4-tick sum ends at t=23) while the service is
        // still running — not only at shutdown flush.
        let cq = sliding_sum_query(4);
        let emitted = Arc::new(std::sync::Mutex::new(Vec::<(u64, Event<Value>)>::new()));
        let sink_store = Arc::clone(&emitted);
        let (service, _q) = single_with_sink(
            &cq,
            RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() },
            Arc::new(move |key, events| {
                sink_store.lock().unwrap().extend(events.iter().map(|e| (key, e.clone())));
            }),
        );
        service.ingest(key_events(1, 20));
        let quiet_tail_seen = |emitted: &std::sync::Mutex<Vec<(u64, Event<Value>)>>| {
            emitted.lock().unwrap().iter().any(|(k, e)| *k == 1 && e.end >= Time::new(23))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut t = 21i64;
        while !quiet_tail_seen(&emitted) && std::time::Instant::now() < deadline {
            service.send(KeyedEvent::new(2, 0, Event::point(Time::new(t), Value::Float(1.0))));
            t += 1;
        }
        assert!(
            quiet_tail_seen(&emitted),
            "quiet key's finalized tail never reached the sink while running (watermark pushed to t={t})"
        );
        service.finish();
    }

    #[test]
    fn stats_track_queue_and_watermarks() {
        let cq = sliding_sum_query(4);
        let (service, _q) =
            single(&cq, RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() });
        service.ingest(key_events(3, 100));
        service.ingest(key_events(4, 100));
        let out = service.finish();
        assert_eq!(out.stats.events_in, 200);
        assert!(out.stats.events_out > 0);
        assert_eq!(out.stats.keys, 2);
        assert_eq!(out.stats.queue_depths.len(), 2);
        assert!(out.stats.queue_depths.iter().all(|&d| d == 0), "drained queues");
        assert!(out.stats.min_watermark >= Time::new(100), "flush horizon reached");
        // Single-query accounting: every event buffered once, nothing saved.
        assert_eq!(out.stats.reorder_buffered, 200);
        assert_eq!(out.stats.kernels_saved, 0);
        assert_eq!(out.stats.events_out_per_query, vec![out.stats.events_out]);
        assert_eq!(out.stats.query_frontiers, vec![Time::ZERO]);
        assert_eq!(out.stats.queries_live, 1);
        assert_eq!(out.stats.attached, 0, "pre-start registrations are not live attaches");
    }

    #[test]
    fn two_source_query_holds_back_for_slowest_source() {
        // join(a, b): per-key sum of two sources' running 4-windows.
        let mut b = Query::builder();
        let a_in = b.input("a", DataType::Float);
        let b_in = b.input("b", DataType::Float);
        let sum = b.temporal(
            "sum",
            TDom::every_tick(),
            Expr::reduce_window(ReduceOp::Sum, a_in, 4).add(Expr::reduce_window(
                ReduceOp::Sum,
                b_in,
                4,
            )),
        );
        let q = b.finish(sum).unwrap();
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());

        let (service, qh) =
            single(&cq, RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() });
        let key = 9u64;
        // Source 0 races ahead; source 1 lags at t=10.
        service.ingest(
            (1..=60)
                .map(|t| KeyedEvent::new(key, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        service.ingest(
            (1..=10)
                .map(|t| KeyedEvent::new(key, 1, Event::point(Time::new(t), Value::Float(10.0)))),
        );
        let stats = service.stats();
        // Min-watermark propagation: the shard watermark tracks the slow
        // source, not the fast one.
        assert!(
            stats.shard_watermarks.iter().all(|&w| w <= Time::new(10)),
            "watermarks {:?} ran ahead of the slow source",
            stats.shard_watermarks
        );
        let out = service.finish_at(Time::new(64));
        // Ground truth: replay both sources in order.
        let mut session = cq.stream_session(Time::ZERO);
        session.push_events(
            0,
            &(1..=60).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect::<Vec<_>>(),
        );
        session.push_events(
            1,
            &(1..=10).map(|t| Event::point(Time::new(t), Value::Float(10.0))).collect::<Vec<_>>(),
        );
        let expected = session.flush_to(Time::new(64)).to_events();
        assert!(streams_equivalent(
            &coalesce(&expected),
            &coalesce(&out.per_query[qh.index()][&key])
        ));
    }

    #[test]
    fn keys_partition_stably_across_shards() {
        let shards = 8;
        for key in 0..1000u64 {
            let a = shard_index(key, shards);
            let b = shard_index(key, shards);
            assert_eq!(a, b);
            assert!(a < shards);
        }
        // Rough balance over sequential keys.
        let mut counts = vec![0usize; shards];
        for key in 0..8000u64 {
            counts[shard_index(key, shards)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let cq = sliding_sum_query(4);
        let (service, _q) = single(&cq, RuntimeConfig::default());
        service.ingest(key_events(1, 10));
        drop(service); // must not hang or leak panics
    }

    #[test]
    fn one_shot_run_agrees_with_service_for_single_key() {
        // Closing the loop with the batch executor: service output ==
        // CompiledQuery::run over the same events.
        let cq = sliding_sum_query(6);
        let n = 120i64;
        let events: Vec<Event<Value>> =
            (1..=n).map(|t| Event::point(Time::new(t), Value::Float(t as f64 * 0.5))).collect();
        let range = TimeRange::new(Time::ZERO, Time::new(n + 6));
        let buf = tilt_data::SnapshotBuf::from_events(&events, range);
        let oneshot = cq.run(&[&buf], range).to_events();

        let (service, q) = single(&cq, RuntimeConfig::default());
        service.ingest(events.iter().map(|e| KeyedEvent::new(77, 0, e.clone())));
        let out = service.finish_at(Time::new(n + 6));
        assert!(streams_equivalent(&coalesce(&oneshot), &coalesce(&out.per_query[q.index()][&77])));
    }

    // ── Watermark / lateness edge cases ────────────────────────────────

    #[test]
    fn explicit_watermark_floors_but_never_regresses() {
        // The event-driven watermark reached t=50; a stale explicit promise
        // at t=10 must not pull emission backwards, and a forward promise
        // must floor the watermark even with no further events.
        let cq = sliding_sum_query(4);
        let (service, q) =
            single(&cq, RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() });
        service.ingest(key_events(1, 50));
        service.watermark(0, Time::new(10)); // stale: behind max_start
        let wait_for_wm = |service: &StreamService, at_least: Time| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                if service.stats().min_watermark >= at_least {
                    return true;
                }
                std::thread::yield_now();
            }
            false
        };
        // Point events at t=1..=50 span (t−1, t]: the start-based watermark
        // rests at 49, and the stale promise at 10 must not move it.
        assert!(wait_for_wm(&service, Time::new(49)), "event-driven watermark must hold at 49");
        // Forward promise: emission advances past the last event with no
        // new input at all.
        service.watermark(0, Time::new(90));
        assert!(wait_for_wm(&service, Time::new(90)), "explicit watermark must floor to 90");
        // A second stale promise after the forward one is also a no-op.
        service.watermark(0, Time::new(40));
        let out = service.finish_at(Time::new(94));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(
            &cq,
            &key_events(1, 50).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(94),
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&1])));
    }

    #[test]
    fn finish_at_drains_events_still_held_by_lateness() {
        // A huge allowed lateness keeps the watermark far behind the data:
        // nothing matures during the run. finish_at must still flush every
        // buffered event through the horizon — a drained shutdown loses
        // nothing.
        let cq = sliding_sum_query(4);
        let (service, q) = single(
            &cq,
            RuntimeConfig {
                shards: 2,
                allowed_lateness: 1_000_000,
                emit_interval: 1,
                ..RuntimeConfig::default()
            },
        );
        service.ingest(key_events(8, 60));
        let mid = service.stats();
        assert_eq!(mid.events_out, 0, "nothing may emit while the watermark holds everything");
        let out = service.finish_at(Time::new(64));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(
            &cq,
            &key_events(8, 60).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(64),
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[q.index()][&8])));
    }

    #[test]
    fn interval_event_straddling_emission_horizon_is_exact() {
        // Regression for the PR 1 boundary fix: a long interval event spans
        // several emission cycles (emit_interval 8 with points driving the
        // watermark across its extent). The straddled event's early ticks
        // are emitted before its interval closes; the result must still
        // equal an in-order replay.
        let mut b = Query::builder();
        let input = b.input("x", DataType::Float);
        let sum =
            b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 5));
        let q = b.finish(sum).unwrap();
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());

        // One long event (10, 40] then points 41..=80 pushing the watermark
        // over both of its edges.
        let mut events: Vec<Event<Value>> =
            vec![Event::new(Time::new(10), Time::new(40), Value::Float(2.5))];
        events.extend((41..=80).map(|t| Event::point(Time::new(t), Value::Float(1.0))));
        let (service, qh) =
            single(&cq, RuntimeConfig { shards: 1, emit_interval: 8, ..RuntimeConfig::default() });
        service.ingest(events.iter().map(|e| KeyedEvent::new(3, 0, e.clone())));
        let out = service.finish_at(Time::new(85));
        assert_eq!(out.stats.late_dropped, 0);
        let expected = replay(&cq, &events, Time::new(85));
        assert!(
            streams_equivalent(&coalesce(&expected), &coalesce(&out.per_query[qh.index()][&3])),
            "straddling interval event corrupted emission: {:?} vs {:?}",
            expected,
            out.per_query[qh.index()][&3]
        );
    }

    // ── Multi-query service ────────────────────────────────────────────

    #[test]
    fn shared_service_outputs_match_standalone_services() {
        let fast = sliding_sum_query(3);
        let slow = sliding_sum_query(9);
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 2,
            allowed_lateness: 8,
            ..RuntimeConfig::default()
        });
        let q_fast = builder.register(Arc::clone(&fast));
        let q_slow = builder.register(Arc::clone(&slow));
        let multi = builder.start().unwrap();

        // Interleave keys by time, then scramble arrival order within
        // bounded blocks (shared by the multi and standalone runs).
        let mut events: Vec<KeyedEvent> = Vec::new();
        for t in 1..=120i64 {
            for k in 0..4u64 {
                events.push(KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float(k as f64 + t as f64)),
                ));
            }
        }
        for w in events.chunks_mut(5) {
            w.reverse();
        }
        multi.ingest(events.iter().cloned());
        let end = Time::new(140);
        let out = multi.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        assert_eq!(out.stats.reorder_buffered, events.len() as u64, "buffered once, not per query");

        for (qid, cq) in [(q_fast, &fast), (q_slow, &slow)] {
            let (standalone, sq) = single(
                cq,
                RuntimeConfig { shards: 2, allowed_lateness: 8, ..RuntimeConfig::default() },
            );
            standalone.ingest(events.iter().cloned());
            let solo = standalone.finish_at(end);
            for k in 0..4u64 {
                assert!(
                    streams_equivalent(
                        &coalesce(&solo.per_query[sq.index()][&k]),
                        &coalesce(&out.per_query[qid.index()][&k])
                    ),
                    "query {} key {k} diverged from standalone service",
                    qid.index()
                );
            }
        }
    }

    #[test]
    fn per_query_sinks_and_stats() {
        let cq = sliding_sum_query(4);
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 1,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let sunk = builder.register_with(
            Arc::clone(&cq),
            QuerySettings::with_sink(Arc::new(move |_key, events| {
                sink_store.lock().unwrap().extend(events.iter().cloned());
            })),
        );
        let kept = builder.register(Arc::clone(&cq));
        let multi = builder.start().unwrap();
        assert_eq!(multi.num_queries(), 2);

        multi.ingest(key_events(1, 50));
        let out = multi.finish_at(Time::new(54));
        // The sink consumed query 0; query 1 accumulated.
        assert!(out.per_query[sunk.index()][&1].is_empty());
        assert!(!out.per_query[kept.index()][&1].is_empty());
        // Both queries emitted the same number of events, counted per query.
        assert_eq!(
            out.stats.events_out_per_query[sunk.index()],
            out.stats.events_out_per_query[kept.index()]
        );
        assert_eq!(out.stats.events_out_per_query.iter().sum::<u64>(), out.stats.events_out);
        assert!(out.stats.kernels_saved > 0, "dedup must fire for identical queries");
        // Streamed == kept.
        assert!(streams_equivalent(
            &coalesce(&streamed.lock().unwrap()),
            &coalesce(&out.per_query[kept.index()][&1])
        ));
    }

    #[test]
    fn shared_service_drops_late_events_once() {
        // A beyond-lateness straggler is one lost *ingest* event, however
        // many queries are registered.
        let cq = sliding_sum_query(4);
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 1,
            allowed_lateness: 2,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let a = builder.register(Arc::clone(&cq));
        let b = builder.register(Arc::clone(&cq));
        let multi = builder.start().unwrap();
        multi.ingest(
            (1..=100).map(|t| KeyedEvent::new(5, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        multi.ingest([KeyedEvent::new(5, 0, Event::point(Time::new(3), Value::Float(9.0)))]);
        let out = multi.finish_at(Time::new(104));
        assert_eq!(out.stats.late_dropped, 1, "dropped once, not once per query");
        let clean: Vec<Event<Value>> =
            (1..=100).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect();
        let expected = replay(&cq, &clean, Time::new(104));
        for qid in [a, b] {
            assert!(streams_equivalent(
                &coalesce(&expected),
                &coalesce(&out.per_query[qid.index()][&5])
            ));
        }
    }

    #[test]
    fn mixed_arity_cell_waits_for_quiet_source_until_promised() {
        // Same-settings queries share a cell, so a 1-input query
        // co-registered with a 2-input query is gated by the 2-input
        // query's second source. With source 1 silent nothing streams; an
        // explicit watermark promise on source 1 releases emission; the
        // flush output still matches replay.
        let single_q = sliding_sum_query(4);
        let dual = {
            let mut b = Query::builder();
            let a_in = b.input("a", DataType::Float);
            let b_in = b.input("b", DataType::Float);
            let sum = b.temporal(
                "sum",
                TDom::every_tick(),
                Expr::reduce_window(ReduceOp::Sum, a_in, 4).add(Expr::reduce_window(
                    ReduceOp::Sum,
                    b_in,
                    4,
                )),
            );
            Arc::new(Compiler::new().compile(&b.finish(sum).unwrap()).unwrap())
        };
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 1,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let single_id = builder.register_with(
            Arc::clone(&single_q),
            QuerySettings::with_sink(Arc::new(move |_key, events| {
                sink_store.lock().unwrap().extend(events.iter().cloned());
            })),
        );
        builder.register(dual);
        let multi = builder.start().unwrap();

        multi.ingest(key_events(1, 40)); // source 0 only; source 1 silent
                                         // The quiet source holds the cell watermark at -inf: nothing may
                                         // stream yet (bounded wait to let the shard process the batch).
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            assert!(
                streamed.lock().unwrap().is_empty(),
                "1-input query streamed while the cell watermark was held"
            );
            std::thread::yield_now();
        }
        // An explicit promise on the silent source releases emission.
        multi.watermark(1, Time::new(40));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while streamed.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            !streamed.lock().unwrap().is_empty(),
            "explicit watermark on the quiet source must unstick streaming"
        );
        let out = multi.finish_at(Time::new(44));
        assert!(out.per_query[single_id.index()][&1].is_empty(), "sink consumed the events");
        let expected = replay(
            &single_q,
            &key_events(1, 40).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(44),
        );
        let streamed: Vec<Event<Value>> = streamed.lock().unwrap().clone();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&streamed)));
    }

    #[test]
    fn narrow_query_with_own_settings_is_not_gated_by_wide_query() {
        // The per-query-settings escape hatch for the mixed-arity gotcha:
        // give the 1-input query its own emission cadence, so it lands in
        // its own cell and streams even while the 2-input query's second
        // source is silent.
        let single_q = sliding_sum_query(4);
        let dual = {
            let mut b = Query::builder();
            let a_in = b.input("a", DataType::Float);
            let b_in = b.input("b", DataType::Float);
            let sum = b.temporal(
                "sum",
                TDom::every_tick(),
                Expr::reduce_window(ReduceOp::Sum, a_in, 4).add(Expr::reduce_window(
                    ReduceOp::Sum,
                    b_in,
                    4,
                )),
            );
            Arc::new(Compiler::new().compile(&b.finish(sum).unwrap()).unwrap())
        };
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 1,
            emit_interval: 4,
            ..RuntimeConfig::default()
        });
        builder.register_with(
            Arc::clone(&single_q),
            QuerySettings {
                emit_interval: Some(1), // distinct settings: own cell
                sink: Some(Arc::new(move |_key, events| {
                    sink_store.lock().unwrap().extend(events.iter().cloned());
                })),
                ..QuerySettings::default()
            },
        );
        builder.register(dual);
        let multi = builder.start().unwrap();
        multi.ingest(key_events(1, 40)); // source 1 stays silent
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while streamed.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            !streamed.lock().unwrap().is_empty(),
            "a decoupled 1-input query must stream despite the silent source"
        );
        let out = multi.finish_at(Time::new(44));
        let expected = replay(
            &single_q,
            &key_events(1, 40).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(44),
        );
        let streamed: Vec<Event<Value>> = streamed.lock().unwrap().clone();
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&streamed)));
        assert_eq!(out.stats.late_dropped, 0);
    }

    #[test]
    fn conflicting_source_types_are_rejected() {
        let float_q = sliding_sum_query(4);
        let int_q = {
            let mut b = Query::builder();
            let input = b.input("x", DataType::Int);
            let s =
                b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Count, input, 4));
            Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
        };
        let mut builder = StreamService::builder(RuntimeConfig::default());
        builder.register(Arc::clone(&float_q));
        builder.register(Arc::clone(&int_q));
        assert!(builder.start().is_err());
        // An empty service is now legal (attach-first pattern)…
        let empty = StreamService::start(RuntimeConfig::default());
        // …and live attach enforces the same type discipline.
        empty.attach(float_q, QuerySettings::default()).unwrap();
        assert!(matches!(
            empty.attach(int_q, QuerySettings::default()),
            Err(ServiceError::Compile(_))
        ));
        empty.finish();
    }

    // ── Control plane: attach / detach / subscribe ─────────────────────

    #[test]
    fn attach_joins_at_frontier_and_matches_suffix_run() {
        let cq = sliding_sum_query(4);
        let (service, q0) =
            single(&cq, RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() });
        service.ingest(key_events(1, 50));
        service.ingest(key_events(2, 50));
        let tenant = service.attach(Arc::clone(&cq), QuerySettings::default()).unwrap();
        assert!(tenant.frontier() >= Time::new(50), "frontier must clear every ingested event");
        assert_eq!(service.num_queries(), 2);
        let suffix: Vec<KeyedEvent> = (51..=120)
            .flat_map(|t| {
                [1u64, 2u64].map(|k| {
                    KeyedEvent::new(
                        k,
                        0,
                        Event::point(Time::new(t), Value::Float(k as f64 + t as f64)),
                    )
                })
            })
            .collect();
        service.ingest(suffix.iter().cloned());
        let end = Time::new(128);
        let out = service.finish_at(end);
        assert_eq!(out.stats.attached, 1);
        assert_eq!(out.stats.query_frontiers[tenant.index()], tenant.frontier());

        // The tenant sees exactly what a standalone service rooted at the
        // frontier and fed only the suffix would see.
        let (suffix_run, sq) = single(
            &cq,
            RuntimeConfig {
                shards: 2,
                emit_interval: 1,
                start: tenant.frontier(),
                ..RuntimeConfig::default()
            },
        );
        suffix_run.ingest(suffix.iter().cloned());
        let solo = suffix_run.finish_at(end);
        for k in [1u64, 2u64] {
            assert!(
                streams_equivalent(
                    &coalesce(&solo.per_query[sq.index()][&k]),
                    &coalesce(&out.per_query[tenant.index()][&k])
                ),
                "tenant key {k} diverged from the standalone suffix run"
            );
        }
        // And the original query saw everything.
        let full: Vec<Event<Value>> = key_events(1, 50)
            .iter()
            .map(|ke| ke.event.clone())
            .chain(suffix.iter().filter(|ke| ke.key == 1).map(|ke| ke.event.clone()))
            .collect();
        let expected = replay(&cq, &full, end);
        assert!(streams_equivalent(
            &coalesce(&expected),
            &coalesce(&out.per_query[q0.index()][&1])
        ));
    }

    #[test]
    fn detach_reclaims_sessions_and_leaves_survivors_identical() {
        let cq = sliding_sum_query(4);
        let events_a = key_events(1, 60);
        // The second phase postdates the attach frontier (≥ 60), so the
        // attached cell actually opens sessions to reclaim.
        let events_b: Vec<KeyedEvent> = (61..=120)
            .map(|t| {
                KeyedEvent::new(2, 0, Event::point(Time::new(t), Value::Float(2.0 + t as f64)))
            })
            .collect();

        // Baseline: survivor alone over the whole stream.
        let (baseline, bq) =
            single(&cq, RuntimeConfig { shards: 2, emit_interval: 1, ..RuntimeConfig::default() });
        baseline.ingest(events_a.iter().cloned());
        baseline.ingest(events_b.iter().cloned());
        let base = baseline.finish_at(Time::new(130));

        // Churning service: a second query joins pre-start (shared cell)
        // and a third attaches mid-stream (own cell); both detach.
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 2,
            emit_interval: 1,
            ..RuntimeConfig::default()
        });
        let survivor = builder.register(Arc::clone(&cq));
        let doomed = builder.register(Arc::clone(&cq));
        let service = builder.start().unwrap();
        service.ingest(events_a.iter().cloned());
        let attached = service.attach(Arc::clone(&cq), QuerySettings::default()).unwrap();
        service.detach(doomed).unwrap(); // exercises in-cell member removal
        service.ingest(events_b.iter().cloned());
        service.detach(attached).unwrap(); // exercises whole-cell teardown
        assert!(service.detach(attached).is_err(), "double detach must fail");
        assert!(
            service.detach(QueryHandle { id: 99, frontier: Time::ZERO }).is_err(),
            "unknown handle must fail"
        );
        let out = service.finish_at(Time::new(130));
        assert_eq!(out.stats.detached, 2);
        assert_eq!(out.stats.queries_live, 1);
        assert!(out.stats.sessions_reclaimed > 0, "cell teardown must reclaim sessions");
        // Detached queries hand back nothing.
        assert!(out.per_query[doomed.index()].values().all(|v| v.is_empty()));
        assert!(out.per_query[attached.index()].values().all(|v| v.is_empty()));
        // The survivor is byte-identical to its churn-free baseline.
        for k in [1u64, 2u64] {
            assert!(
                streams_equivalent(
                    &coalesce(&base.per_query[bq.index()][&k]),
                    &coalesce(&out.per_query[survivor.index()][&k])
                ),
                "survivor key {k} changed under attach/detach churn"
            );
        }
    }

    #[test]
    fn subscribe_streams_live_output_without_finish() {
        let cq = sliding_sum_query(4);
        let (service, q) =
            single(&cq, RuntimeConfig { shards: 1, emit_interval: 1, ..RuntimeConfig::default() });
        service.ingest(key_events(1, 30));
        let streamed = Arc::new(std::sync::Mutex::new(Vec::<Event<Value>>::new()));
        let sink_store = Arc::clone(&streamed);
        service
            .subscribe(
                q,
                Arc::new(move |_key, events| {
                    sink_store.lock().unwrap().extend(events.iter().cloned());
                }),
            )
            .unwrap();
        // Later traffic reaches the sink while the service runs.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut t = 31i64;
        while streamed.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            service.send(KeyedEvent::new(1, 0, Event::point(Time::new(t), Value::Float(1.0))));
            t += 1;
        }
        assert!(!streamed.lock().unwrap().is_empty(), "subscription never streamed");
        service.finish();
    }

    #[test]
    fn ingest_before_first_attach_drops_and_counts() {
        // An attach-first service fed before any query exists must refuse
        // the events gracefully — not panic a shard thread.
        let service = StreamService::start(RuntimeConfig { shards: 2, ..RuntimeConfig::default() });
        service.ingest(key_events(1, 10));
        let cq = sliding_sum_query(4);
        let q = service.attach(Arc::clone(&cq), QuerySettings::default()).unwrap();
        service.ingest(
            (11..=30).map(|t| KeyedEvent::new(1, 0, Event::point(Time::new(t), Value::Float(1.0)))),
        );
        let out = service.finish_at(Time::new(34));
        assert_eq!(out.stats.late_dropped, 10, "pre-attach events are refused and counted");
        assert!(!out.per_query[q.index()][&1].is_empty());
    }

    // ── Deprecated shims ───────────────────────────────────────────────

    #[allow(deprecated)]
    #[test]
    fn deprecated_runtime_shims_still_work() {
        let cq = sliding_sum_query(4);
        let runtime = Runtime::start(
            Arc::clone(&cq),
            RuntimeConfig { shards: 2, ..RuntimeConfig::default() },
        );
        runtime.ingest(key_events(1, 50));
        let out = runtime.finish_at(Time::new(54));
        let expected = replay(
            &cq,
            &key_events(1, 50).iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            Time::new(54),
        );
        assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&1])));

        let mut builder = MultiRuntime::builder(RuntimeConfig::default());
        let a = builder.register(Arc::clone(&cq));
        let b = builder.register(Arc::clone(&cq));
        let multi = builder.start().unwrap();
        assert_eq!(multi.num_queries(), 2);
        multi.ingest(key_events(1, 20));
        let out = multi.finish_at(Time::new(24));
        assert_eq!(out.per_query[a.index()][&1], out.per_query[b.index()][&1]);
        // The old contract: an empty MultiRuntime registration errors.
        assert!(MultiRuntime::builder(RuntimeConfig::default()).start().is_err());
    }
}
