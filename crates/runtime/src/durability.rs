//! Service-side durable-state plumbing: the snapshot record kinds, the
//! spill store evicted keys cool off in, and the service-record codec
//! shared by [`crate::StreamService::checkpoint`] and
//! [`crate::StreamService::restore`].
//!
//! Everything here rides the `tilt-state` container format: a checkpoint
//! file is one [`KIND_SERVICE`] record followed by one [`KIND_SHARD`]
//! record per shard; a spill file is a single-record [`KIND_SPILL`]
//! bundle. The per-key payload encoding lives with the shard
//! (`Shard::encode_key_state`) — it is the *same* encoding inside all
//! three record kinds.

use std::path::{Path, PathBuf};
use std::time::Duration;

use tilt_data::Time;
use tilt_state::{Dec, Enc, StateError};

use crate::{BackstopPolicy, RuntimeConfig};

/// Checkpoint record carrying the service-wide header (config, query
/// roster, cell roster, route overrides, counters). Exactly one per
/// checkpoint file, and always the first record.
pub(crate) const KIND_SERVICE: u8 = 1;
/// Checkpoint record carrying one shard's complete state; one per shard,
/// in shard order, after the service record.
pub(crate) const KIND_SHARD: u8 = 2;
/// A spill bundle: one evicted key's state, serialized verbatim.
pub(crate) const KIND_SPILL: u8 = 3;

/// The cold store spilled keys live in: one single-record bundle file per
/// key under the configured directory
/// ([`crate::StreamServiceBuilder::spill_to`]).
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Opens (creating if needed) the spill directory.
    pub(crate) fn open(dir: &Path) -> Result<SpillStore, StateError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StateError::Io { kind: e.kind(), context: "creating spill directory" })?;
        Ok(SpillStore { dir: dir.to_path_buf() })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("key-{key:016x}.spill"))
    }

    /// Writes one key's bundle, returning the bytes written.
    /// Failpoint: `state.spill.write` (a failed save falls back to
    /// keeping the key resident — eviction is abandoned, never lossy).
    pub(crate) fn save(&self, key: u64, payload: &[u8]) -> Result<u64, StateError> {
        tilt_fault::fail_point!("state.spill.write", {
            return Err(StateError::Io {
                kind: std::io::ErrorKind::Other,
                context: "writing spill bundle",
            });
        });
        tilt_state::write_bundle(&self.path(key), KIND_SPILL, payload)
    }

    /// Reads and *removes* one key's bundle, returning the payload and the
    /// bytes read. The removal makes revival exactly-once: a second load
    /// of the same key is an error, not a stale duplicate.
    /// Failpoint: `state.spill.read` (a failed load quarantines the key
    /// fail-closed and journals [`crate::ControlEvent::SpillCorrupt`]).
    pub(crate) fn load(&self, key: u64) -> Result<(Vec<u8>, u64), StateError> {
        tilt_fault::fail_point!("state.spill.read", {
            return Err(StateError::Io {
                kind: std::io::ErrorKind::Other,
                context: "reading spill bundle",
            });
        });
        let r = tilt_state::read_bundle(&self.path(key), KIND_SPILL)?;
        let _ = std::fs::remove_file(self.path(key));
        Ok(r)
    }
}

/// The service-side mirror of one shard cell: enough to rebuild the
/// cell's [`crate::shard::CellSpec`] from re-provided compiled queries at
/// restore. Dead cells are kept (and rebuilt dead) so roster indices in
/// per-key state stay valid — slots are never reused.
#[derive(Debug, Clone)]
pub(crate) struct CellRecord {
    pub(crate) alive: bool,
    pub(crate) qids: Vec<usize>,
    pub(crate) root: Time,
    pub(crate) lateness: i64,
    pub(crate) emit_interval: i64,
}

/// The decoded [`KIND_SERVICE`] record.
pub(crate) struct ServiceRecord {
    pub(crate) config: RuntimeConfig,
    /// Liveness per query slot, in registration order.
    pub(crate) live: Vec<bool>,
    /// Join frontier per query slot.
    pub(crate) frontiers: Vec<Time>,
    /// The full cell roster, dead cells included.
    pub(crate) cells: Vec<CellRecord>,
    /// Key-route overrides installed by migrations.
    pub(crate) routes: Vec<(u64, u32)>,
    /// Monotone service counters, in [`crate::stats`]'s fixed durable
    /// order.
    pub(crate) counters: Vec<u64>,
    /// The `max_event_end` gauge (attach-frontier negotiation state).
    pub(crate) max_event_end: i64,
    /// The `max_promise` gauge.
    pub(crate) max_promise: i64,
}

impl ServiceRecord {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        let c = &self.config;
        e.u64(c.shards as u64);
        e.i64(c.allowed_lateness);
        e.u64(c.channel_capacity as u64);
        e.u64(c.ingest_batch as u64);
        e.i64(c.emit_interval);
        e.time(c.start);
        e.opt_i64(c.key_ttl);
        e.opt_u64(c.wall_clock_ttl.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)));
        e.opt_u64(c.max_pending_per_key.map(|v| v as u64));
        e.opt_u64(c.max_pending_per_shard.map(|v| v as u64));
        e.u8(match c.backstop {
            BackstopPolicy::DropNewest => 0,
            BackstopPolicy::ForceDrain => 1,
        });
        e.u8(c.metrics as u8);
        e.u64(c.journal_capacity as u64);
        e.opt_u64(c.tombstone_output_cap.map(|v| v as u64));
        e.u32(self.live.len() as u32);
        for (live, f) in self.live.iter().zip(&self.frontiers) {
            e.u8(*live as u8);
            e.time(*f);
        }
        e.u32(self.cells.len() as u32);
        for cell in &self.cells {
            e.u8(cell.alive as u8);
            e.u32(cell.qids.len() as u32);
            for q in &cell.qids {
                e.u64(*q as u64);
            }
            e.time(cell.root);
            e.i64(cell.lateness);
            e.i64(cell.emit_interval);
        }
        e.u32(self.routes.len() as u32);
        for (key, shard) in &self.routes {
            e.u64(*key);
            e.u32(*shard);
        }
        e.u32(self.counters.len() as u32);
        for v in &self.counters {
            e.u64(*v);
        }
        e.i64(self.max_event_end);
        e.i64(self.max_promise);
        e.into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<ServiceRecord, StateError> {
        let mut d = Dec::new(payload);
        let shards = d.u64()? as usize;
        let allowed_lateness = d.i64()?;
        let channel_capacity = d.u64()? as usize;
        let ingest_batch = d.u64()? as usize;
        let emit_interval = d.i64()?;
        let start = d.time()?;
        let key_ttl = d.opt_i64()?;
        let wall_clock_ttl = d.opt_u64()?.map(Duration::from_nanos);
        let max_pending_per_key = d.opt_u64()?.map(|v| v as usize);
        let max_pending_per_shard = d.opt_u64()?.map(|v| v as usize);
        let backstop = match d.u8()? {
            0 => BackstopPolicy::DropNewest,
            1 => BackstopPolicy::ForceDrain,
            t => return Err(StateError::BadTag(t)),
        };
        let metrics = d.flag()?;
        let journal_capacity = d.u64()? as usize;
        let tombstone_output_cap = d.opt_u64()?.map(|v| v as usize);
        let config = RuntimeConfig {
            shards,
            allowed_lateness,
            channel_capacity,
            ingest_batch,
            emit_interval,
            start,
            key_ttl,
            wall_clock_ttl,
            max_pending_per_key,
            max_pending_per_shard,
            backstop,
            metrics,
            journal_capacity,
            tombstone_output_cap,
        };
        let n_q = d.count(9)?;
        let mut live = Vec::with_capacity(n_q);
        let mut frontiers = Vec::with_capacity(n_q);
        for _ in 0..n_q {
            live.push(d.flag()?);
            frontiers.push(d.time()?);
        }
        let n_cells = d.count(29)?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let alive = d.flag()?;
            let nq = d.count(8)?;
            let mut qids = Vec::with_capacity(nq);
            for _ in 0..nq {
                qids.push(d.u64()? as usize);
            }
            let root = d.time()?;
            let lateness = d.i64()?;
            let emit_interval = d.i64()?;
            cells.push(CellRecord { alive, qids, root, lateness, emit_interval });
        }
        let n_routes = d.count(12)?;
        let mut routes = Vec::with_capacity(n_routes);
        for _ in 0..n_routes {
            routes.push((d.u64()?, d.u32()?));
        }
        let n_counters = d.count(8)?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            counters.push(d.u64()?);
        }
        let max_event_end = d.i64()?;
        let max_promise = d.i64()?;
        d.finish()?;
        Ok(ServiceRecord {
            config,
            live,
            frontiers,
            cells,
            routes,
            counters,
            max_event_end,
            max_promise,
        })
    }
}
