//! Synthetic dataset generators standing in for the paper's gated datasets
//! (DESIGN.md substitution 2).
//!
//! Every generator is deterministic in its seed, emits events in time order,
//! and matches the event-rate/payload shape of the dataset it replaces:
//!
//! | paper dataset              | generator                  |
//! |----------------------------|----------------------------|
//! | NYSE stock ticks           | [`stock_walk`]             |
//! | synthetic 1000 Hz floats   | [`uniform_floats`]         |
//! | MIMIC-III ECG waveforms    | [`ecg_wave`]               |
//! | bearing vibration data     | [`vibration_wave`]         |
//! | Kaggle credit-card data    | [`transactions`]           |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tilt_data::{Event, Time, Value};

/// Uniform random floats in `[0, 1)`, one point event per tick — the paper's
/// own synthetic dataset ("random floating point values generated at 1000 Hz";
/// one tick = 1 ms).
pub fn uniform_floats(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=n as i64).map(|t| Event::point(Time::new(t), Value::Float(rng.gen::<f64>()))).collect()
}

/// A geometric-ish random walk around 100.0, one price per tick (NYSE
/// stand-in).
pub fn stock_walk(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut price = 100.0f64;
    (1..=n as i64)
        .map(|t| {
            price += rng.gen_range(-0.5..0.5) + 0.002;
            price = price.max(1.0);
            Event::point(Time::new(t), Value::Float(price))
        })
        .collect()
}

/// An ECG-like waveform: sinus baseline with a tall QRS-like spike every
/// `period` ticks plus noise (MIMIC-III stand-in). One sample per tick.
pub fn ecg_wave(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let period = 200i64; // ~250 Hz sampling, ~75 bpm
    (1..=n as i64)
        .map(|t| {
            let phase = t % period;
            let mut v = 0.1 * (2.0 * std::f64::consts::PI * phase as f64 / period as f64).sin();
            // QRS complex: sharp triangular spike near the period start.
            let d = (phase - 10).abs();
            if d < 4 {
                v += 1.2 * (1.0 - d as f64 / 4.0);
            }
            v += rng.gen_range(-0.02..0.02);
            Event::point(Time::new(t), Value::Float(v))
        })
        .collect()
}

/// Bearing-vibration stand-in: two sinusoids (shaft + bearing tone) with
/// occasional fault impulses. One sample per tick (1 kHz scale).
pub fn vibration_wave(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=n as i64)
        .map(|t| {
            let x = t as f64;
            let mut v = (x * 0.31).sin() + 0.4 * (x * 1.7).sin();
            if rng.gen::<f64>() < 0.002 {
                v += rng.gen_range(4.0..8.0); // fault impulse
            }
            v += rng.gen_range(-0.1..0.1);
            Event::point(Time::new(t), Value::Float(v))
        })
        .collect()
}

/// Credit-card-like transaction amounts: lognormal body with a heavy tail,
/// one transaction per tick (Kaggle stand-in).
pub fn transactions(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=n as i64)
        .map(|t| {
            let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let mut amount = (z * 0.8).exp() * 40.0;
            if rng.gen::<f64>() < 0.003 {
                amount *= rng.gen_range(10.0..40.0); // the frauds to catch
            }
            Event::point(Time::new(t), Value::Float(amount))
        })
        .collect()
}

/// A signal with missing stretches: like [`uniform_floats`] but dropping
/// events in random gaps (imputation stand-in). Returns `(events, n_gaps)`.
pub fn gapped_signal(n: usize, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut t = 1i64;
    while out.len() < n {
        if rng.gen::<f64>() < 0.05 {
            t += rng.gen_range(2..8); // gap
        }
        out.push(Event::point(Time::new(t), Value::Float(rng.gen::<f64>())));
        t += 1;
    }
    out
}

/// A sampled smooth signal: one event of length `period` per sample, values
/// from a slow sinusoid plus noise (resampling stand-in).
pub fn sampled_signal(n: usize, period: i64, seed: u64) -> Vec<Event<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as i64)
        .map(|k| {
            let v = (k as f64 * 0.05).sin() * 10.0 + rng.gen_range(-0.2..0.2);
            Event::new(Time::new(k * period), Time::new((k + 1) * period), Value::Float(v))
        })
        .collect()
}

/// A Zipf(`exponent`) sampler over ranks `0..num_keys`: rank `r` is drawn
/// with probability proportional to `1 / (r + 1)^exponent` via an inverted
/// precomputed CDF (O(num_keys) setup, O(log num_keys) per draw).
///
/// This is the key-popularity shape of real keyed traffic (users,
/// campaigns, devices): a small hot set plus a long tail of keys touched a
/// handful of times — exactly what idle-session eviction exists for.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics when `num_keys` is zero or `exponent` is not finite.
    pub fn new(num_keys: usize, exponent: f64) -> Zipf {
        assert!(num_keys > 0, "Zipf needs at least one key");
        assert!(exponent.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(num_keys);
        let mut total = 0.0f64;
        for r in 0..num_keys {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..num_keys` (rank 0 is the hottest).
    pub fn sample<R: rand::RngCore>(&self, rng: &mut R) -> u64 {
        let u: f64 = rand::Rng::gen(rng);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// A skewed keyed event stream: `n` point events at one tick each, keys
/// drawn Zipf(`exponent`) over `0..num_keys` (the runtime's own key hash
/// spreads the hot set across shards). Returns `(key, event)` pairs in
/// time order.
pub fn zipf_keyed_floats(
    n: usize,
    num_keys: usize,
    exponent: f64,
    seed: u64,
) -> Vec<(u64, Event<Value>)> {
    let zipf = Zipf::new(num_keys, exponent);
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=n as i64)
        .map(|t| {
            (zipf.sample(&mut rng), Event::point(Time::new(t), Value::Float(rng.gen::<f64>())))
        })
        .collect()
}

/// A sliding-window sum whose accumulator **panics on negative input** —
/// the deliberate poison pill for exercising the runtime's per-key panic
/// quarantine (tests and the `hardening` bench). Pair with
/// [`silence_poison_panics`] to keep the deliberate unwinds off stderr.
pub fn poisonable_sum(window: i64) -> std::sync::Arc<tilt_core::CompiledQuery> {
    use tilt_core::ir::{CustomReduce, DataType, Expr, Query, ReduceOp, TDom};
    let acc = std::sync::Arc::new(|state: &Value, v: &Value, w: i64| {
        let x = v.as_f64().expect("float input");
        assert!(x >= 0.0, "poison-pill value reached the kernel");
        Value::Float(state.as_f64().unwrap_or(0.0) + x * w as f64)
    });
    let op = ReduceOp::Custom(std::sync::Arc::new(CustomReduce {
        name: "poisonable_sum".to_string(),
        result_type: DataType::Float,
        init: Value::Float(0.0),
        acc,
        deacc: None,
        result: std::sync::Arc::new(|state: &Value, _n: i64| state.clone()),
    }));
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("sum", TDom::every_tick(), Expr::reduce_window(op, input, window));
    std::sync::Arc::new(
        tilt_core::Compiler::new().compile(&b.finish(out).expect("valid query")).expect("compiles"),
    )
}

/// Filters the deliberate [`poisonable_sum`] panics out of stderr (the
/// runtime catches the unwind; this only silences the default hook's
/// noise). Installs a chaining hook once per process; everything else
/// still prints through the previously installed hook.
pub fn silence_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg =
                info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or_else(|| {
                    info.payload().downcast_ref::<&str>().copied().unwrap_or("")
                });
            if !msg.contains("poison-pill") {
                default_hook(info);
            }
        }));
    });
}

/// Converts `Value` events to plain-`f64` events (for the specialized
/// baseline engines).
///
/// # Panics
///
/// Panics on non-numeric payloads.
pub fn to_f64_events(events: &[Event<Value>]) -> Vec<Event<f64>> {
    events
        .iter()
        .map(|e| Event::new(e.start, e.end, e.payload.as_f64().expect("numeric payload")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_data::validate_stream;

    #[test]
    fn generators_are_deterministic_and_ordered() {
        for gen in
            [uniform_floats, stock_walk, ecg_wave, vibration_wave, transactions, gapped_signal]
        {
            let a = gen(500, 42);
            let b = gen(500, 42);
            assert_eq!(a.len(), 500);
            assert_eq!(a, b, "same seed must give same data");
            assert_eq!(validate_stream(&a), Ok(()));
            let c = gen(500, 43);
            assert_ne!(a, c, "different seeds should differ");
        }
    }

    #[test]
    fn ecg_has_periodic_spikes() {
        let evs = ecg_wave(1000, 1);
        let spikes = evs.iter().filter(|e| e.payload.as_f64().unwrap() > 0.8).count();
        assert!((4..=40).contains(&spikes), "expected ~5 QRS complexes, got {spikes}");
    }

    #[test]
    fn sampled_signal_has_contiguous_intervals() {
        let evs = sampled_signal(10, 4, 7);
        assert_eq!(validate_stream(&evs), Ok(()));
        assert_eq!(evs[0].interval().len(), 4);
        assert_eq!(evs[9].end, Time::new(40));
    }

    #[test]
    fn transactions_have_heavy_tail() {
        let evs = transactions(20_000, 3);
        let max = evs.iter().map(|e| e.payload.as_f64().unwrap()).fold(0.0f64, f64::max);
        let mean: f64 =
            evs.iter().map(|e| e.payload.as_f64().unwrap()).sum::<f64>() / evs.len() as f64;
        assert!(max > mean * 10.0, "tail missing: max {max}, mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_deterministic_and_in_range() {
        let zipf = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 dominates and the tail is long: the head outdraws any
        // mid-rank key by an order of magnitude.
        assert!(counts[0] > 2_000, "head rank too cold: {}", counts[0]);
        assert!(counts[0] > 20 * counts[500].max(1));
        let touched = counts.iter().filter(|&&c| c > 0).count();
        assert!(touched > 200, "tail never sampled: {touched} keys touched");

        // Deterministic in the rng stream.
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn zipf_keyed_floats_shape() {
        let stream = zipf_keyed_floats(5000, 300, 1.1, 9);
        assert_eq!(stream.len(), 5000);
        assert!(stream.iter().all(|(k, _)| *k < 300));
        // Time-ordered point events, one per tick.
        assert!(stream
            .windows(2)
            .all(|w| w[0].1.end <= w[1].1.start || w[0].1.start < w[1].1.start));
        assert_eq!(stream, zipf_keyed_floats(5000, 300, 1.1, 9), "deterministic in seed");
        // Skew: the most popular key owns a large share of the stream.
        let mut counts = std::collections::HashMap::new();
        for (k, _) in &stream {
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > stream.len() / 20, "hottest key only {hottest} events");
    }

    #[test]
    fn to_f64_conversion() {
        let evs = uniform_floats(10, 9);
        let f = to_f64_events(&evs);
        assert_eq!(f.len(), 10);
        assert_eq!(f[0].payload, evs[0].payload.as_f64().unwrap());
    }
}
