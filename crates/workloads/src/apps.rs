//! The eight real-world streaming applications of Table 2 / Appendix A.
//!
//! Each application is a [`LogicalPlan`] plus the synthetic dataset that
//! stands in for the paper's gated data (see `gen`). The same plan runs on
//! the TiLT compiler, the Trill baseline, and the reference evaluator —
//! which is how the differential tests pin the semantics down.

use std::sync::Arc;

use tilt_core::ir::{CustomReduce, DataType, Expr};
use tilt_data::{Event, Value};
use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan, NodeId};

use crate::gen;

/// One benchmark application.
pub struct App {
    /// Short identifier (matches the x-axis labels of Fig. 7b/9).
    pub name: &'static str,
    /// What the query computes.
    pub description: &'static str,
    /// The operators used, as listed in Table 2.
    pub operators: &'static str,
    /// The event-centric query.
    pub plan: LogicalPlan,
    /// The plan's output node.
    pub output: NodeId,
    /// Synthetic dataset generator `(n_events, seed)`.
    pub dataset: fn(usize, u64) -> Vec<Event<Value>>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").field("name", &self.name).finish()
    }
}

/// Builds the full benchmark suite in Fig. 7b order.
pub fn all_apps() -> Vec<App> {
    vec![trading(), rsi(), normalize(), impute(), resample(), pantom(), vibration(), fraud_det()]
}

/// Trend-based trading \[18\]: moving-average crossover (the paper's running
/// example, Figs. 2/3).
pub fn trading() -> App {
    let mut plan = LogicalPlan::new();
    let stock = plan.source("stock", DataType::Float);
    let avg10 = plan.window(stock, 10, 1, Agg::Mean);
    let avg20 = plan.window(stock, 20, 1, Agg::Mean);
    let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
    let up = plan.where_(diff, elem().gt(Expr::c(0.0)));
    App {
        name: "Trading",
        description: "moving-average trend detection on stock prices",
        operators: "Avg(2), Join, Where",
        plan,
        output: up,
        dataset: gen::stock_walk,
    }
}

/// Relative strength index \[46\]: momentum indicator over a 14-tick period.
pub fn rsi() -> App {
    let mut plan = LogicalPlan::new();
    let price = plan.source("price", DataType::Float);
    let prev = plan.shift(price, 1);
    let diff = plan.join(price, prev, lhs().sub(rhs()));
    let gain = plan.select(diff, elem().bin(tilt_core::ir::BinOp::Max, Expr::c(0.0)));
    let loss = plan.select(diff, elem().neg().bin(tilt_core::ir::BinOp::Max, Expr::c(0.0)));
    let avg_gain = plan.window(gain, 14, 1, Agg::Mean);
    let avg_loss = plan.window(loss, 14, 1, Agg::Mean);
    // RSI = 100 - 100 / (1 + avgGain/avgLoss); avgLoss == 0 ⇒ RSI = 100.
    let rsi = plan.join(
        avg_gain,
        avg_loss,
        Expr::if_else(
            rhs().gt(Expr::c(0.0)),
            Expr::c(100.0).sub(Expr::c(100.0).div(Expr::c(1.0).add(lhs().div(rhs())))),
            Expr::c(100.0),
        ),
    );
    App {
        name: "RSI",
        description: "relative strength index momentum indicator",
        operators: "Shift, Join, Avg(2)",
        plan,
        output: rsi,
        dataset: gen::stock_walk,
    }
}

/// Z-score normalization \[57\] over 10-tick tumbling windows.
pub fn normalize() -> App {
    let mut plan = LogicalPlan::new();
    let sig = plan.source("signal", DataType::Float);
    let mean = plan.window(sig, 10, 10, Agg::Mean);
    let std = plan.window(sig, 10, 10, Agg::StdDev);
    let centered = plan.join(sig, mean, lhs().sub(rhs()));
    let z = plan.join(
        centered,
        std,
        Expr::if_else(rhs().gt(Expr::c(0.0)), lhs().div(rhs()), Expr::c(0.0)),
    );
    App {
        name: "Normalize",
        description: "z-score normalization per tumbling window",
        operators: "Avg, StdDev, Join",
        plan,
        output: z,
        dataset: gen::uniform_floats,
    }
}

/// Signal imputation \[54\]: replace missing samples with the window average.
pub fn impute() -> App {
    let mut plan = LogicalPlan::new();
    let sig = plan.source("signal", DataType::Float);
    let avg = plan.window(sig, 10, 10, Agg::Mean);
    let filled = plan.merge(sig, avg);
    App {
        name: "Impute",
        description: "fill gaps with the tumbling-window average",
        operators: "Avg, Merge(Join)",
        plan,
        output: filled,
        dataset: gen::gapped_signal,
    }
}

/// The input sample period of the resampling benchmark.
pub const RESAMPLE_IN: i64 = 4;
/// The output sample period of the resampling benchmark.
pub const RESAMPLE_OUT: i64 = 3;

/// Signal resampling \[55\]: linear interpolation from a 1/4-tick rate to a
/// 1/3-tick rate.
pub fn resample() -> App {
    let mut plan = LogicalPlan::new();
    let sig = plan.source("signal", DataType::Float);
    let next = plan.shift(sig, -RESAMPLE_IN);
    // Linear interpolation inside each source interval: the fraction of the
    // interval elapsed at time t is ((t-1) mod IN + 1) / IN.
    let frac = Expr::Time
        .sub(Expr::c(1i64))
        .rem(Expr::c(RESAMPLE_IN))
        .add(Expr::c(1i64))
        .bin(tilt_core::ir::BinOp::Div, Expr::c(RESAMPLE_IN as f64));
    let interp = plan.join(sig, next, lhs().add(rhs().sub(lhs()).mul(frac)));
    let out = plan.chop(interp, RESAMPLE_OUT);
    App {
        name: "Resample",
        description: "linear-interpolation resampling to a new rate",
        operators: "Select, Join, Shift, Chop",
        plan,
        output: out,
        dataset: |n, seed| gen::sampled_signal(n, RESAMPLE_IN, seed),
    }
}

/// Pan–Tompkins QRS detection \[39\] (streaming approximation): bandpass via
/// moving-average difference, derivative, squaring, moving-window
/// integration, adaptive threshold against a trailing maximum.
pub fn pantom() -> App {
    let mut plan = LogicalPlan::new();
    let ecg = plan.source("ecg", DataType::Float);
    let fast = plan.window(ecg, 5, 1, Agg::Mean);
    let slow = plan.window(ecg, 15, 1, Agg::Mean);
    let bandpass = plan.join(fast, slow, lhs().sub(rhs()));
    let lagged = plan.shift(bandpass, 2);
    let deriv = plan.join(bandpass, lagged, lhs().sub(rhs()).div(Expr::c(2.0)));
    let squared = plan.select(deriv, elem().mul(elem()));
    let integ = plan.window(squared, 15, 1, Agg::Mean);
    let trailing_max = plan.window(integ, 200, 1, Agg::Max);
    let qrs = plan.join(
        integ,
        trailing_max,
        Expr::if_else(lhs().gt(rhs().mul(Expr::c(0.5))), lhs(), Expr::null()),
    );
    App {
        name: "PanTom",
        description: "QRS-complex detection in ECG signals",
        operators: "Custom-Agg(3), Select, Avg",
        plan,
        output: qrs,
        dataset: gen::ecg_wave,
    }
}

/// The tumbling analysis window of the vibration benchmark (100 ms at 1 kHz).
pub const VIBRATION_WINDOW: i64 = 100;

/// Vibration analysis \[41\]: kurtosis, RMS, and crest factor per window.
pub fn vibration() -> App {
    let mut plan = LogicalPlan::new();
    let vib = plan.source("vibration", DataType::Float);
    let rms = plan.window(vib, VIBRATION_WINDOW, VIBRATION_WINDOW, Agg::Custom(rms_reduce()));
    let kurt = plan.window(vib, VIBRATION_WINDOW, VIBRATION_WINDOW, Agg::Custom(kurtosis_reduce()));
    let absolute = plan.select(vib, elem().abs());
    let peak = plan.window(absolute, VIBRATION_WINDOW, VIBRATION_WINDOW, Agg::Max);
    let crest = plan.join(peak, rms, lhs().div(rhs()));
    let report = plan.join(kurt, crest, Expr::Tuple(vec![lhs(), rhs()]));
    App {
        name: "Vibration",
        description: "kurtosis / RMS / crest-factor machine monitoring",
        operators: "Max, Avg(2), Join(2), Custom-Agg",
        plan,
        output: report,
        dataset: gen::vibration_wave,
    }
}

/// The sliding window (in ticks) of the fraud-detection benchmark.
pub const FRAUD_WINDOW: i64 = 240;

/// Credit-card fraud detection \[58\]: flag transactions above μ + 3σ of the
/// trailing window.
pub fn fraud_det() -> App {
    let mut plan = LogicalPlan::new();
    let txn = plan.source("transactions", DataType::Float);
    let mean = plan.window(txn, FRAUD_WINDOW, 1, Agg::Mean);
    let std = plan.window(txn, FRAUD_WINDOW, 1, Agg::StdDev);
    let threshold = plan.join(mean, std, lhs().add(rhs().mul(Expr::c(3.0))));
    let prev_threshold = plan.shift(threshold, 1);
    let flagged =
        plan.join(txn, prev_threshold, Expr::if_else(lhs().gt(rhs()), lhs(), Expr::null()));
    App {
        name: "FraudDet",
        description: "flag transactions above μ+3σ of the sliding window",
        operators: "Avg, StdDev, Shift, Join",
        plan,
        output: flagged,
        dataset: gen::transactions,
    }
}

/// Root-mean-square as a user-defined reduction (invertible).
pub fn rms_reduce() -> Arc<CustomReduce> {
    Arc::new(CustomReduce {
        name: "rms".into(),
        result_type: DataType::Float,
        init: Value::Float(0.0),
        acc: Arc::new(|s, v, _| s.add(&v.mul(v))),
        deacc: Some(Arc::new(|s, v, _| s.sub(&v.mul(v)))),
        result: Arc::new(|s, n| s.to_float().div(&Value::Int(n)).sqrt()),
    })
}

/// Kurtosis from raw power sums (invertible; state = {Σx, Σx², Σx³, Σx⁴}).
pub fn kurtosis_reduce() -> Arc<CustomReduce> {
    let powers = |s: &Value, v: &Value, sign: f64| {
        let x = v.as_f64().unwrap_or(0.0);
        Value::tuple([
            s.field(0).add(&Value::Float(sign * x)),
            s.field(1).add(&Value::Float(sign * x * x)),
            s.field(2).add(&Value::Float(sign * x * x * x)),
            s.field(3).add(&Value::Float(sign * x * x * x * x)),
        ])
    };
    Arc::new(CustomReduce {
        name: "kurtosis".into(),
        result_type: DataType::Float,
        init: Value::tuple([
            Value::Float(0.0),
            Value::Float(0.0),
            Value::Float(0.0),
            Value::Float(0.0),
        ]),
        acc: Arc::new(move |s, v, _| powers(s, v, 1.0)),
        deacc: Some(Arc::new(move |s, v, _| powers(s, v, -1.0))),
        result: Arc::new(|s, n| {
            let n = n as f64;
            let s1 = s.field(0).as_f64().unwrap_or(0.0);
            let s2 = s.field(1).as_f64().unwrap_or(0.0);
            let s3 = s.field(2).as_f64().unwrap_or(0.0);
            let s4 = s.field(3).as_f64().unwrap_or(0.0);
            let mu = s1 / n;
            let m2 = s2 / n - mu * mu;
            let m4 = (s4 - 4.0 * mu * s3 + 6.0 * mu * mu * s2 - 3.0 * mu.powi(4) * n) / n;
            if m2 <= 1e-12 {
                Value::Float(0.0)
            } else {
                Value::Float(m4 / (m2 * m2))
            }
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_core::Compiler;
    use tilt_data::{streams_close, SnapshotBuf, Time, TimeRange};

    /// Every application must lower, type check, and compile.
    #[test]
    fn all_apps_compile() {
        for app in all_apps() {
            let q = tilt_query::lower(&app.plan, app.output)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            let cq = Compiler::new().compile(&q).unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert!(cq.num_kernels() >= 1);
            assert!(cq.num_kernels() <= app.plan.len(), "{}: fusion should not grow", app.name);
        }
    }

    /// Cross-engine ground truth: TiLT (fused, optimized) must agree with
    /// the reference evaluator on every application.
    #[test]
    fn tilt_matches_reference_on_all_apps() {
        for app in all_apps() {
            let n = 400usize;
            let events = (app.dataset)(n, 7);
            let hi = events.iter().map(|e| e.end).max().unwrap();
            let range = TimeRange::new(Time::ZERO, hi);
            let expected = tilt_query::reference::evaluate(
                &app.plan,
                app.output,
                std::slice::from_ref(&events),
                range,
            );
            let q = tilt_query::lower(&app.plan, app.output).unwrap();
            let cq = Compiler::new().compile(&q).unwrap();
            let buf = SnapshotBuf::from_events(&events, range);
            let got = cq.run(&[&buf], range).to_events();
            assert!(
                streams_close(&expected, &got, 1e-6),
                "{}: reference has {} events, TiLT has {}",
                app.name,
                expected.len(),
                got.len()
            );
        }
    }

    /// The unoptimized compiler (per-operator kernels) must agree too —
    /// i.e. fusion changes nothing semantically on any application.
    #[test]
    fn fusion_is_semantics_preserving_on_all_apps() {
        for app in all_apps() {
            let events = (app.dataset)(300, 11);
            let hi = events.iter().map(|e| e.end).max().unwrap();
            let range = TimeRange::new(Time::ZERO, hi);
            let q = tilt_query::lower(&app.plan, app.output).unwrap();
            let buf = SnapshotBuf::from_events(&events, range);
            let fused = Compiler::new().compile(&q).unwrap().run(&[&buf], range).to_events();
            let unfused =
                Compiler::unoptimized().compile(&q).unwrap().run(&[&buf], range).to_events();
            assert!(
                streams_close(&fused, &unfused, 1e-6),
                "{}: fused {} events vs unfused {}",
                app.name,
                fused.len(),
                unfused.len()
            );
        }
    }

    /// Parallel partitioned execution must agree with serial on every app.
    #[test]
    fn parallel_matches_serial_on_all_apps() {
        for app in all_apps() {
            let events = (app.dataset)(600, 23);
            let hi_raw = events.iter().map(|e| e.end).max().unwrap();
            let q = tilt_query::lower(&app.plan, app.output).unwrap();
            let cq = Compiler::new().compile(&q).unwrap();
            // Align the range end to the kernel grid so serial == parallel
            // tail handling.
            let hi = hi_raw.align_down(cq.grid());
            let range = TimeRange::new(Time::ZERO, hi);
            let buf = SnapshotBuf::from_events(&events, range);
            let serial = cq.run(&[&buf], range).to_events();
            let parallel = cq.run_parallel(&[&buf], range, 4, 150).to_events();
            assert!(
                streams_close(&serial, &parallel, 1e-6),
                "{}: serial {} events vs parallel {}",
                app.name,
                serial.len(),
                parallel.len()
            );
        }
    }

    #[test]
    fn kurtosis_of_gaussian_like_window_is_reasonable() {
        // Kurtosis of a constant-amplitude sine over a full period ≈ 1.5.
        let vals: Vec<Value> = (0..100).map(|i| Value::Float((i as f64 * 0.0628).sin())).collect();
        let agg = Agg::Custom(kurtosis_reduce());
        let Value::Float(k) = agg.apply_naive(&vals) else { panic!() };
        assert!((k - 1.5).abs() < 0.1, "sine kurtosis ≈ 1.5, got {k}");
    }

    #[test]
    fn rms_of_known_values() {
        let vals: Vec<Value> = [3.0, 4.0].iter().map(|&x| Value::Float(x)).collect();
        let agg = Agg::Custom(rms_reduce());
        let Value::Float(r) = agg.apply_naive(&vals) else { panic!() };
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table2_inventory_is_complete() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "Trading",
                "RSI",
                "Normalize",
                "Impute",
                "Resample",
                "PanTom",
                "Vibration",
                "FraudDet"
            ]
        );
        // Every app has multiple pipeline breakers (§3 reports 2–6 for the
        // paper's formulations; ours range 1–7).
        for app in &apps {
            let b = app.plan.pipeline_breakers();
            assert!((1..=7).contains(&b), "{}: {b} breakers", app.name);
        }
    }
}
