//! `tilt-workloads` — datasets, the eight real-world applications of
//! Table 2, the Yahoo Streaming Benchmark, and the primitive-operation
//! micro-benchmarks, wired to every engine in the workspace.
//!
//! * [`gen`] — deterministic synthetic datasets (DESIGN.md substitution 2);
//! * [`apps`] — the benchmark suite of Fig. 7b / Fig. 9;
//! * [`ysb`] — YSB for all five engines (Table 1, Fig. 8);
//! * [`ops`] — Select / Where / WSum / Join micro-benchmarks (Fig. 7a).

#![warn(missing_docs)]

pub mod apps;
pub mod gen;
pub mod ops;
pub mod ysb;

pub use apps::{all_apps, App};
