//! The Yahoo Streaming Benchmark \[12\] for all five engines.
//!
//! YSB: filter ad events to views, map ad → campaign, count views per
//! campaign in 10-second tumbling windows. As in standard YSB setups the
//! stream is hash-partitioned by campaign; TiLT and Trill consume the
//! per-campaign partitions (Trill's only source of parallelism), while
//! LightSaber and Grizzly consume the flat keyed stream their aggregation
//! models expect.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tilt_core::ir::{DataType, Expr};
use tilt_core::Compiler;
use tilt_data::{Event, Time, TimeRange, Value};
use tilt_query::{elem, Agg, LogicalPlan, NodeId};
use tilt_runtime::{
    KeyedEvent, QueryHandle, RuntimeConfig, RuntimeStats, ServiceOutput, StreamService,
};

/// The YSB window length in "seconds".
pub const WINDOW_SECONDS: i64 = 10;

/// Window length in ticks for a stream of `events_per_sec` events per
/// second: event timestamps are strictly increasing (one tick per event), so
/// a 10-second window covers `10 × events_per_sec` ticks.
pub fn window_ticks(events_per_sec: usize) -> i64 {
    WINDOW_SECONDS * events_per_sec.max(1) as i64
}

/// One YSB ad event.
#[derive(Clone, Copy, Debug)]
pub struct YsbEvent {
    /// Event timestamp.
    pub time: Time,
    /// Campaign id (already joined from ad id, as in pre-joined YSB setups).
    pub campaign: i64,
    /// 0 = view (kept), 1 = click, 2 = purchase (filtered out).
    pub event_type: i64,
}

/// Generates `n` YSB events across `campaigns` campaigns with strictly
/// increasing timestamps (one tick per event, keeping every stream and every
/// campaign partition well formed), uniformly typed over view/click/purchase.
pub fn generate(n: usize, campaigns: usize, seed: u64) -> Vec<YsbEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| YsbEvent {
            time: Time::new(i as i64 + 1),
            campaign: rng.gen_range(0..campaigns as i64),
            event_type: rng.gen_range(0..3),
        })
        .collect()
}

/// The logical YSB query (per campaign partition): Where → Window-Count.
pub fn plan(window: i64) -> (LogicalPlan, NodeId) {
    let mut plan = LogicalPlan::new();
    let src = plan.source("ad_events", DataType::Int);
    let views = plan.where_(src, elem().eq(Expr::c(0i64)));
    let counts = plan.window(views, window, window, Agg::Count);
    (plan, counts)
}

/// How many YSB windows the correlated factor query aggregates over.
pub const FACTOR: i64 = 6;

/// The correlated *factor* query (cf. Factor Windows): the peak per-window
/// view count within each coarse window of `factor` YSB windows — "hottest
/// 10-second burst per campaign per minute".
///
/// Its first two operators (Where → Window-Count over the same ad stream)
/// are structurally identical to [`plan`]'s, so when both queries are
/// registered in one [`StreamService`] the pane-count kernel is detected
/// by the kernel-prefix dedup and executed once per advance, serving both.
pub fn factor_plan(window: i64, factor: i64) -> (LogicalPlan, NodeId) {
    let mut plan = LogicalPlan::new();
    let src = plan.source("ad_events", DataType::Int);
    let views = plan.where_(src, elem().eq(Expr::c(0i64)));
    let counts = plan.window(views, window, window, Agg::Count);
    let peak = plan.window(counts, factor * window, factor * window, Agg::Max);
    (plan, peak)
}

/// Hash-partitions events by campaign into per-campaign event streams whose
/// payload is the event type.
pub fn partition(events: &[YsbEvent], campaigns: usize) -> Vec<Vec<Event<Value>>> {
    let mut parts: Vec<Vec<Event<Value>>> = vec![Vec::new(); campaigns];
    for e in events {
        parts[(e.campaign as usize) % campaigns].push(Event::new(
            e.time - 1,
            e.time,
            Value::Int(e.event_type),
        ));
    }
    parts
}

/// The covered time range of an event set, aligned to the window grid.
pub fn extent(events: &[YsbEvent], window: i64) -> TimeRange {
    let hi = events.iter().map(|e| e.time).max().unwrap_or(Time::ZERO);
    TimeRange::new(Time::ZERO, hi.align_up(window))
}

/// Converts the flat ad stream into keyed events for `tilt-runtime`:
/// campaign id is the key, the payload is the event type.
pub fn keyed(events: &[YsbEvent]) -> Vec<KeyedEvent> {
    events
        .iter()
        .map(|e| {
            KeyedEvent::new(
                e.campaign as u64,
                0,
                Event::new(e.time - 1, e.time, Value::Int(e.event_type)),
            )
        })
        .collect()
}

/// Deterministically scrambles arrival order within consecutive blocks of
/// `displacement` events (Fisher–Yates per block), so no event arrives more
/// than `2 × displacement` positions — and, with one-tick event spacing,
/// `2 × displacement` ticks — from its timestamp order.
pub fn shuffle_bounded(events: &[YsbEvent], displacement: usize, seed: u64) -> Vec<YsbEvent> {
    let mut out = events.to_vec();
    if displacement < 2 {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for block in out.chunks_mut(displacement) {
        for i in (1..block.len()).rev() {
            block.swap(i, rng.gen_range(0..i + 1));
        }
    }
    out
}

/// Total view count per engine output, used to cross-check engines.
pub type ViewCount = i64;

/// Runs YSB on TiLT: one compiled query, campaign partitions processed by a
/// synchronization-free worker pool. Returns the total counted views.
pub fn run_tilt(
    partitions: &[Vec<Event<Value>>],
    range: TimeRange,
    threads: usize,
    window: i64,
) -> ViewCount {
    let (plan, out) = plan(window);
    let q = tilt_query::lower(&plan, out).expect("YSB lowers");
    let cq = Compiler::new().compile(&q).expect("YSB compiles");
    let total = std::sync::atomic::AtomicI64::new(0);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let (cq, total, next, partitions) = (&cq, &total, &next, &partitions);
        for _ in 0..threads.max(1).min(partitions.len()) {
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= partitions.len() {
                    break;
                }
                let buf = tilt_data::SnapshotBuf::from_events(&partitions[i], range);
                let out = cq.run(&[&buf], range);
                // Sum raw spans (one per window): `to_events` would coalesce
                // adjacent windows that happen to have equal counts.
                let sum: i64 = out.spans().iter().filter_map(|s| s.value.as_i64()).sum();
                total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
            });
        }
    })
    .expect("YSB worker panicked");
    total.load(std::sync::atomic::Ordering::Relaxed)
}

/// Runs keyed YSB through a single-query [`StreamService`]: the flat
/// (optionally out-of-order) ad stream is ingested as keyed events, the
/// service hash-partitions campaigns across `shards` worker threads, and
/// each campaign's windows are counted by its own streaming session over
/// one shared compiled query. Returns the total counted views and the
/// final service stats.
pub fn run_tilt_service(
    events: &[YsbEvent],
    shards: usize,
    window: i64,
    allowed_lateness: i64,
) -> (ViewCount, RuntimeStats) {
    let (plan, out) = plan(window);
    let q = tilt_query::lower(&plan, out).expect("YSB lowers");
    let cq = Arc::new(Compiler::new().compile(&q).expect("YSB compiles"));
    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness,
        emit_interval: window,
        ..RuntimeConfig::default()
    });
    let ysb = builder.register(cq);
    let service = builder.start().expect("single registration cannot conflict");
    service.ingest(keyed(events));
    let end = extent(events, window).end;
    let output = service.finish_at(end);
    (count_views(output.per_query[ysb.index()].values(), end, window), output.stats)
}

/// Totals the views in per-campaign YSB window outputs, counting windows
/// that close at or before `end`.
///
/// Each output event covers one or more whole windows; adjacent windows
/// with equal counts coalesce, so each event is weighted by the number of
/// windows it spans. Every YSB consumer (runtime, multi-runtime, bench,
/// examples) must count this one way — use this helper, don't re-derive
/// the fold.
pub fn count_views<'a, I>(outputs: I, end: Time, window: i64) -> ViewCount
where
    I: IntoIterator<Item = &'a Vec<Event<Value>>>,
{
    outputs
        .into_iter()
        .flatten()
        .filter(|e| e.end <= end)
        .filter_map(|e| Some(e.payload.as_i64()? * (e.interval().len() / window)))
        .sum()
}

/// Runs YSB *and* the correlated factor query through one shared
/// [`StreamService`]: the flat (optionally out-of-order) ad stream is
/// ingested, reorder-buffered, and watermarked **once** per shard, feeding
/// both queries; the pane-count kernel they structurally share executes
/// once per advance. Returns the YSB view count, the full per-query
/// output, and the two query handles (YSB first, factor second).
pub fn run_tilt_shared_service(
    events: &[YsbEvent],
    shards: usize,
    window: i64,
    allowed_lateness: i64,
) -> (ViewCount, ServiceOutput, [QueryHandle; 2]) {
    let (p1, out1) = plan(window);
    let (p2, out2) = factor_plan(window, FACTOR);
    let q1 = tilt_query::lower(&p1, out1).expect("YSB lowers");
    let q2 = tilt_query::lower(&p2, out2).expect("factor query lowers");
    let cq1 = Arc::new(Compiler::new().compile(&q1).expect("YSB compiles"));
    let cq2 = Arc::new(Compiler::new().compile(&q2).expect("factor query compiles"));

    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness,
        emit_interval: window,
        ..RuntimeConfig::default()
    });
    let ysb_id = builder.register(cq1);
    let factor_id = builder.register(cq2);
    let service = builder.start().expect("queries share the ad stream source");
    service.ingest(keyed(events));
    let end = extent(events, FACTOR * window).end;
    let output = service.finish_at(end);
    let views = count_views(output.per_query[ysb_id.index()].values(), end, window);
    (views, output, [ysb_id, factor_id])
}

/// Runs YSB on the Trill baseline: one operator graph per campaign
/// partition, `threads` workers.
pub fn run_trill(
    partitions: &[Vec<Event<Value>>],
    batch_size: usize,
    threads: usize,
    range: TimeRange,
    window: i64,
) -> ViewCount {
    let (plan, out) = plan(window);
    let outputs = spe_trill::run_partitioned(&plan, out, partitions, batch_size, threads);
    outputs.iter().flatten().filter(|e| e.end <= range.end).filter_map(|e| e.payload.as_i64()).sum()
}

/// Runs YSB on the StreamBox baseline: pipeline-parallel stages, one
/// campaign partition at a time.
pub fn run_streambox(
    partitions: &[Vec<Event<Value>>],
    bundle: usize,
    range: TimeRange,
    window: i64,
) -> ViewCount {
    let (plan, out) = plan(window);
    let mut total = 0i64;
    for part in partitions {
        if part.is_empty() {
            continue;
        }
        let events = spe_streambox::run_pipeline(&plan, out, std::slice::from_ref(part), bundle);
        total += events
            .iter()
            .filter(|e| e.end <= range.end)
            .filter_map(|e| e.payload.as_i64())
            .sum::<i64>();
    }
    total
}

/// Runs YSB on the LightSaber baseline: parallel filter + pane-parallel
/// grouped count over the flat keyed stream.
pub fn run_lightsaber(
    events: &[YsbEvent],
    range: TimeRange,
    threads: usize,
    window: i64,
) -> ViewCount {
    let keyed: Vec<(Time, i64)> =
        events.iter().filter(|e| e.event_type == 0).map(|e| (e.time, e.campaign)).collect();
    let tables = spe_lightsaber::run_grouped_count(&keyed, window, range, threads);
    tables.iter().flat_map(|t| t.values()).sum()
}

/// Runs YSB on the Grizzly baseline: fused loop with shared atomic state
/// over the flat keyed stream.
pub fn run_grizzly(
    events: &[YsbEvent],
    campaigns: usize,
    range: TimeRange,
    threads: usize,
    window: i64,
) -> ViewCount {
    let keyed: Vec<(Time, i64)> =
        events.iter().filter(|e| e.event_type == 0).map(|e| (e.time, e.campaign)).collect();
    let tables = spe_grizzly::run_grouped_count(&keyed, window, campaigns, range, threads);
    tables.iter().flatten().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_count_the_same_views() {
        let campaigns = 8;
        let window = window_ticks(40);
        let events = generate(4000, campaigns, 99);
        let range = extent(&events, window);
        let partitions = partition(&events, campaigns);
        let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;

        assert_eq!(run_tilt(&partitions, range, 3, window), expected, "tilt");
        assert_eq!(run_trill(&partitions, 256, 3, range, window), expected, "trill");
        assert_eq!(run_streambox(&partitions, 256, range, window), expected, "streambox");
        assert_eq!(run_lightsaber(&events, range, 3, window), expected, "lightsaber");
        assert_eq!(run_grizzly(&events, campaigns, range, 3, window), expected, "grizzly");
    }

    #[test]
    fn keyed_runtime_counts_match_batch_engines() {
        let campaigns = 8;
        let window = window_ticks(40);
        let events = generate(4000, campaigns, 99);
        let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;
        for shards in [1usize, 3] {
            let (views, stats) = run_tilt_service(&events, shards, window, 0);
            assert_eq!(views, expected, "shards={shards}");
            assert_eq!(stats.late_dropped, 0);
            assert_eq!(stats.events_in, events.len() as u64);
        }
    }

    #[test]
    fn keyed_runtime_tolerates_bounded_disorder() {
        let campaigns = 10;
        let window = window_ticks(40);
        let events = generate(5000, campaigns, 7);
        let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;
        let displacement = 64usize;
        let shuffled = shuffle_bounded(&events, displacement, 11);
        assert_ne!(
            shuffled.iter().map(|e| e.time).collect::<Vec<_>>(),
            events.iter().map(|e| e.time).collect::<Vec<_>>(),
            "shuffle must actually reorder"
        );
        let (views, stats) = run_tilt_service(&shuffled, 2, window, 2 * displacement as i64 + 2);
        assert_eq!(stats.late_dropped, 0, "lateness bound must absorb the shuffle");
        assert_eq!(views, expected);
    }

    #[test]
    fn zero_lateness_drops_stragglers_behind_the_watermark() {
        // With zero allowed lateness, events arriving after the watermark
        // passed them are lost — and say so in the stats rather than
        // failing silently. The watermark is pushed deterministically past
        // the in-order prefix before the stragglers are sent, so the
        // outcome does not depend on how ingest batches interleave with
        // shard emission cycles.
        let campaigns = 10;
        let window = window_ticks(40);
        let events = generate(5000, campaigns, 7);
        let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;

        let (plan, out) = plan(window);
        let q = tilt_query::lower(&plan, out).expect("YSB lowers");
        let cq = Arc::new(Compiler::new().compile(&q).expect("YSB compiles"));
        let mut builder = StreamService::builder(RuntimeConfig {
            shards: 2,
            allowed_lateness: 0,
            emit_interval: window,
            ..RuntimeConfig::default()
        });
        let qh = builder.register(cq);
        let runtime = builder.start().unwrap();
        runtime.ingest(keyed(&events));
        // Wait until every shard's watermark has crossed the last emission
        // grid point: by then each key's pushed frontier is within one
        // campaign round of the stream head.
        let hi = events.iter().map(|e| e.time).max().unwrap();
        let drained_past = Time::new(hi.align_down(window).ticks() + 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while runtime.stats().min_watermark < drained_past && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(runtime.stats().min_watermark >= drained_past, "watermark never advanced");

        // Stragglers more than a window behind the drained frontier: every
        // one is unsalvageably late.
        let stragglers = shuffle_bounded(&generate(500, campaigns, 8), 64, 9);
        assert!(Time::new(500) < Time::new(drained_past.ticks() - window));
        runtime.ingest(keyed(&stragglers));
        let end = extent(&events, window).end;
        let output = runtime.finish_at(end);
        assert_eq!(output.stats.late_dropped, 500, "every straggler is counted");
        let views = count_views(output.per_query[qh.index()].values(), end, window);
        assert_eq!(views, expected, "the in-order prefix is untouched");
    }

    #[test]
    fn shared_service_shares_ingestion_and_counts_views() {
        let campaigns = 8;
        let window = window_ticks(40);
        let events = generate(4000, campaigns, 99);
        let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;
        for shards in [1usize, 2] {
            let (views, out, _) = run_tilt_shared_service(&events, shards, window, 0);
            assert_eq!(views, expected, "shards={shards}");
            assert_eq!(out.stats.late_dropped, 0);
            // One shared ingestion pass: each event reorder-buffered once,
            // not once per query.
            assert_eq!(out.stats.reorder_buffered, events.len() as u64);
            // The pane-count kernel is structurally shared between YSB and
            // the factor query and must have been deduplicated.
            assert!(out.stats.kernels_saved > 0, "prefix dedup never fired");
        }
    }

    #[test]
    fn shared_factor_query_matches_standalone() {
        // Differential check at the workload level: the factor query served
        // from the shared service (with its pane prefix deduped into YSB's
        // kernel) produces exactly what it produces alone, in-order and
        // under bounded disorder.
        let campaigns = 6;
        let window = window_ticks(20);
        let events = generate(3000, campaigns, 5);
        let shuffled = shuffle_bounded(&events, 32, 3);
        let end = extent(&events, FACTOR * window).end;
        for (input, lateness) in [(&events, 0i64), (&shuffled, 66i64)] {
            let (_, multi, [_, factor_id]) = run_tilt_shared_service(input, 2, window, lateness);
            assert_eq!(multi.stats.late_dropped, 0);

            let (fp, fout) = factor_plan(window, FACTOR);
            let q = tilt_query::lower(&fp, fout).unwrap();
            let cq = Arc::new(Compiler::new().compile(&q).unwrap());
            let mut builder = StreamService::builder(RuntimeConfig {
                shards: 2,
                allowed_lateness: lateness,
                emit_interval: window,
                ..RuntimeConfig::default()
            });
            let solo_q = builder.register(cq);
            let solo = builder.start().unwrap();
            solo.ingest(keyed(input));
            let solo_out = solo.finish_at(end);
            let solo_map = &solo_out.per_query[solo_q.index()];
            assert_eq!(solo_map.len(), multi.per_query[factor_id.index()].len());
            for (key, events) in solo_map {
                assert!(
                    tilt_data::streams_equivalent(
                        &tilt_data::coalesce(events),
                        &tilt_data::coalesce(&multi.per_query[factor_id.index()][key])
                    ),
                    "campaign {key}: shared factor output diverged from standalone"
                );
            }
        }
    }

    #[test]
    fn generator_shape() {
        let events = generate(1000, 10, 1);
        assert_eq!(events.len(), 1000);
        assert!(events.iter().map(|e| e.time).max().unwrap() == Time::new(1000));
        assert!(events.iter().all(|e| (0..10).contains(&e.campaign)));
        // Strictly increasing, so every partition is well formed.
        let parts = partition(&events, 10);
        for p in &parts {
            assert_eq!(tilt_data::validate_stream(p), Ok(()));
        }
    }
}
