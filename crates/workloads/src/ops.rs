//! The primitive temporal-operation micro-benchmarks of Fig. 7a:
//! Select, Where, Window-Sum, and temporal Join, runnable on every engine
//! that supports them.
//!
//! LightSaber and Grizzly have no temporal join (paper §7.1), so
//! [`PrimitiveOp::Join`] is only runnable on TiLT, Trill, and StreamBox.

use tilt_core::ir::{DataType, Expr};
use tilt_core::Compiler;
use tilt_data::{Event, Time, TimeRange, Value};
use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan, NodeId};

use crate::gen;

/// The four primitive operations of Fig. 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrimitiveOp {
    /// `Select(e ⇒ e + 1)`.
    Select,
    /// `Where(e ⇒ e > 0.5)`.
    Where,
    /// `Window(10, 5).Sum()`.
    WSum,
    /// `Join((l, r) ⇒ l + r)`.
    Join,
}

impl PrimitiveOp {
    /// All four ops in Fig. 7a order.
    pub const ALL: [PrimitiveOp; 4] =
        [PrimitiveOp::Select, PrimitiveOp::Where, PrimitiveOp::WSum, PrimitiveOp::Join];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveOp::Select => "Select",
            PrimitiveOp::Where => "Where",
            PrimitiveOp::WSum => "WSum",
            PrimitiveOp::Join => "Join",
        }
    }

    /// Whether the op needs two input streams.
    pub fn is_binary(self) -> bool {
        self == PrimitiveOp::Join
    }
}

/// The logical plan of a primitive op.
pub fn plan(op: PrimitiveOp) -> (LogicalPlan, NodeId) {
    let mut p = LogicalPlan::new();
    match op {
        PrimitiveOp::Select => {
            let src = p.source("m", DataType::Float);
            let out = p.select(src, elem().add(Expr::c(1.0)));
            (p, out)
        }
        PrimitiveOp::Where => {
            let src = p.source("m", DataType::Float);
            let out = p.where_(src, elem().gt(Expr::c(0.5)));
            (p, out)
        }
        PrimitiveOp::WSum => {
            let src = p.source("m", DataType::Float);
            let out = p.window(src, 10, 5, Agg::Sum);
            (p, out)
        }
        PrimitiveOp::Join => {
            let m = p.source("m", DataType::Float);
            let n = p.source("n", DataType::Float);
            let out = p.join(m, n, lhs().add(rhs()));
            (p, out)
        }
    }
}

/// Input streams for a primitive op: one point-event stream per tick, and —
/// for Join — a second stream of 2-tick events so intersections are
/// non-trivial.
pub fn datasets(op: PrimitiveOp, n: usize, seed: u64) -> Vec<Vec<Event<Value>>> {
    let first = gen::uniform_floats(n, seed);
    if !op.is_binary() {
        return vec![first];
    }
    let second: Vec<Event<Value>> = gen::uniform_floats(n / 2, seed ^ 0xDEAD)
        .into_iter()
        .enumerate()
        .map(|(k, e)| {
            let start = 2 * k as i64;
            Event::new(Time::new(start), Time::new(start + 2), e.payload)
        })
        .collect();
    vec![first, second]
}

/// The covered range of the generated datasets.
pub fn range_for(inputs: &[Vec<Event<Value>>]) -> TimeRange {
    let hi = inputs.iter().flat_map(|evs| evs.iter().map(|e| e.end)).max().unwrap_or(Time::ZERO);
    TimeRange::new(Time::ZERO, hi.align_up(10))
}

/// Runs a primitive op on TiLT (parallel over boundary-resolved partitions)
/// and returns the number of output events.
pub fn run_tilt(
    op: PrimitiveOp,
    inputs: &[Vec<Event<Value>>],
    range: TimeRange,
    threads: usize,
    interval: i64,
) -> usize {
    let (p, out) = plan(op);
    let q = tilt_query::lower(&p, out).expect("primitive op lowers");
    let cq = Compiler::new().compile(&q).expect("primitive op compiles");
    let bufs: Vec<tilt_data::SnapshotBuf<Value>> =
        inputs.iter().map(|evs| tilt_data::SnapshotBuf::from_events(evs, range)).collect();
    let refs: Vec<&tilt_data::SnapshotBuf<Value>> = bufs.iter().collect();
    let result = cq.run_parallel(&refs, range, threads, interval);
    result.to_events().len()
}

/// Runs a primitive op on the Trill baseline (single partition — an
/// unpartitioned stream gives Trill no parallelism).
pub fn run_trill(op: PrimitiveOp, inputs: &[Vec<Event<Value>>], batch: usize) -> usize {
    let (p, out) = plan(op);
    if op.is_binary() {
        let mut engine = spe_trill::TrillEngine::new(&p, out);
        let sources = p.sources();
        let (a, b) = (&inputs[0], &inputs[1]);
        // Interleave batches from both sides to keep watermarks advancing.
        let mut ia = 0;
        let mut ib = 0;
        while ia < a.len() || ib < b.len() {
            if ia < a.len() {
                let hi = (ia + batch).min(a.len());
                engine.push_batch(sources[0], &a[ia..hi]);
                ia = hi;
            }
            if ib < b.len() {
                let hi = (ib + batch).min(b.len());
                engine.push_batch(sources[1], &b[ib..hi]);
                ib = hi;
            }
        }
        engine.finish().len()
    } else {
        spe_trill::run_single(&p, out, &inputs[0], batch).len()
    }
}

/// Runs a primitive op on the StreamBox baseline.
pub fn run_streambox(op: PrimitiveOp, inputs: &[Vec<Event<Value>>], bundle: usize) -> usize {
    let (p, out) = plan(op);
    spe_streambox::run_pipeline(&p, out, inputs, bundle).len()
}

/// Runs a primitive op on the LightSaber baseline; `None` when unsupported
/// (Join).
pub fn run_lightsaber(
    op: PrimitiveOp,
    inputs: &[Vec<Event<Value>>],
    range: TimeRange,
    threads: usize,
) -> Option<usize> {
    let events = gen::to_f64_events(&inputs[0]);
    Some(match op {
        PrimitiveOp::Select => spe_lightsaber::run_select(&events, |x| x + 1.0, threads).len(),
        PrimitiveOp::Where => spe_lightsaber::run_where(&events, |x| x > 0.5, threads).len(),
        PrimitiveOp::WSum => {
            let q = spe_lightsaber::WindowQuery {
                size: 10,
                stride: 5,
                agg: spe_lightsaber::LsAgg::Sum,
            };
            spe_lightsaber::run_window(&events, q, range, threads).len()
        }
        PrimitiveOp::Join => return None,
    })
}

/// Runs a primitive op on the Grizzly baseline; `None` when unsupported
/// (Join).
pub fn run_grizzly(
    op: PrimitiveOp,
    inputs: &[Vec<Event<Value>>],
    range: TimeRange,
    threads: usize,
) -> Option<usize> {
    let events = gen::to_f64_events(&inputs[0]);
    Some(match op {
        PrimitiveOp::Select => spe_grizzly::run_select(&events, |x| x + 1.0, threads).len(),
        PrimitiveOp::Where => spe_grizzly::run_where(&events, |x| x > 0.5, threads).len(),
        PrimitiveOp::WSum => spe_grizzly::run_window_sum(&events, 10, 5, range, threads).len(),
        PrimitiveOp::Join => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_data::streams_close;

    /// TiLT, Trill, StreamBox, and the reference evaluator must agree
    /// event-for-event on every primitive op.
    #[test]
    fn engines_agree_on_primitives() {
        for op in PrimitiveOp::ALL {
            let inputs = datasets(op, 300, 5);
            let range = range_for(&inputs);
            let expected = tilt_query::reference::evaluate(&plan(op).0, plan(op).1, &inputs, range);

            let (p, out) = plan(op);
            let q = tilt_query::lower(&p, out).unwrap();
            let cq = Compiler::new().compile(&q).unwrap();
            let bufs: Vec<tilt_data::SnapshotBuf<Value>> =
                inputs.iter().map(|evs| tilt_data::SnapshotBuf::from_events(evs, range)).collect();
            let refs: Vec<&tilt_data::SnapshotBuf<Value>> = bufs.iter().collect();
            let tilt_out = cq.run(&refs, range).to_events();
            assert!(
                streams_close(&expected, &tilt_out, 1e-6),
                "{}: tilt disagrees ({} vs {})",
                op.name(),
                expected.len(),
                tilt_out.len()
            );

            let trill_out: Vec<Event<Value>> = if op.is_binary() {
                let mut engine = spe_trill::TrillEngine::new(&p, out);
                let sources = p.sources();
                engine.push_batch(sources[0], &inputs[0]);
                engine.push_batch(sources[1], &inputs[1]);
                engine.finish()
            } else {
                spe_trill::run_single(&p, out, &inputs[0], 64)
            };
            let trill_out: Vec<Event<Value>> =
                trill_out.into_iter().filter(|e| e.end <= range.end).collect();
            assert!(
                streams_close(&expected, &trill_out, 1e-6),
                "{}: trill disagrees ({} vs {})",
                op.name(),
                expected.len(),
                trill_out.len()
            );

            let sb_out: Vec<Event<Value>> = spe_streambox::run_pipeline(&p, out, &inputs, 64)
                .into_iter()
                .filter(|e| e.end <= range.end)
                .collect();
            assert!(
                streams_close(&expected, &sb_out, 1e-6),
                "{}: streambox disagrees ({} vs {})",
                op.name(),
                expected.len(),
                sb_out.len()
            );
        }
    }

    /// The aggregation-only engines agree with the reference on the ops they
    /// support (modulo f64 payloads).
    #[test]
    fn specialized_engines_agree_on_wsum() {
        let op = PrimitiveOp::WSum;
        let inputs = datasets(op, 200, 5);
        let range = range_for(&inputs);
        let expected = tilt_query::reference::evaluate(&plan(op).0, plan(op).1, &inputs, range);
        let expected_sums: Vec<f64> = expected.iter().filter_map(|e| e.payload.as_f64()).collect();

        let events = gen::to_f64_events(&inputs[0]);
        let q =
            spe_lightsaber::WindowQuery { size: 10, stride: 5, agg: spe_lightsaber::LsAgg::Sum };
        let ls: Vec<f64> =
            spe_lightsaber::run_window(&events, q, range, 2).iter().map(|e| e.payload).collect();
        assert_eq!(expected_sums.len(), ls.len());
        for (a, b) in expected_sums.iter().zip(ls.iter()) {
            assert!((a - b).abs() < 1e-9, "lightsaber {b} vs {a}");
        }

        let gz: Vec<f64> = spe_grizzly::run_window_sum(&events, 10, 5, range, 2)
            .iter()
            .map(|e| e.payload)
            .collect();
        assert_eq!(expected_sums.len(), gz.len());
        for (a, b) in expected_sums.iter().zip(gz.iter()) {
            assert!((a - b).abs() < 1e-9, "grizzly {b} vs {a}");
        }
    }
}
