//! `spe-grizzly` — a Grizzly-style fused-loop aggregation engine
//! (baseline \[14\]).
//!
//! Grizzly compiles a query into one fused loop, but parallelizes by having
//! all worker threads update *shared aggregation state with atomics*. The
//! paper attributes Grizzly's overhead and poor scaling (§7.1–7.2) to
//! exactly those atomic updates, so this reproduction keeps them: every
//! event performs a CAS/fetch-add on a shared window table. Like
//! LightSaber, the vocabulary is aggregation-only (no temporal join).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use tilt_data::{Event, Time, TimeRange};

/// Atomically adds an `f64` via compare-exchange on its bit pattern — the
/// contended update Grizzly's shared window state performs.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Sliding/tumbling window sum computed by a fused loop over event chunks,
/// with all threads adding into one shared table of per-window atomics.
///
/// # Panics
///
/// Panics unless `stride` divides `size`.
pub fn run_window_sum(
    events: &[Event<f64>],
    size: i64,
    stride: i64,
    range: TimeRange,
    threads: usize,
) -> Vec<Event<f64>> {
    assert!(size % stride == 0, "stride must divide size");
    let n_windows = ((range.end - range.start) + stride - 1) / stride;
    if n_windows <= 0 {
        return Vec::new();
    }
    let sums: Vec<AtomicU64> = (0..n_windows).map(|_| AtomicU64::new(0)).collect();
    let counts: Vec<AtomicI64> = (0..n_windows).map(|_| AtomicI64::new(0)).collect();
    let per_window = size / stride;
    let threads = threads.max(1);
    let chunk = events.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|s| {
        let (sums, counts) = (&sums, &counts);
        for worker_chunk in events.chunks(chunk) {
            s.spawn(move |_| {
                for e in worker_chunk {
                    let t = e.end;
                    if t <= range.start || t > range.end {
                        continue;
                    }
                    // The event lands in `size/stride` consecutive windows.
                    let first = (t - range.start - 1) / stride;
                    for w in first..(first + per_window).min(n_windows) {
                        atomic_f64_add(&sums[w as usize], e.payload);
                        counts[w as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("grizzly worker panicked");

    (0..n_windows)
        .filter_map(|w| {
            if counts[w as usize].load(Ordering::Relaxed) == 0 {
                return None;
            }
            let end = range.start + (w + 1) * stride;
            Some(Event::new(
                end - stride,
                end.min(range.end),
                f64::from_bits(sums[w as usize].load(Ordering::Relaxed)),
            ))
        })
        .collect()
}

/// Grouped tumbling-window count with a shared `(window × key)` table of
/// atomics (the YSB shape in Grizzly's execution model).
pub fn run_grouped_count(
    keyed: &[(Time, i64)],
    window: i64,
    n_keys: usize,
    range: TimeRange,
    threads: usize,
) -> Vec<Vec<i64>> {
    let n_windows = (((range.end - range.start) + window - 1) / window).max(0) as usize;
    let table: Vec<AtomicI64> = (0..n_windows * n_keys).map(|_| AtomicI64::new(0)).collect();
    let threads = threads.max(1);
    let chunk = keyed.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|s| {
        let table = &table;
        for worker_chunk in keyed.chunks(chunk) {
            s.spawn(move |_| {
                for (t, key) in worker_chunk {
                    if *t <= range.start || *t > range.end {
                        continue;
                    }
                    let w = ((*t - range.start - 1) / window) as usize;
                    let k = (*key as usize) % n_keys;
                    table[w * n_keys + k].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("grizzly worker panicked");
    (0..n_windows)
        .map(|w| (0..n_keys).map(|k| table[w * n_keys + k].load(Ordering::Relaxed)).collect())
        .collect()
}

/// Fused parallel select (per-event map over chunks; no shared state).
pub fn run_select(
    events: &[Event<f64>],
    f: impl Fn(f64) -> f64 + Sync,
    threads: usize,
) -> Vec<Event<f64>> {
    chunked(events, threads, |e| Some(Event::new(e.start, e.end, f(e.payload))))
}

/// Fused parallel filter.
pub fn run_where(
    events: &[Event<f64>],
    pred: impl Fn(f64) -> bool + Sync,
    threads: usize,
) -> Vec<Event<f64>> {
    chunked(events, threads, |e| if pred(e.payload) { Some(*e) } else { None })
}

fn chunked(
    events: &[Event<f64>],
    threads: usize,
    f: impl Fn(&Event<f64>) -> Option<Event<f64>> + Sync,
) -> Vec<Event<f64>> {
    let threads = threads.max(1);
    let chunk = events.len().div_ceil(threads).max(1);
    let out: std::sync::Mutex<Vec<(usize, Vec<Event<f64>>)>> = std::sync::Mutex::new(Vec::new());
    crossbeam::thread::scope(|s| {
        let (f, out) = (&f, &out);
        for (i, worker_chunk) in events.chunks(chunk).enumerate() {
            s.spawn(move |_| {
                let mapped: Vec<Event<f64>> = worker_chunk.iter().filter_map(f).collect();
                out.lock().expect("chunk lock").push((i, mapped));
            });
        }
    })
    .expect("grizzly worker panicked");
    let mut pieces = out.into_inner().expect("workers joined");
    pieces.sort_by_key(|(i, _)| *i);
    pieces.into_iter().flat_map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(points: &[(i64, f64)]) -> Vec<Event<f64>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), v)).collect()
    }

    #[test]
    fn tumbling_sum_with_atomics() {
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(4));
        let out = run_window_sum(&events, 2, 2, range, 3);
        assert_eq!(out.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![3.0, 7.0]);
    }

    #[test]
    fn sliding_sum_fans_into_multiple_windows() {
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(4));
        let out = run_window_sum(&events, 2, 1, range, 2);
        // windows ending at 1,2,3,4 with size 2: 1, 3, 5, 7
        assert_eq!(out.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn grouped_count_table() {
        let keyed =
            vec![(Time::new(1), 0), (Time::new(2), 1), (Time::new(3), 0), (Time::new(11), 1)];
        let range = TimeRange::new(Time::new(0), Time::new(20));
        let tables = run_grouped_count(&keyed, 10, 2, range, 2);
        assert_eq!(tables[0], vec![2, 1]);
        assert_eq!(tables[1], vec![0, 1]);
    }

    #[test]
    fn select_where_chunked() {
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)]);
        let out = run_select(&events, |x| x + 0.5, 2);
        assert_eq!(out[4].payload, 5.5);
        let out = run_where(&events, |x| x >= 3.0, 2);
        assert_eq!(out.len(), 3);
        // Order preserved across chunks.
        assert_eq!(out[0].payload, 3.0);
    }

    #[test]
    fn atomic_f64_add_accumulates_concurrently() {
        let cell = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        atomic_f64_add(&cell, 1.0);
                    }
                });
            }
        })
        .expect("no panic");
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 4000.0);
    }
}
