//! Workspace-local stand-in for the subset of the crates.io `rand` API the
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the few external APIs it needs as small shim crates
//! (see `crates/shims/`). This one is a deterministic xoshiro256**-based
//! generator: statistically strong enough for synthetic benchmark datasets,
//! *not* cryptographically secure, and not stream-compatible with the real
//! `rand` crate (same seed gives different values than upstream `StdRng`).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, `start <= x < end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over `[low, high)`.
///
/// The single generic `SampleRange` impl below goes through this trait so
/// type inference can flow from the use site into the range literal
/// (`t += rng.gen_range(2..8)` infers `Range<i64>`), matching upstream
/// `rand`'s inference behavior.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`.
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample from empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        low + u * (high - low)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is negligible for the span sizes used here
                // (synthetic dataset generation, not cryptography).
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
