//! Workspace-local stand-in for the subset of the crates.io `proptest` API
//! the workspace's property tests use: the [`proptest!`] macro, range and
//! tuple strategies, `prop::collection::vec`, [`Strategy::prop_map`],
//! [`prop_oneof!`], `any::<bool>()`, and the `prop_assert*` macros.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the few external APIs it needs as small shim crates
//! (see `crates/shims/`). Differences from real proptest: generation is
//! deterministic (a fixed seed derived from the test name), there is **no
//! shrinking** — a failing case reports its inputs via the assertion
//! message and its case index — and strategies are simple uniform samplers
//! rather than bias-tuned distributions.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (typically derived from the test
    /// name so each property gets an independent stream).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E3779B97F4A7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator; mirrors `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded
    /// retries; panics if the predicate rejects everything).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Object-safe strategy surface used by [`BoxedStrategy`] and
/// [`prop_oneof!`].
pub trait DynStrategy<V> {
    /// Draws one value through the erased strategy.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 consecutive candidates", self.whence);
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union from the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy; mirrors
/// `proptest::arbitrary::Arbitrary` (generation only).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: PhantomData }
}

/// Per-block configuration; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespaced re-exports matching `proptest::prelude::prop`.
pub mod prop {
    pub use super::collection;
}

/// The prelude glob-imported by property-test files.
pub mod prelude {
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, DynStrategy, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The seed a [`proptest!`] block actually runs with: the per-test-name
/// seed, perturbed by the `PROPTEST_SEED` environment variable when set.
///
/// CI runs the property suites under several fixed `PROPTEST_SEED` values
/// so each push explores distinct deterministic case streams; locally,
/// `PROPTEST_SEED=n cargo test` reproduces exactly what CI saw for seed
/// `n`. Unset, generation falls back to the name-derived default. Every
/// set value perturbs — including `0` — and a value that does not parse
/// as a `u64` panics rather than silently running the default stream.
pub fn resolved_seed(name: &str) -> u64 {
    let base = seed_from_name(name);
    match std::env::var("PROPTEST_SEED") {
        Ok(raw) => {
            let env: u64 = raw
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {raw:?}"));
            // Offset before mixing so seed 0 still differs from unset.
            base ^ env.wrapping_add(0x9E3779B97F4A7C15).wrapping_mul(0xBF58476D1CE4E5B9)
        }
        Err(_) => base,
    }
}

/// Uniform choice among strategies with a common value type; mirrors
/// `proptest::prop_oneof!` (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

/// Asserts within a property; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item becomes a
/// normal `#[test]` that draws `cases` inputs deterministically and runs
/// the body on each. On failure, the panic message is prefixed with the
/// case index so the failure is reproducible (generation is seeded by the
/// test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::resolved_seed(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(cause) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        case + 1, config.cases, stringify!($name)
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(
            x in -5i64..10,
            pair in (0u8..4, 0.0f64..1.0),
            flag in any::<bool>(),
        ) {
            prop_assert!((-5..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..1.0).contains(&pair.1));
            let _ = flag;
        }

        /// Vec strategies honor their length range; prop_map applies.
        #[test]
        fn vecs_and_maps(
            v in prop::collection::vec((1i64..6).prop_map(|x| x * 2), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|x| (2..12).contains(x) && x % 2 == 0));
        }

        /// prop_oneof unions alternatives of one value type.
        #[test]
        fn oneof_unions(
            v in prop_oneof![
                (0i64..1).prop_map(|_| -1i64),
                1i64..100,
            ],
        ) {
            prop_assert!(v == -1i64 || (1i64..100).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0i64..1000, 5..6);
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
