//! Workspace-local stand-in for the subset of the crates.io `crossbeam` API
//! the workspace uses: [`thread::scope`] (scoped worker pools) and
//! [`channel::bounded`] (MPSC channels with backpressure).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the few external APIs it needs as small shim crates
//! (see `crates/shims/`). Both facilities delegate to `std`:
//! `std::thread::scope` and `std::sync::mpsc::sync_channel`.
//!
//! Behavioral differences from real crossbeam, acceptable for this
//! workspace: a panicking scoped thread propagates the panic out of
//! [`thread::scope`] instead of returning `Err`, and receivers are
//! single-consumer (every use in the workspace gives each receiver to
//! exactly one thread).

#![warn(missing_docs)]

/// Scoped threads (API of `crossbeam::thread`).
pub mod thread {
    /// A handle for spawning scoped threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// workers can spawn nested workers, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the calling
    /// stack frame; joins all of them before returning.
    ///
    /// Unlike crossbeam, a panicking worker resumes unwinding here (the
    /// `Err` arm is never constructed); workspace callers only ever
    /// `.expect()` the result, so the observable behavior — a panic with the
    /// worker's message — is equivalent.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels (API of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// The sending half of a bounded channel; cloneable for multi-producer
    /// use. Mirrors `crossbeam::channel::Sender`.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (backpressure) or every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }

        /// Attempts to enqueue without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg)
        }
    }

    /// The receiving half of a channel. Mirrors
    /// `crossbeam::channel::Receiver` minus `Clone` (single-consumer).
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Attempts to dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over received messages until every sender is dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages;
    /// senders block when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|inner| {
                // Nested spawn through the re-passed scope.
                inner.spawn(|_| ()).join().unwrap();
                10
            });
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }

    #[test]
    fn bounded_channel_backpressure_and_close() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        thread::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move |_| {
                for i in 100..200 {
                    tx2.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got.len(), 200);
        })
        .unwrap();
    }
}
