//! Workspace-local stand-in for the subset of the crates.io `criterion` API
//! the workspace's micro-benchmarks use.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the few external APIs it needs as small shim crates
//! (see `crates/shims/`). This shim keeps the `criterion_group!` /
//! `criterion_main!` harness shape and the `BenchmarkGroup` builder API but
//! replaces the statistical machinery with a plain
//! warmup-then-measure loop that prints mean time per iteration (and
//! element throughput when configured). No plotting, no outlier analysis,
//! no saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs (lower bound).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(&id.to_string(), None, sample_size, measurement_time, f);
        self
    }
}

/// Throughput annotation for a benchmark group.
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier; mirrors `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration element count,
    /// enabling elements/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly — one untimed warmup call, then measured
    /// iterations until the sample size or the time budget is reached.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let budget = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while (iters as usize) < self.sample_size && budget.elapsed() < self.measurement_time {
            let t0 = Instant::now();
            std::hint::black_box(f());
            total += t0.elapsed();
            iters += 1;
        }
        self.total = total;
        self.iters = iters.max(1);
    }
}

fn run_one<F>(
    name: &str,
    throughput: Option<u64>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { sample_size, measurement_time, total: Duration::ZERO, iters: 1 };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let time_str = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} us", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    match throughput {
        Some(elems) if per_iter > 0.0 => {
            let meps = elems as f64 / per_iter / 1e6;
            println!("{name:<40} {time_str:>12}/iter  {meps:>10.2} Melem/s  ({} iters)", b.iters);
        }
        _ => println!("{name:<40} {time_str:>12}/iter  ({} iters)", b.iters),
    }
}

/// Declares a benchmark group function; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` entry point; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
