//! `spe-trill` — a Trill-style interpreted micro-batch SPE (baseline \[11\]).
//!
//! Structural reproduction of the baseline the paper compares against most
//! extensively: columnar micro-batches with occupancy bitmaps
//! ([`ColumnarBatch`]), hand-written physical operators behind virtual
//! dispatch, per-event interpreted payload logic, and parallelism only over
//! partitioned streams ([`run_partitioned`]). The full operator vocabulary
//! (including temporal join, chop, and merge) is supported — in the paper,
//! Trill is the only baseline expressive enough for all eight applications.

#![warn(missing_docs)]

mod batch;
mod engine;
mod operators;

pub use batch::ColumnarBatch;
pub use engine::{run_partitioned, run_single, TrillEngine};
pub use operators::{
    BinaryOp, ChopOp, JoinOp, MergeOp, SelectOp, ShiftOp, UnaryOp, WhereOp, WindowOp,
};
