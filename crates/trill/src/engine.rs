//! The interpreted dataflow engine: plan → operator graph → batch pushing.
//!
//! The engine realizes the iterator/dataflow model of §3: the logical plan
//! is instantiated as physical operators connected by batch queues, source
//! events are cut into micro-batches of a configurable size (the knob of the
//! latency-bounded-throughput experiment, Fig. 9), and every batch is pushed
//! through the graph operator by operator. Parallelism is only available
//! across *partitioned streams* (paper §3): each partition gets its own
//! operator graph on its own worker thread.

use std::sync::atomic::{AtomicUsize, Ordering};

use tilt_data::{Event, Value};
use tilt_query::{LogicalPlan, NodeId, OpNode};

use crate::batch::ColumnarBatch;
use crate::operators::{BinaryOp, ChopOp, JoinOp, MergeOp, SelectOp, ShiftOp, WhereOp, WindowOp};
use crate::UnaryOp;

enum Physical {
    Source,
    Unary(Box<dyn UnaryOp>),
    Binary(Box<dyn BinaryOp>),
}

/// Where a node's output goes: `(consumer, port)` with port 0 = left/unary.
type Edge = (usize, usize);

/// An instantiated operator graph for one stream partition.
pub struct TrillEngine {
    ops: Vec<Physical>,
    consumers: Vec<Vec<Edge>>,
    output: usize,
    collected: Vec<Event<Value>>,
    events_in: usize,
}

impl TrillEngine {
    /// Instantiates the physical operators for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty.
    pub fn new(plan: &LogicalPlan, output: NodeId) -> TrillEngine {
        assert!(!plan.is_empty(), "plan must contain operators");
        let mut ops: Vec<Physical> = Vec::with_capacity(plan.len());
        let mut consumers: Vec<Vec<Edge>> = vec![Vec::new(); plan.len()];
        for (i, node) in plan.nodes().iter().enumerate() {
            let physical = match node {
                OpNode::Source { .. } => Physical::Source,
                OpNode::Select { input, f } => {
                    consumers[input.index()].push((i, 0));
                    Physical::Unary(Box::new(SelectOp::new(f.clone())))
                }
                OpNode::Where { input, pred } => {
                    consumers[input.index()].push((i, 0));
                    Physical::Unary(Box::new(WhereOp::new(pred.clone())))
                }
                OpNode::Shift { input, delta } => {
                    consumers[input.index()].push((i, 0));
                    Physical::Unary(Box::new(ShiftOp::new(*delta)))
                }
                OpNode::Chop { input, period } => {
                    consumers[input.index()].push((i, 0));
                    Physical::Unary(Box::new(ChopOp::new(*period)))
                }
                OpNode::Window { input, size, stride, agg } => {
                    consumers[input.index()].push((i, 0));
                    Physical::Unary(Box::new(WindowOp::new(*size, *stride, agg.clone())))
                }
                OpNode::Join { left, right, f } => {
                    consumers[left.index()].push((i, 0));
                    consumers[right.index()].push((i, 1));
                    Physical::Binary(Box::new(JoinOp::new(f.clone())))
                }
                OpNode::Merge { left, right } => {
                    consumers[left.index()].push((i, 0));
                    consumers[right.index()].push((i, 1));
                    Physical::Binary(Box::new(MergeOp::new()))
                }
            };
            ops.push(physical);
        }
        TrillEngine { ops, consumers, output: output.index(), collected: Vec::new(), events_in: 0 }
    }

    /// Pushes one micro-batch into source `source_idx` (index into
    /// [`LogicalPlan::sources`] order is not needed here: pass the node id).
    pub fn push_batch(&mut self, source: NodeId, events: &[Event<Value>]) {
        self.events_in += events.len();
        let batch = ColumnarBatch::from_events(events);
        self.dispatch(source.index(), batch);
    }

    /// Signals end-of-stream: flushes every stateful operator in
    /// topological order and returns the total collected output.
    pub fn finish(mut self) -> Vec<Event<Value>> {
        for i in 0..self.ops.len() {
            let flushed = match &mut self.ops[i] {
                Physical::Source => Vec::new(),
                Physical::Unary(op) => op.flush(),
                Physical::Binary(op) => op.flush(),
            };
            for batch in flushed {
                self.fan_out(i, batch);
            }
        }
        self.collected
    }

    /// Total events pushed into sources.
    pub fn events_in(&self) -> usize {
        self.events_in
    }

    fn dispatch(&mut self, node: usize, batch: ColumnarBatch) {
        // Iterative worklist to avoid deep recursion on long pipelines.
        let mut work: Vec<(usize, usize, ColumnarBatch)> =
            self.edges_from(node).into_iter().map(|(c, port)| (c, port, batch.clone())).collect();
        if node == self.output {
            self.collected.extend(batch.to_events());
        }
        while let Some((n, port, b)) = work.pop() {
            let outs = match &mut self.ops[n] {
                Physical::Source => vec![b],
                Physical::Unary(op) => op.on_batch(b),
                Physical::Binary(op) => {
                    if port == 0 {
                        op.on_left(b)
                    } else {
                        op.on_right(b)
                    }
                }
            };
            for out in outs {
                if n == self.output {
                    self.collected.extend(out.to_events());
                }
                for (c, p) in self.edges_from(n) {
                    work.push((c, p, out.clone()));
                }
            }
        }
    }

    fn fan_out(&mut self, node: usize, batch: ColumnarBatch) {
        if node == self.output {
            self.collected.extend(batch.to_events());
        }
        for (c, p) in self.edges_from(node) {
            let mut work = vec![(c, p, batch.clone())];
            while let Some((n, port, b)) = work.pop() {
                let outs = match &mut self.ops[n] {
                    Physical::Source => vec![b],
                    Physical::Unary(op) => op.on_batch(b),
                    Physical::Binary(op) => {
                        if port == 0 {
                            op.on_left(b)
                        } else {
                            op.on_right(b)
                        }
                    }
                };
                for out in outs {
                    if n == self.output {
                        self.collected.extend(out.to_events());
                    }
                    for (c2, p2) in self.edges_from(n) {
                        work.push((c2, p2, out.clone()));
                    }
                }
            }
        }
    }

    fn edges_from(&self, node: usize) -> Vec<Edge> {
        self.consumers[node].clone()
    }
}

/// Runs `plan` over a single (non-partitioned) stream in micro-batches of
/// `batch_size` events and returns the output events.
pub fn run_single(
    plan: &LogicalPlan,
    output: NodeId,
    events: &[Event<Value>],
    batch_size: usize,
) -> Vec<Event<Value>> {
    let sources = plan.sources();
    assert_eq!(sources.len(), 1, "run_single expects one source");
    let mut engine = TrillEngine::new(plan, output);
    for chunk in events.chunks(batch_size.max(1)) {
        engine.push_batch(sources[0], chunk);
    }
    engine.finish()
}

/// Runs `plan` over partitioned streams with one worker (and one operator
/// graph) per partition — Trill's only parallelization strategy. Returns the
/// per-partition outputs.
pub fn run_partitioned(
    plan: &LogicalPlan,
    output: NodeId,
    partitions: &[Vec<Event<Value>>],
    batch_size: usize,
    threads: usize,
) -> Vec<Vec<Event<Value>>> {
    let next = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Vec<Event<Value>>>> =
        partitions.iter().map(|_| std::sync::Mutex::new(Vec::new())).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.max(1).min(partitions.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= partitions.len() {
                    break;
                }
                let out = run_single(plan, output, &partitions[i], batch_size);
                *results[i].lock().expect("no poisoned partitions") = out;
            });
        }
    })
    .expect("partition worker panicked");
    results.into_iter().map(|m| m.into_inner().expect("worker joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_core::ir::{DataType, Expr};
    use tilt_data::{streams_equivalent, Time, TimeRange};
    use tilt_query::{elem, lhs, rhs, Agg};

    fn pts(points: &[(i64, f64)]) -> Vec<Event<Value>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect()
    }

    /// The trend query again — this time through the interpreted engine,
    /// differentially against the reference evaluator.
    #[test]
    fn trend_query_matches_reference() {
        let mut plan = LogicalPlan::new();
        let stock = plan.source("stock", DataType::Float);
        let avg10 = plan.window(stock, 10, 1, Agg::Mean);
        let avg20 = plan.window(stock, 20, 1, Agg::Mean);
        let diff = plan.join(avg10, avg20, lhs().sub(rhs()));
        let up = plan.where_(diff, elem().gt(Expr::c(0.0)));

        let events: Vec<Event<Value>> = (1..=80)
            .map(|t| {
                let v = 100.0 + ((t * 31) % 17) as f64 - 8.0;
                Event::point(Time::new(t), Value::Float(v))
            })
            .collect();
        let range = TimeRange::new(Time::new(0), Time::new(80));
        let expected =
            tilt_query::reference::evaluate(&plan, up, std::slice::from_ref(&events), range);
        for batch_size in [7, 100_000] {
            let got = run_single(&plan, up, &events, batch_size);
            let got: Vec<Event<Value>> = got.into_iter().filter(|e| e.end <= range.end).collect();
            assert!(
                streams_equivalent(&expected, &got),
                "batch={batch_size}: {expected:?} != {got:?}"
            );
        }
    }

    #[test]
    fn partitioned_execution_covers_all_partitions() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.select(src, elem().add(Expr::c(1.0)));
        let partitions: Vec<Vec<Event<Value>>> =
            (0..4).map(|k| pts(&[(1, k as f64), (2, k as f64 + 0.5)])).collect();
        let results = run_partitioned(&plan, out, &partitions, 10, 2);
        assert_eq!(results.len(), 4);
        for (k, res) in results.iter().enumerate() {
            assert_eq!(res.len(), 2);
            assert_eq!(res[0].payload, Value::Float(k as f64 + 1.0));
        }
    }

    #[test]
    fn window_through_engine_matches_reference() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.window(src, 6, 2, Agg::Mean);
        let events = pts(&[(1, 1.0), (2, 5.0), (4, 3.0), (9, 7.0), (11, 2.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(12));
        let expected =
            tilt_query::reference::evaluate(&plan, out, std::slice::from_ref(&events), range);
        let got: Vec<Event<Value>> =
            run_single(&plan, out, &events, 3).into_iter().filter(|e| e.end <= range.end).collect();
        assert!(streams_equivalent(&expected, &got), "{expected:?} != {got:?}");
    }
}
