//! Hand-written physical operators (the interpreted iterator model of §3).
//!
//! Each operator consumes columnar batches and produces columnar batches.
//! This is the classic interpreted-SPE execution model the paper contrasts
//! TiLT against: every operator boundary materializes a batch, every event
//! crosses a virtual call, and per-event logic is interpreted.

use tilt_core::ir::Expr;
use tilt_data::{Time, Value};
use tilt_query::{apply1, apply2, uses_time, Agg};

use crate::batch::ColumnarBatch;

/// A single-input physical operator.
pub trait UnaryOp: Send {
    /// Processes one input batch.
    fn on_batch(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch>;

    /// Emits whatever is still buffered at end-of-stream.
    fn flush(&mut self) -> Vec<ColumnarBatch> {
        Vec::new()
    }
}

/// A two-input physical operator.
pub trait BinaryOp: Send {
    /// Processes a batch from the left input.
    fn on_left(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch>;

    /// Processes a batch from the right input.
    fn on_right(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch>;

    /// Emits whatever is still buffered at end-of-stream.
    fn flush(&mut self) -> Vec<ColumnarBatch>;
}

/// Projection: rewrites payloads in place (dead rows skipped).
pub struct SelectOp {
    f: Expr,
}

impl SelectOp {
    /// Creates a Select with the given unary fragment.
    pub fn new(f: Expr) -> Self {
        SelectOp { f }
    }
}

impl UnaryOp for SelectOp {
    fn on_batch(&mut self, mut batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        if uses_time(&self.f) {
            // Clock-dependent projection: the result varies inside an
            // event's interval, so rows are split per tick.
            let mut out = ColumnarBatch::with_capacity(batch.len());
            for (s, e, payload) in batch.iter_active() {
                for t in (s + 1)..=e {
                    let v = apply1(&self.f, payload, t);
                    if !matches!(v, Value::Null) {
                        out.push(Time::new(t - 1), Time::new(t), v);
                    }
                }
            }
            return vec![out];
        }
        for i in 0..batch.len() {
            if !batch.active[i] {
                continue;
            }
            let v = apply1(&self.f, &batch.payloads[i], batch.ends[i]);
            if matches!(v, Value::Null) {
                batch.active[i] = false;
            } else {
                batch.payloads[i] = v;
            }
        }
        batch.maybe_compact();
        vec![batch]
    }
}

/// Filter: clears occupancy bits, compacting lazily.
pub struct WhereOp {
    pred: Expr,
}

impl WhereOp {
    /// Creates a Where with the given predicate fragment.
    pub fn new(pred: Expr) -> Self {
        WhereOp { pred }
    }
}

impl UnaryOp for WhereOp {
    fn on_batch(&mut self, mut batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for i in 0..batch.len() {
            if !batch.active[i] {
                continue;
            }
            if apply1(&self.pred, &batch.payloads[i], batch.ends[i]) != Value::Bool(true) {
                batch.active[i] = false;
            }
        }
        batch.maybe_compact();
        vec![batch]
    }
}

/// Shift: moves validity intervals by a constant.
pub struct ShiftOp {
    delta: i64,
}

impl ShiftOp {
    /// Creates a Shift by `delta` ticks.
    pub fn new(delta: i64) -> Self {
        ShiftOp { delta }
    }
}

impl UnaryOp for ShiftOp {
    fn on_batch(&mut self, mut batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for i in 0..batch.len() {
            batch.starts[i] += self.delta;
            batch.ends[i] += self.delta;
        }
        vec![batch]
    }
}

/// Chop: splits events into aligned `period`-length chunks.
pub struct ChopOp {
    period: i64,
}

impl ChopOp {
    /// Creates a Chop with the given period.
    pub fn new(period: i64) -> Self {
        ChopOp { period }
    }
}

impl UnaryOp for ChopOp {
    fn on_batch(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        let p = self.period;
        let mut out = ColumnarBatch::with_capacity(batch.len());
        for (s, e, payload) in batch.iter_active() {
            let mut g = Time::new(s + 1).align_up(p).ticks();
            while g <= e {
                out.push(Time::new(g - p), Time::new(g), payload.clone());
                g += p;
            }
        }
        vec![out]
    }
}

/// Buffered event used by the stateful operators.
#[derive(Clone, Debug)]
struct Ev {
    start: i64,
    end: i64,
    payload: Value,
}

fn insert_sorted(buf: &mut Vec<Ev>, ev: Ev) {
    let pos = buf.partition_point(|e| (e.start, e.end) <= (ev.start, ev.end));
    buf.insert(pos, ev);
}

/// Windowed aggregation: buffers events, emits one output per settled grid
/// tick, evicting events that can no longer overlap any future window.
///
/// The buffer is kept start-sorted; per tick only the slice of events that
/// can overlap the window is scanned (`head..upper`), so emission is
/// O(window) per tick — the "efficient hand-written operator" the paper
/// credits Trill with, still fully interpreted per event.
pub struct WindowOp {
    size: i64,
    stride: i64,
    agg: Agg,
    buf: Vec<Ev>,
    /// Index of the first event that may still overlap a future window.
    head: usize,
    /// Next grid tick to emit.
    next_g: Option<i64>,
    /// Largest event start seen (events arrive start-ordered).
    watermark: i64,
}

impl WindowOp {
    /// Creates a window aggregation operator.
    pub fn new(size: i64, stride: i64, agg: Agg) -> Self {
        WindowOp { size, stride, agg, buf: Vec::new(), head: 0, next_g: None, watermark: i64::MIN }
    }

    fn emit_upto(&mut self, limit: i64, out: &mut ColumnarBatch) {
        let Some(mut g) = self.next_g else { return };
        let mut payloads: Vec<Value> = Vec::new();
        while g <= limit {
            let lo = g - self.size;
            // Advance the head past events that ended at or before the
            // window's left edge (sorted starts + disjoint intervals imply
            // sorted ends).
            while self.head < self.buf.len() && self.buf[self.head].end <= lo {
                self.head += 1;
            }
            let upper = self.buf.partition_point(|e| e.start < g);
            payloads.clear();
            payloads.extend(
                self.buf[self.head..upper].iter().filter(|e| e.end > lo).map(|e| e.payload.clone()),
            );
            let v = self.agg.apply_naive(&payloads);
            if !matches!(v, Value::Null) {
                out.push(Time::new(g - self.stride), Time::new(g), v);
            }
            g += self.stride;
        }
        self.next_g = Some(g);
        // Reclaim the dead prefix occasionally.
        if self.head > 8192 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

impl UnaryOp for WindowOp {
    fn on_batch(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        let mut out = ColumnarBatch::default();
        for (s, e, payload) in batch.iter_active() {
            if self.next_g.is_none() {
                // First grid tick that could see this event.
                self.next_g = Some(Time::new(s + 1).align_up(self.stride).ticks());
            }
            self.watermark = self.watermark.max(s);
            insert_sorted(&mut self.buf, Ev { start: s, end: e, payload: payload.clone() });
        }
        // Ticks `g ≤ watermark` are settled: later events start ≥ watermark
        // and cannot overlap `( g-size, g ]` windows with `start < g`.
        self.emit_upto(self.watermark, &mut out);
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }

    fn flush(&mut self) -> Vec<ColumnarBatch> {
        let mut out = ColumnarBatch::default();
        let limit = self.buf.iter().map(|e| e.end + self.size).max().unwrap_or(i64::MIN);
        self.emit_upto(limit, &mut out);
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }
}

/// In-order interval join (O(n + matches) sweeps, like Trill's streaming
/// join). Head indices replace buffer compaction so pops and eviction are
/// O(1) amortized.
pub struct JoinOp {
    f: Expr,
    left: Vec<Ev>,
    right: Vec<Ev>,
    left_head: usize,
    right_head: usize,
    wl: i64,
    wr: i64,
}

impl JoinOp {
    /// Creates a join with the given binary fragment.
    pub fn new(f: Expr) -> Self {
        JoinOp {
            f,
            left: Vec::new(),
            right: Vec::new(),
            left_head: 0,
            right_head: 0,
            wl: i64::MIN,
            wr: i64::MIN,
        }
    }

    fn emit_settled(&mut self, force: bool, out: &mut ColumnarBatch) {
        // A left event is settled once the right watermark passes its end:
        // no future right event (start ≥ wr) can overlap it.
        let time_dep = uses_time(&self.f);
        while self.left_head < self.left.len() {
            let el = self.left[self.left_head].clone();
            if !force && el.end > self.wr {
                break;
            }
            self.left_head += 1;
            // Right events ending at or before this left's start can never
            // match this or any later left (left starts are sorted).
            while self.right_head < self.right.len() && self.right[self.right_head].end <= el.start
            {
                self.right_head += 1;
            }
            for er in &self.right[self.right_head..] {
                if er.start >= el.end {
                    break;
                }
                let s = el.start.max(er.start);
                let e = el.end.min(er.end);
                if s >= e {
                    continue;
                }
                if time_dep {
                    for t in (s + 1)..=e {
                        let v = apply2(&self.f, &el.payload, &er.payload, t);
                        if !matches!(v, Value::Null) {
                            out.push(Time::new(t - 1), Time::new(t), v);
                        }
                    }
                } else {
                    let v = apply2(&self.f, &el.payload, &er.payload, e);
                    if !matches!(v, Value::Null) {
                        out.push(Time::new(s), Time::new(e), v);
                    }
                }
            }
        }
        if self.left_head > 8192 {
            self.left.drain(..self.left_head);
            self.left_head = 0;
        }
        if self.right_head > 8192 {
            self.right.drain(..self.right_head);
            self.right_head = 0;
        }
    }
}

impl BinaryOp for JoinOp {
    fn on_left(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for (s, e, p) in batch.iter_active() {
            self.wl = self.wl.max(s);
            insert_sorted(&mut self.left, Ev { start: s, end: e, payload: p.clone() });
        }
        let mut out = ColumnarBatch::default();
        self.emit_settled(false, &mut out);
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }

    fn on_right(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for (s, e, p) in batch.iter_active() {
            self.wr = self.wr.max(s);
            insert_sorted(&mut self.right, Ev { start: s, end: e, payload: p.clone() });
        }
        let mut out = ColumnarBatch::default();
        self.emit_settled(false, &mut out);
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }

    fn flush(&mut self) -> Vec<ColumnarBatch> {
        let mut out = ColumnarBatch::default();
        self.emit_settled(true, &mut out);
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }
}

/// Temporal coalesce: left where present, else right (flush-time emission).
pub struct MergeOp {
    left: Vec<Ev>,
    right: Vec<Ev>,
}

impl MergeOp {
    /// Creates a merge operator.
    pub fn new() -> Self {
        MergeOp { left: Vec::new(), right: Vec::new() }
    }
}

impl Default for MergeOp {
    fn default() -> Self {
        Self::new()
    }
}

impl BinaryOp for MergeOp {
    fn on_left(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for (s, e, p) in batch.iter_active() {
            insert_sorted(&mut self.left, Ev { start: s, end: e, payload: p.clone() });
        }
        vec![]
    }

    fn on_right(&mut self, batch: ColumnarBatch) -> Vec<ColumnarBatch> {
        for (s, e, p) in batch.iter_active() {
            insert_sorted(&mut self.right, Ev { start: s, end: e, payload: p.clone() });
        }
        vec![]
    }

    fn flush(&mut self) -> Vec<ColumnarBatch> {
        // Sweep over the union of boundaries, preferring the left stream.
        // Events per side are sorted and disjoint, so per-side cursors make
        // the sweep linear.
        let mut bounds: Vec<i64> =
            self.left.iter().chain(self.right.iter()).flat_map(|e| [e.start, e.end]).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut out = ColumnarBatch::default();
        let (mut li, mut ri) = (0usize, 0usize);
        for w in bounds.windows(2) {
            let (s, e) = (w[0], w[1]);
            let probe = e; // value is constant on (s, e]
            while li < self.left.len() && self.left[li].end < probe {
                li += 1;
            }
            while ri < self.right.len() && self.right[ri].end < probe {
                ri += 1;
            }
            let covers = |ev: &Ev| ev.start < probe && probe <= ev.end;
            let v = self
                .left
                .get(li)
                .filter(|ev| covers(ev))
                .or_else(|| self.right.get(ri).filter(|ev| covers(ev)))
                .map(|ev| ev.payload.clone());
            if let Some(v) = v {
                out.push(Time::new(s), Time::new(e), v);
            }
        }
        if out.is_empty() {
            vec![]
        } else {
            vec![out]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_data::Event;
    use tilt_query::{elem, lhs, rhs};

    fn batch(points: &[(i64, f64)]) -> ColumnarBatch {
        let evs: Vec<Event<Value>> =
            points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect();
        ColumnarBatch::from_events(&evs)
    }

    #[test]
    fn select_rewrites_payloads() {
        let mut op = SelectOp::new(elem().mul(Expr::c(2.0)));
        let out = op.on_batch(batch(&[(1, 1.0), (2, 2.0)]));
        let evs: Vec<_> = out[0].to_events();
        assert_eq!(evs[0].payload, Value::Float(2.0));
        assert_eq!(evs[1].payload, Value::Float(4.0));
    }

    #[test]
    fn where_marks_dead_rows() {
        let mut op = WhereOp::new(elem().gt(Expr::c(1.5)));
        let out = op.on_batch(batch(&[(1, 1.0), (2, 2.0), (3, 3.0)]));
        assert_eq!(out[0].active_count(), 2);
    }

    #[test]
    fn window_sum_emits_settled_ticks() {
        let mut op = WindowOp::new(3, 1, Agg::Sum);
        let mut outs = op.on_batch(batch(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]));
        outs.extend(op.flush());
        let evs: Vec<Event<Value>> = outs.iter().flat_map(|b| b.to_events()).collect();
        // t=1:1, t=2:3, t=3:6, t=4:9, t=5:7, t=6:4
        let vals: Vec<f64> = evs.iter().filter_map(|e| e.payload.as_f64()).collect();
        assert_eq!(vals, vec![1.0, 3.0, 6.0, 9.0, 7.0, 4.0]);
    }

    #[test]
    fn join_intersects_in_order() {
        let mut op = JoinOp::new(lhs().add(rhs()));
        let left = ColumnarBatch::from_events(&[Event::new(
            Time::new(0),
            Time::new(6),
            Value::Float(1.0),
        )]);
        let right = ColumnarBatch::from_events(&[
            Event::new(Time::new(2), Time::new(4), Value::Float(10.0)),
            Event::new(Time::new(5), Time::new(9), Value::Float(20.0)),
        ]);
        let mut outs = op.on_left(left);
        outs.extend(op.on_right(right));
        outs.extend(op.flush());
        let evs: Vec<Event<Value>> = outs.iter().flat_map(|b| b.to_events()).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].payload, Value::Float(11.0));
        assert_eq!(evs[1].payload, Value::Float(21.0));
    }

    #[test]
    fn chop_splits_long_events() {
        let mut op = ChopOp::new(2);
        let input = ColumnarBatch::from_events(&[Event::new(
            Time::new(0),
            Time::new(6),
            Value::Float(5.0),
        )]);
        let out = op.on_batch(input);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn merge_prefers_left() {
        let mut op = MergeOp::new();
        let left = ColumnarBatch::from_events(&[Event::new(
            Time::new(2),
            Time::new(4),
            Value::Float(1.0),
        )]);
        let right = ColumnarBatch::from_events(&[Event::new(
            Time::new(0),
            Time::new(6),
            Value::Float(9.0),
        )]);
        op.on_left(left);
        op.on_right(right);
        let outs = op.flush();
        let evs: Vec<Event<Value>> = outs.iter().flat_map(|b| b.to_events()).collect();
        let vals: Vec<f64> = evs.iter().filter_map(|e| e.payload.as_f64()).collect();
        assert_eq!(vals, vec![9.0, 1.0, 9.0]);
    }
}
