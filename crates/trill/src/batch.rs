//! Columnar micro-batches, after Trill's batch layout [11].
//!
//! Trill stores events column-wise — sync times, other times, payloads —
//! plus an occupancy bit vector so filters can *mark* rows dead without
//! compacting. Rows are compacted lazily when occupancy drops below a
//! threshold. This reproduction keeps the same design because it is what
//! gives the interpreted baseline its characteristic costs: per-operator
//! batch allocation, bitmap maintenance, and copying at compaction points.

use tilt_data::{Event, Time, Value};

/// Occupancy ratio below which a batch is compacted.
const COMPACT_THRESHOLD: f64 = 0.5;

/// A columnar batch of interval events.
#[derive(Clone, Debug, Default)]
pub struct ColumnarBatch {
    /// Interval starts (Trill: "sync time").
    pub starts: Vec<i64>,
    /// Interval ends (Trill: "other time").
    pub ends: Vec<i64>,
    /// Payload column.
    pub payloads: Vec<Value>,
    /// Occupancy bitmap: `false` rows are logically deleted.
    pub active: Vec<bool>,
}

impl ColumnarBatch {
    /// An empty batch with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ColumnarBatch {
            starts: Vec::with_capacity(capacity),
            ends: Vec::with_capacity(capacity),
            payloads: Vec::with_capacity(capacity),
            active: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from events.
    pub fn from_events(events: &[Event<Value>]) -> Self {
        let mut b = ColumnarBatch::with_capacity(events.len());
        for e in events {
            b.push(e.start, e.end, e.payload.clone());
        }
        b
    }

    /// Appends a row.
    #[inline]
    pub fn push(&mut self, start: Time, end: Time, payload: Value) {
        self.starts.push(start.ticks());
        self.ends.push(end.ticks());
        self.payloads.push(payload);
        self.active.push(true);
    }

    /// Total rows (including dead ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the batch holds no rows at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Number of live rows.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Drops dead rows if occupancy fell below the compaction threshold.
    pub fn maybe_compact(&mut self) {
        if self.is_empty() {
            return;
        }
        let live = self.active_count();
        if (live as f64) / (self.len() as f64) >= COMPACT_THRESHOLD {
            return;
        }
        let mut out = ColumnarBatch::with_capacity(live);
        for i in 0..self.len() {
            if self.active[i] {
                out.starts.push(self.starts[i]);
                out.ends.push(self.ends[i]);
                out.payloads.push(std::mem::take(&mut self.payloads[i]));
                out.active.push(true);
            }
        }
        *self = out;
    }

    /// Extracts the live rows as events.
    pub fn to_events(&self) -> Vec<Event<Value>> {
        (0..self.len())
            .filter(|&i| self.active[i])
            .map(|i| {
                Event::new(
                    Time::new(self.starts[i]),
                    Time::new(self.ends[i]),
                    self.payloads[i].clone(),
                )
            })
            .collect()
    }

    /// Iterates live rows as `(start, end, payload)`.
    pub fn iter_active(&self) -> impl Iterator<Item = (i64, i64, &Value)> + '_ {
        (0..self.len())
            .filter(|&i| self.active[i])
            .map(|i| (self.starts[i], self.ends[i], &self.payloads[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_roundtrip() {
        let evs = vec![
            Event::point(Time::new(1), Value::Float(1.0)),
            Event::point(Time::new(2), Value::Float(2.0)),
        ];
        let b = ColumnarBatch::from_events(&evs);
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_events(), evs);
    }

    #[test]
    fn compaction_drops_dead_rows() {
        let mut b = ColumnarBatch::with_capacity(4);
        for i in 0..4 {
            b.push(Time::new(i), Time::new(i + 1), Value::Int(i));
        }
        b.active[0] = false;
        b.active[1] = false;
        b.active[2] = false;
        b.maybe_compact();
        assert_eq!(b.len(), 1);
        assert_eq!(b.payloads[0], Value::Int(3));
    }

    #[test]
    fn compaction_skipped_at_high_occupancy() {
        let mut b = ColumnarBatch::with_capacity(4);
        for i in 0..4 {
            b.push(Time::new(i), Time::new(i + 1), Value::Int(i));
        }
        b.active[0] = false;
        b.maybe_compact();
        assert_eq!(b.len(), 4);
        assert_eq!(b.active_count(), 3);
    }
}
