//! `spe-streambox` — a StreamBox-style pipeline-parallel SPE (baseline \[34\]).
//!
//! StreamBox parallelizes a query by running each operator as its own
//! pipeline stage and streaming record *bundles* between stages over
//! channels. Parallelism is therefore bounded by pipeline depth, stateful
//! stages serialize, and — as the paper observes in §7.1 — its temporal
//! join is O(n²): every left event is checked against every buffered right
//! event. Both properties are reproduced faithfully here because they are
//! what Fig. 7a measures (321.94× behind TiLT on Join).

#![warn(missing_docs)]

use crossbeam::channel::{bounded, Receiver, Sender};
use tilt_data::{Event, Time, Value};
use tilt_query::{apply1, apply2, Agg, LogicalPlan, NodeId, OpNode};

/// Messages flowing between pipeline stages.
enum Msg {
    /// A bundle of events from the given input port (0 = left/unary).
    Bundle(usize, Vec<Event<Value>>),
    /// End-of-stream marker (per input port).
    Eos,
}

/// Runs `plan` as a pipeline of operator stages, one thread per operator,
/// feeding `bundle_size`-event bundles. Returns the output events.
///
/// # Panics
///
/// Panics if the plan has no operators or the number of inputs does not
/// match the number of sources.
pub fn run_pipeline(
    plan: &LogicalPlan,
    output: NodeId,
    inputs: &[Vec<Event<Value>>],
    bundle_size: usize,
) -> Vec<Event<Value>> {
    let sources = plan.sources();
    assert_eq!(sources.len(), inputs.len(), "one input per source");
    let n = plan.len();

    // Channel per node; consumers list per node with ports.
    let mut senders: Vec<Option<Sender<Msg>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<Msg>(64);
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }
    let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (i, node) in plan.nodes().iter().enumerate() {
        for (port, dep) in node.inputs().iter().enumerate() {
            consumers[dep.index()].push((i, port));
        }
    }
    let (out_tx, out_rx) = bounded::<Msg>(64);

    let result = crossbeam::thread::scope(|s| {
        // Spawn one stage per non-source operator.
        for (i, node) in plan.nodes().iter().enumerate() {
            if matches!(node, OpNode::Source { .. }) {
                continue;
            }
            let rx = receivers[i].take().expect("each stage spawned once");
            let downstream: Vec<(Sender<Msg>, usize)> = consumers[i]
                .iter()
                .map(|(c, port)| (senders[*c].clone().expect("consumer channel"), *port))
                .collect();
            let out = if i == output.index() { Some(out_tx.clone()) } else { None };
            let node = node.clone();
            s.spawn(move |_| stage(node, rx, downstream, out));
        }
        // Sources push bundles directly to their consumers.
        for (k, src) in sources.iter().enumerate() {
            let downstream: Vec<(Sender<Msg>, usize)> = consumers[src.index()]
                .iter()
                .map(|(c, port)| (senders[*c].clone().expect("consumer channel"), *port))
                .collect();
            let out = if src.index() == output.index() { Some(out_tx.clone()) } else { None };
            for bundle in inputs[k].chunks(bundle_size.max(1)) {
                for (tx, port) in &downstream {
                    let _ = tx.send(Msg::Bundle(*port, bundle.to_vec()));
                }
                if let Some(tx) = &out {
                    let _ = tx.send(Msg::Bundle(0, bundle.to_vec()));
                }
            }
            for (tx, _) in &downstream {
                let _ = tx.send(Msg::Eos);
            }
            if let Some(tx) = &out {
                let _ = tx.send(Msg::Eos);
            }
        }
        // Drop our copies of the channel endpoints so stages terminate.
        drop(senders);
        drop(out_tx);

        let mut collected = Vec::new();
        while let Ok(msg) = out_rx.recv() {
            if let Msg::Bundle(_, events) = msg {
                collected.extend(events);
            }
        }
        tilt_data::sort_stream(&mut collected);
        collected
    })
    .expect("pipeline stage panicked");
    result
}

/// One pipeline stage: applies the operator to bundles as they arrive.
fn stage(
    node: OpNode,
    rx: Receiver<Msg>,
    downstream: Vec<(Sender<Msg>, usize)>,
    out: Option<Sender<Msg>>,
) {
    let emit = |events: Vec<Event<Value>>| {
        if events.is_empty() {
            return;
        }
        for (tx, port) in &downstream {
            let _ = tx.send(Msg::Bundle(*port, events.clone()));
        }
        if let Some(tx) = &out {
            let _ = tx.send(Msg::Bundle(0, events.clone()));
        }
    };
    let needed_eos = node.inputs().len().max(1);
    let mut eos = 0usize;

    // Stage-local state for stateful operators.
    let mut left_buf: Vec<Event<Value>> = Vec::new();
    let mut right_buf: Vec<Event<Value>> = Vec::new();

    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Bundle(port, events) => match &node {
                OpNode::Select { f, .. } => {
                    let mut mapped = Vec::with_capacity(events.len());
                    for e in &events {
                        if tilt_query::uses_time(f) {
                            for t in (e.start.ticks() + 1)..=e.end.ticks() {
                                let v = apply1(f, &e.payload, t);
                                if !matches!(v, Value::Null) {
                                    mapped.push(Event::new(Time::new(t - 1), Time::new(t), v));
                                }
                            }
                        } else {
                            let v = apply1(f, &e.payload, e.end.ticks());
                            if !matches!(v, Value::Null) {
                                mapped.push(Event::new(e.start, e.end, v));
                            }
                        }
                    }
                    emit(mapped);
                }
                OpNode::Where { pred, .. } => {
                    let kept = events
                        .iter()
                        .filter(|e| apply1(pred, &e.payload, e.end.ticks()) == Value::Bool(true))
                        .cloned()
                        .collect();
                    emit(kept);
                }
                OpNode::Shift { delta, .. } => {
                    let shifted = events
                        .iter()
                        .map(|e| Event::new(e.start + *delta, e.end + *delta, e.payload.clone()))
                        .collect();
                    emit(shifted);
                }
                OpNode::Chop { period, .. } => {
                    let mut chopped = Vec::new();
                    for e in &events {
                        let mut g = Time::new(e.start.ticks() + 1).align_up(*period);
                        while g <= e.end {
                            chopped.push(Event::new(g - *period, g, e.payload.clone()));
                            g += *period;
                        }
                    }
                    emit(chopped);
                }
                // Stateful operators buffer until EOS (StreamBox's stateful
                // stages serialize on their state).
                OpNode::Window { .. } | OpNode::Join { .. } | OpNode::Merge { .. } => {
                    if port == 0 {
                        left_buf.extend(events);
                    } else {
                        right_buf.extend(events);
                    }
                }
                OpNode::Source { .. } => emit(events),
            },
            Msg::Eos => {
                eos += 1;
                if eos < needed_eos {
                    continue;
                }
                // Flush stateful operators.
                match &node {
                    OpNode::Window { size, stride, agg, .. } => {
                        emit(window_flush(&mut left_buf, *size, *stride, agg));
                    }
                    OpNode::Join { f, .. } => {
                        emit(join_quadratic(&left_buf, &right_buf, f));
                    }
                    OpNode::Merge { .. } => {
                        emit(merge_flush(&left_buf, &right_buf));
                    }
                    _ => {}
                }
                for (tx, _) in &downstream {
                    let _ = tx.send(Msg::Eos);
                }
                if let Some(tx) = &out {
                    let _ = tx.send(Msg::Eos);
                }
                break;
            }
        }
    }
}

/// The O(n²) interval join the paper measured in StreamBox (§7.1).
fn join_quadratic(
    left: &[Event<Value>],
    right: &[Event<Value>],
    f: &tilt_core::ir::Expr,
) -> Vec<Event<Value>> {
    let mut out = Vec::new();
    let time_dep = tilt_query::uses_time(f);
    for el in left {
        for er in right {
            // No ordering assumption is exploited: full scan per left event.
            let s = el.start.max(er.start);
            let e = el.end.min(er.end);
            if s >= e {
                continue;
            }
            if time_dep {
                for t in (s.ticks() + 1)..=e.ticks() {
                    let v = apply2(f, &el.payload, &er.payload, t);
                    if !matches!(v, Value::Null) {
                        out.push(Event::new(Time::new(t - 1), Time::new(t), v));
                    }
                }
            } else {
                let v = apply2(f, &el.payload, &er.payload, e.ticks());
                if !matches!(v, Value::Null) {
                    out.push(Event::new(s, e, v));
                }
            }
        }
    }
    tilt_data::sort_stream(&mut out);
    out
}

fn window_flush(buf: &mut [Event<Value>], size: i64, stride: i64, agg: &Agg) -> Vec<Event<Value>> {
    tilt_data::sort_stream(buf);
    let Some(first) = buf.first() else { return Vec::new() };
    let last_end = buf.iter().map(|e| e.end).max().expect("non-empty");
    let mut out = Vec::new();
    let mut g = Time::new(first.start.ticks() + 1).align_up(stride);
    let mut head = 0usize;
    let mut payloads: Vec<Value> = Vec::new();
    while g <= last_end + size {
        // Sorted starts + disjoint intervals ⇒ sorted ends: advance the head
        // past events fully left of the window and scan only up to the first
        // event starting at/after the window end.
        while head < buf.len() && buf[head].end <= g - size {
            head += 1;
        }
        let upper = buf.partition_point(|e| e.start < g);
        payloads.clear();
        payloads.extend(
            buf[head..upper].iter().filter(|e| e.end > g - size).map(|e| e.payload.clone()),
        );
        let v = agg.apply_naive(&payloads);
        if !matches!(v, Value::Null) {
            out.push(Event::new(g - stride, g, v));
        }
        g += stride;
    }
    out
}

fn merge_flush(left: &[Event<Value>], right: &[Event<Value>]) -> Vec<Event<Value>> {
    let mut bounds: Vec<i64> =
        left.iter().chain(right.iter()).flat_map(|e| [e.start.ticks(), e.end.ticks()]).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut out = Vec::new();
    for w in bounds.windows(2) {
        let probe = Time::new(w[1]);
        let v = left
            .iter()
            .find(|e| e.is_active_at(probe))
            .or_else(|| right.iter().find(|e| e.is_active_at(probe)))
            .map(|e| e.payload.clone());
        if let Some(v) = v {
            out.push(Event::new(Time::new(w[0]), probe, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_core::ir::{DataType, Expr};
    use tilt_data::{streams_equivalent, TimeRange};
    use tilt_query::{elem, lhs, rhs};

    fn pts(points: &[(i64, f64)]) -> Vec<Event<Value>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect()
    }

    #[test]
    fn select_where_pipeline_matches_reference() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let sel = plan.select(src, elem().mul(Expr::c(2.0)));
        let out = plan.where_(sel, elem().gt(Expr::c(4.0)));
        let events = pts(&[(1, 1.0), (2, 3.0), (3, 5.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(4));
        let expected =
            tilt_query::reference::evaluate(&plan, out, std::slice::from_ref(&events), range);
        let got = run_pipeline(&plan, out, &[events], 2);
        assert!(streams_equivalent(&expected, &got), "{expected:?} != {got:?}");
    }

    #[test]
    fn join_pipeline_matches_reference() {
        let mut plan = LogicalPlan::new();
        let a = plan.source("a", DataType::Float);
        let b = plan.source("b", DataType::Float);
        let out = plan.join(a, b, lhs().add(rhs()));
        let left = vec![Event::new(Time::new(0), Time::new(6), Value::Float(1.0))];
        let right = vec![
            Event::new(Time::new(2), Time::new(4), Value::Float(10.0)),
            Event::new(Time::new(5), Time::new(9), Value::Float(20.0)),
        ];
        let range = TimeRange::new(Time::new(0), Time::new(10));
        let expected =
            tilt_query::reference::evaluate(&plan, out, &[left.clone(), right.clone()], range);
        let got = run_pipeline(&plan, out, &[left, right], 8);
        assert!(streams_equivalent(&expected, &got), "{expected:?} != {got:?}");
    }

    #[test]
    fn window_pipeline_matches_reference() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.window(src, 4, 2, Agg::Sum);
        let events = pts(&[(1, 1.0), (2, 2.0), (3, 3.0), (6, 4.0)]);
        let range = TimeRange::new(Time::new(0), Time::new(8));
        let expected =
            tilt_query::reference::evaluate(&plan, out, std::slice::from_ref(&events), range);
        let got: Vec<Event<Value>> = run_pipeline(&plan, out, &[events], 2)
            .into_iter()
            .filter(|e| e.end <= range.end)
            .collect();
        assert!(streams_equivalent(&expected, &got), "{expected:?} != {got:?}");
    }
}
