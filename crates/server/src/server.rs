//! The server half: a thread-per-connection TCP front end exposing a
//! [`StreamService`] over the wire protocol in [`crate::protocol`].
//!
//! The server owns an *attach-first* service (started empty) and a
//! catalog of prepared, compiled queries; remote clients attach catalog
//! entries by name, subscribe to their per-key output streams, push
//! event batches with credit-based backpressure, and scrape stats /
//! metrics / the control-plane journal. One accept-loop thread hands
//! each connection to its own handler thread; per-connection writes are
//! serialized behind a mutex so shard threads (fanning output out to
//! subscribers) and the handler (sending replies) never interleave
//! frames.
//!
//! # Backpressure
//!
//! Every [`Message::Ingest`] is answered with exactly one
//! [`Message::Credit`] (no shard queue was full) or [`Message::Busy`]
//! (at least one enqueue had to block until a shard caught up — the
//! batch *was* applied, but the producer should slow down; the server
//! also shrinks the replenished grant). `tilt_server_credit_stalls_total`
//! counts Busy replies.
//!
//! # Hostile clients
//!
//! A malformed frame (unknown tag, truncation, oversize header, bad
//! UTF-8, empty event interval, …) is counted in
//! `tilt_server_decode_errors_total`, answered with a best-effort
//! [`Message::Error`], and the connection is closed. Decoding is total —
//! see [`crate::protocol`] — so no byte sequence a client sends can
//! panic a shard or the handler.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use tilt_core::CompiledQuery;
use tilt_data::{Event, Time, Value};
use tilt_obs::{Counter, Gauge};
use tilt_runtime::{
    ControlEvent, KeyedEvent, QueryHandle, QuerySettings, RuntimeConfig, RuntimeStats,
    ServiceError, StreamService,
};

use crate::protocol::{
    read_message, write_message, ErrorCode, Message, RecvError, TextKind, WireError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Events a client may put in one [`Message::Ingest`] frame on the happy
/// path.
pub const INITIAL_CREDIT: u32 = 4096;

/// The reduced grant replenished by a [`Message::Busy`] reply — the
/// wire-level analogue of a congestion window shrinking.
pub const BUSY_CREDIT: u32 = 256;

/// How long a subscriber's socket may stall an output write before the
/// server declares the connection dead and drops it. Bounds how long a
/// slow consumer can block a shard thread.
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(5);

/// Knobs for the connection supervisor and subscriber-resume machinery,
/// on top of the runtime configuration the service itself is started
/// with. [`Server::start`] uses [`ServerConfig::default`] for everything
/// but the runtime; [`Server::start_with`] takes the full set.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The runtime configuration for the owned [`StreamService`].
    pub runtime: RuntimeConfig,
    /// Disconnect a peer whose socket stays silent this long between
    /// frames (`None` = wait forever). Counted in
    /// `tilt_server_idle_disconnects_total`.
    pub idle_timeout: Option<Duration>,
    /// How many *recoverable* malformed frames (frame fully read, payload
    /// failed to decode) one connection may send before it is dropped.
    /// Desynchronizing errors (oversize headers, torn frames) always
    /// close immediately. Exhaustion is counted in
    /// `tilt_server_budget_disconnects_total`.
    pub decode_error_budget: u32,
    /// Output frames retained per query for [`Message::Resume`] replay.
    /// A reconnecting subscriber further behind than this earns
    /// [`ErrorCode::ResumeGap`]. Evictions are counted in
    /// `tilt_server_replay_ring_evictions_total`.
    pub replay_ring_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            idle_timeout: None,
            decode_error_budget: 3,
            replay_ring_capacity: 1024,
        }
    }
}

/// Server-side connection/byte/credit accounting, registered in the
/// *service's* metrics registry so one scrape covers both layers.
/// Cloning shares the underlying counters (the fields are `Arc`s).
#[derive(Clone)]
struct NetStats {
    conns_open: Arc<Gauge>,
    conns_total: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    credit_stalls: Arc<Counter>,
    decode_errors: Arc<Counter>,
    resume_replays: Arc<Counter>,
    resume_gaps: Arc<Counter>,
    ring_evictions: Arc<Counter>,
    idle_disconnects: Arc<Counter>,
    budget_disconnects: Arc<Counter>,
}

impl NetStats {
    fn new(registry: &tilt_obs::Registry) -> NetStats {
        NetStats {
            conns_open: registry.gauge("tilt_server_conns_open"),
            conns_total: registry.counter("tilt_server_conns_total"),
            bytes_in: registry.counter("tilt_server_bytes_in_total"),
            bytes_out: registry.counter("tilt_server_bytes_out_total"),
            frames_in: registry.counter("tilt_server_frames_in_total"),
            frames_out: registry.counter("tilt_server_frames_out_total"),
            credit_stalls: registry.counter("tilt_server_credit_stalls_total"),
            decode_errors: registry.counter("tilt_server_decode_errors_total"),
            resume_replays: registry.counter("tilt_server_resume_replays_total"),
            resume_gaps: registry.counter("tilt_server_resume_gaps_total"),
            ring_evictions: registry.counter("tilt_server_replay_ring_evictions_total"),
            idle_disconnects: registry.counter("tilt_server_idle_disconnects_total"),
            budget_disconnects: registry.counter("tilt_server_budget_disconnects_total"),
        }
    }

    /// Re-homes the accounting into `registry` (a restored service's),
    /// carrying the current values over so the scrape stays continuous.
    fn rehome(&self, registry: &tilt_obs::Registry) -> NetStats {
        let next = NetStats::new(registry);
        next.conns_open.add(self.conns_open.get());
        next.conns_total.add(self.conns_total.get());
        next.bytes_in.add(self.bytes_in.get());
        next.bytes_out.add(self.bytes_out.get());
        next.frames_in.add(self.frames_in.get());
        next.frames_out.add(self.frames_out.get());
        next.credit_stalls.add(self.credit_stalls.get());
        next.decode_errors.add(self.decode_errors.get());
        next.resume_replays.add(self.resume_replays.get());
        next.resume_gaps.add(self.resume_gaps.get());
        next.ring_evictions.add(self.ring_evictions.get());
        next.idle_disconnects.add(self.idle_disconnects.get());
        next.budget_disconnects.add(self.budget_disconnects.get());
        next
    }
}

/// One connection's write half, shared between its handler thread and
/// the shard threads fanning subscribed output to it.
struct ConnShared {
    id: u64,
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
    /// The negotiated protocol version (0 until the handshake lands).
    /// Decides whether output fan-out uses [`Message::OutputSeq`] (v3+)
    /// or the legacy [`Message::Output`].
    version: AtomicU32,
}

impl ConnShared {
    /// Sends one frame atomically (whole frames never interleave).
    /// Returns `false` — and marks the connection dead — if the write
    /// fails or stalls past [`WRITE_STALL_LIMIT`].
    fn send(&self, msg: &Message, net: &NetStats) -> bool {
        if !self.alive.load(Ordering::Acquire) {
            return false;
        }
        let mut w = self.writer.lock().expect("conn writer lock");
        tilt_fault::fail_point!("server.conn.write", {
            self.alive.store(false, Ordering::Release);
            let _ = w.shutdown(Shutdown::Both);
            return false;
        });
        match write_message(&mut *w, msg).and_then(|n| w.flush().map(|_| n)) {
            Ok(n) => {
                net.bytes_out.add(n as u64);
                net.frames_out.inc();
                true
            }
            Err(_) => {
                self.alive.store(false, Ordering::Release);
                let _ = w.shutdown(Shutdown::Both);
                false
            }
        }
    }

    /// Whether this connection negotiated resume-capable version 3.
    fn wants_seq(&self) -> bool {
        self.version.load(Ordering::Relaxed) >= 3
    }
}

/// Per-query delivery state shared by the fan-out sink, the subscribe /
/// resume handlers, and connection teardown. One lock covers sequence
/// assignment, the replay ring, and the subscriber list, so every
/// subscriber observes the frame sequence gap-free and in order.
#[derive(Default)]
struct SubState {
    /// The sequence number the next output frame will carry.
    next_seq: u64,
    /// The most recent frames, oldest first: `(seq, key, events)`.
    ring: VecDeque<(u64, u64, Vec<Event<Value>>)>,
    /// Connections currently receiving this query's output.
    conns: Vec<Arc<ConnShared>>,
}

/// The service slot: running until the first successful
/// [`Message::Shutdown`], then a frozen snapshot so scrapes keep
/// answering.
// One instance per server, so the variant size asymmetry is harmless.
#[allow(clippy::large_enum_variant)]
enum Slot {
    Running(StreamService),
    Finished(Box<FinalState>),
    // Transient state while a shutdown drains the service.
    Draining,
}

/// What scrapes serve after the service has been drained.
struct FinalState {
    stats: RuntimeStats,
    metrics_text: String,
    journal_text: String,
}

struct Inner {
    slot: RwLock<Slot>,
    catalog: Vec<(String, Arc<CompiledQuery>)>,
    /// Wire query id (== [`QueryHandle::index`]) → handle.
    handles: Mutex<HashMap<u32, QueryHandle>>,
    /// Wire query id → that query's delivery state. An entry appears on
    /// the first subscribe, outlives every individual subscriber (the
    /// ring keeps recording so a reconnect can resume), and is removed
    /// when the query ends (Eos).
    subs: Mutex<HashMap<u32, Arc<Mutex<SubState>>>>,
    /// Behind a lock so a restore can re-home the counters into the
    /// replacement service's registry ([`NetStats::rehome`]).
    net: RwLock<NetStats>,
    running: AtomicBool,
    idle_timeout: Option<Duration>,
    decode_error_budget: u32,
    replay_ring_capacity: usize,
}

impl Inner {
    /// A shared view of the current accounting (cheap: the fields are
    /// `Arc`s).
    fn net(&self) -> NetStats {
        self.net.read().expect("net lock").clone()
    }

    /// The delivery state for `query`, created on first use.
    fn substate(&self, query: u32) -> Arc<Mutex<SubState>> {
        Arc::clone(self.subs.lock().expect("subs lock").entry(query).or_default())
    }

    /// The fan-out sink for `query`: assigns the frame its sequence
    /// number, records it in the replay ring, and sends it to every
    /// live subscriber — all under the query's delivery lock, so the
    /// sequence each connection observes is gap-free and monotone.
    /// Records even with zero subscribers, so a resume after a full
    /// disconnect still replays the missed suffix.
    fn fanout_sink(self: &Arc<Self>, query: u32) -> tilt_runtime::OutputSink {
        let inner = Arc::clone(self);
        let sub = self.substate(query);
        Arc::new(move |key, events| {
            let net = inner.net();
            let mut st = sub.lock().expect("substate lock");
            let seq = st.next_seq;
            st.next_seq += 1;
            st.ring.push_back((seq, key, events.to_vec()));
            while st.ring.len() > inner.replay_ring_capacity {
                st.ring.pop_front();
                net.ring_evictions.inc();
            }
            let mut legacy: Option<Message> = None;
            let mut seqd: Option<Message> = None;
            for conn in &st.conns {
                let msg = if conn.wants_seq() {
                    seqd.get_or_insert_with(|| Message::OutputSeq {
                        query,
                        seq,
                        key,
                        events: events.to_vec(),
                    })
                } else {
                    legacy.get_or_insert_with(|| Message::Output {
                        query,
                        key,
                        events: events.to_vec(),
                    })
                };
                conn.send(msg, &net);
            }
        })
    }

    /// Sends `Eos` to every subscriber of `query` and retires its
    /// delivery state (the stream is over; there is nothing to resume).
    fn finish_subscribers(&self, query: u32) {
        let sub = self.subs.lock().expect("subs lock").remove(&query);
        if let Some(sub) = sub {
            let st = sub.lock().expect("substate lock");
            for conn in &st.conns {
                conn.send(&Message::Eos { query }, &self.net());
            }
        }
    }

    /// Stats counters as wire fields: service health plus the server's
    /// own accounting.
    fn stats_fields(&self, stats: &RuntimeStats) -> Vec<(String, i64)> {
        let mut fields: Vec<(String, i64)> = vec![
            ("events_in".into(), stats.events_in as i64),
            ("events_out".into(), stats.events_out as i64),
            ("events_consumed".into(), stats.events_consumed as i64),
            ("late_dropped".into(), stats.late_dropped as i64),
            ("backstop_dropped".into(), stats.backstop_dropped as i64),
            ("quarantine_dropped".into(), stats.quarantine_dropped as i64),
            ("detach_dropped".into(), stats.detach_dropped as i64),
            ("conservation_balance".into(), stats.conservation_balance()),
            ("queries_live".into(), stats.queries_live as i64),
            ("keys".into(), stats.keys as i64),
            ("live_keys".into(), stats.live_keys as i64),
            ("evictions".into(), stats.evictions as i64),
            ("revivals".into(), stats.revivals as i64),
        ];
        let net = self.net();
        fields.push(("conns_open".into(), net.conns_open.get()));
        fields.push(("conns_total".into(), net.conns_total.get() as i64));
        fields.push(("bytes_in".into(), net.bytes_in.get() as i64));
        fields.push(("bytes_out".into(), net.bytes_out.get() as i64));
        fields.push(("frames_in".into(), net.frames_in.get() as i64));
        fields.push(("frames_out".into(), net.frames_out.get() as i64));
        fields.push(("credit_stalls".into(), net.credit_stalls.get() as i64));
        fields.push(("decode_errors".into(), net.decode_errors.get() as i64));
        fields.push(("resume_replays".into(), net.resume_replays.get() as i64));
        fields.push(("resume_gaps".into(), net.resume_gaps.get() as i64));
        fields.push(("ring_evictions".into(), net.ring_evictions.get() as i64));
        fields.push(("idle_disconnects".into(), net.idle_disconnects.get() as i64));
        fields.push(("budget_disconnects".into(), net.budget_disconnects.get() as i64));
        fields
    }
}

fn service_error(e: ServiceError) -> Message {
    let code = match &e {
        ServiceError::Compile(_) => ErrorCode::Conflict,
        ServiceError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        ServiceError::Detached(_) => ErrorCode::Detached,
        ServiceError::Durability(_) => ErrorCode::Internal,
    };
    Message::Error { code, message: e.to_string() }
}

/// A running TCP front end over one [`StreamService`].
///
/// ```no_run
/// use std::sync::Arc;
/// use tilt_runtime::RuntimeConfig;
/// use tilt_server::Server;
///
/// # fn catalog() -> Vec<(String, Arc<tilt_core::CompiledQuery>)> { vec![] }
/// let server = Server::start(RuntimeConfig::default(), catalog()).unwrap();
/// println!("serving on {}", server.addr());
/// // … clients connect, attach, subscribe, ingest, shut down …
/// server.stop();
/// ```
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<Arc<ConnShared>>>>,
}

impl Server {
    /// Starts an empty attach-first service and serves it on an
    /// ephemeral loopback port. `catalog` maps attachable names to
    /// prepared queries. Supervisor knobs take their defaults; use
    /// [`Server::start_with`] to set them.
    pub fn start(
        config: RuntimeConfig,
        catalog: Vec<(String, Arc<CompiledQuery>)>,
    ) -> std::io::Result<Server> {
        Server::start_with(ServerConfig { runtime: config, ..ServerConfig::default() }, catalog)
    }

    /// Like [`Server::start`], with explicit supervisor configuration.
    pub fn start_with(
        config: ServerConfig,
        catalog: Vec<(String, Arc<CompiledQuery>)>,
    ) -> std::io::Result<Server> {
        Server::bind_with("127.0.0.1:0", config, catalog)
    }

    /// Like [`Server::start`], on an explicit bind address.
    pub fn bind(
        addr: &str,
        config: RuntimeConfig,
        catalog: Vec<(String, Arc<CompiledQuery>)>,
    ) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            ServerConfig { runtime: config, ..ServerConfig::default() },
            catalog,
        )
    }

    /// Like [`Server::start_with`], on an explicit bind address.
    pub fn bind_with(
        addr: &str,
        config: ServerConfig,
        catalog: Vec<(String, Arc<CompiledQuery>)>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = StreamService::start(config.runtime);
        let net = NetStats::new(&service.registry());
        let inner = Arc::new(Inner {
            slot: RwLock::new(Slot::Running(service)),
            catalog,
            handles: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            net: RwLock::new(net),
            running: AtomicBool::new(true),
            idle_timeout: config.idle_timeout,
            decode_error_budget: config.decode_error_budget,
            replay_ring_capacity: config.replay_ring_capacity,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let conns = Arc::new(Mutex::new(Vec::<Arc<ConnShared>>::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let conn_threads = Arc::clone(&conn_threads);
            let conns = Arc::clone(&conns);
            let next_id = AtomicU64::new(0);
            std::thread::Builder::new().name("tilt-server-accept".into()).spawn(move || {
                while inner.running.load(Ordering::Acquire) {
                    let stream = match listener.accept() {
                        Ok((s, _)) => s,
                        Err(_) => continue,
                    };
                    if !inner.running.load(Ordering::Acquire) {
                        break;
                    }
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(WRITE_STALL_LIMIT));
                    if let Some(limit) = inner.idle_timeout {
                        let _ = stream.set_read_timeout(Some(limit));
                    }
                    let writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(_) => continue,
                    };
                    let conn = Arc::new(ConnShared {
                        id,
                        writer: Mutex::new(writer),
                        alive: AtomicBool::new(true),
                        version: AtomicU32::new(0),
                    });
                    conns.lock().expect("conns lock").push(Arc::clone(&conn));
                    inner.net().conns_total.inc();
                    inner.net().conns_open.add(1);
                    if let Slot::Running(svc) = &*inner.slot.read().expect("slot lock") {
                        svc.record_control(ControlEvent::Connect { conn: id });
                    }
                    let inner2 = Arc::clone(&inner);
                    let handle = std::thread::Builder::new()
                        .name(format!("tilt-server-conn-{id}"))
                        .spawn(move || handle_conn(inner2, conn, stream))
                        .expect("spawn connection handler");
                    conn_threads.lock().expect("threads lock").push(handle);
                }
            })?
        };
        Ok(Server { inner, addr, accept: Some(accept), conn_threads, conns })
    }

    /// The address the server is listening on (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every connection, joins every thread, and
    /// — if no client issued [`Message::Shutdown`] — drains the service.
    pub fn stop(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if !self.inner.running.swap(false, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self.conns.lock().expect("conns lock").drain(..) {
            conn.alive.store(false, Ordering::Release);
            let _ = conn.writer.lock().expect("conn writer lock").shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.conn_threads.lock().expect("threads lock").drain(..).collect();
        for h in threads {
            let _ = h.join();
        }
        // Drain the service if it is still running so shard threads join.
        let mut slot = self.inner.slot.write().expect("slot lock");
        if matches!(&*slot, Slot::Running(_)) {
            if let Slot::Running(svc) = std::mem::replace(&mut *slot, Slot::Draining) {
                let out = svc.finish();
                *slot = Slot::Finished(Box::new(FinalState {
                    stats: out.stats,
                    metrics_text: out.metrics.to_prometheus(),
                    journal_text: out.journal.to_text(),
                }));
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Reads one frame, applying the `server.frame.decode` failpoint (an
/// injected failure lands exactly like a malformed-but-fully-read frame,
/// which is the recoverable kind the error budget covers).
fn read_frame(r: &mut impl std::io::Read) -> Result<(Message, usize), RecvError> {
    let got = read_message(r)?;
    tilt_fault::fail_point!("server.frame.decode", {
        return Err(RecvError::Decode(WireError::BadTag { what: "message (injected)", tag: 0xFF }));
    });
    Ok(got)
}

/// Runs one connection: handshake, then request/reply until the peer
/// closes, errs, idles out, or exhausts its decode-error budget.
fn handle_conn(inner: Arc<Inner>, conn: Arc<ConnShared>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    // `Some(version)` once the handshake completed.
    let mut greeted: Option<u16> = None;
    let mut decode_errors = 0u32;
    loop {
        let msg = match read_frame(&mut reader) {
            Ok((msg, n)) => {
                inner.net().bytes_in.add(n as u64);
                inner.net().frames_in.inc();
                msg
            }
            Err(RecvError::Closed) => break,
            Err(RecvError::Io(e)) => {
                if inner.idle_timeout.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    )
                {
                    inner.net().idle_disconnects.inc();
                }
                break;
            }
            Err(RecvError::Decode(e)) => {
                inner.net().decode_errors.inc();
                conn.send(
                    &Message::Error { code: ErrorCode::Protocol, message: e.to_string() },
                    &inner.net(),
                );
                // An oversize header leaves the unread payload in the
                // stream — unrecoverable desync. Anything else was a
                // fully read frame; tolerate it within the budget.
                decode_errors += 1;
                if matches!(e, WireError::Oversize(_)) {
                    break;
                }
                if decode_errors > inner.decode_error_budget {
                    inner.net().budget_disconnects.inc();
                    break;
                }
                continue;
            }
        };
        if greeted.is_none() {
            match msg {
                Message::Hello { version }
                    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
                {
                    // Negotiate down to the client's version; v2-only
                    // requests on the connection are then refused.
                    greeted = Some(version);
                    conn.version.store(version as u32, Ordering::Relaxed);
                    conn.send(&Message::HelloAck { version, credit: INITIAL_CREDIT }, &inner.net());
                    continue;
                }
                Message::Hello { version } => {
                    conn.send(
                        &Message::Error {
                            code: ErrorCode::Version,
                            message: format!(
                                "server speaks versions \
                                 {MIN_PROTOCOL_VERSION}-{PROTOCOL_VERSION}, client sent {version}"
                            ),
                        },
                        &inner.net(),
                    );
                    break;
                }
                _ => {
                    conn.send(
                        &Message::Error {
                            code: ErrorCode::Protocol,
                            message: "first frame must be Hello".into(),
                        },
                        &inner.net(),
                    );
                    break;
                }
            }
        }
        let version = greeted.unwrap_or(PROTOCOL_VERSION);
        if !handle_request(&inner, &conn, msg, version) {
            break;
        }
    }
    // Cleanup: leave every subscription (the delivery state itself
    // stays — its ring keeps recording so the peer can resume) and
    // close the books.
    {
        let states: Vec<Arc<Mutex<SubState>>> =
            inner.subs.lock().expect("subs lock").values().cloned().collect();
        for sub in states {
            sub.lock().expect("substate lock").conns.retain(|c| c.id != conn.id);
        }
    }
    conn.alive.store(false, Ordering::Release);
    let _ = conn.writer.lock().expect("conn writer lock").shutdown(Shutdown::Both);
    inner.net().conns_open.sub(1);
    if let Slot::Running(svc) = &*inner.slot.read().expect("slot lock") {
        svc.record_control(ControlEvent::Disconnect { conn: conn.id });
    }
}

/// The refusal for durability requests on a pre-v2 connection.
fn durability_needs_v2(version: u16) -> Message {
    Message::Error {
        code: ErrorCode::Version,
        message: format!(
            "checkpoint/restore require protocol version 2, connection negotiated {version}"
        ),
    }
}

/// Replaces a *fresh* running service with one rebuilt from the snapshot
/// at `path`, resolving `names` against the catalog for the recorded
/// query roster. The server must be pristine — no attached queries, no
/// ingested events — so a restore never destroys live state; a busy
/// server answers [`ErrorCode::Conflict`].
fn restore_service(inner: &Arc<Inner>, path: &str, names: &[String]) -> Message {
    let mut roster = Vec::with_capacity(names.len());
    for name in names {
        match inner.catalog.iter().find(|(n, _)| n == name) {
            Some((_, cq)) => roster.push(Arc::clone(cq)),
            None => {
                return Message::Error {
                    code: ErrorCode::UnknownName,
                    message: format!("no catalog query named {name:?}"),
                };
            }
        }
    }
    let mut slot = inner.slot.write().expect("slot lock");
    match &*slot {
        Slot::Running(svc) => {
            let stats = svc.stats();
            let pristine =
                stats.events_in == 0 && inner.handles.lock().expect("handles lock").is_empty();
            if !pristine {
                return Message::Error {
                    code: ErrorCode::Conflict,
                    message: "restore requires a fresh service \
                              (no attached queries, no ingested events)"
                        .into(),
                };
            }
        }
        _ => {
            return Message::Error {
                code: ErrorCode::ShuttingDown,
                message: "service has shut down".into(),
            };
        }
    }
    let restored = match StreamService::restore(std::path::Path::new(path), &roster) {
        Ok(svc) => svc,
        Err(e) => return Message::Error { code: ErrorCode::Internal, message: e.to_string() },
    };
    *inner.net.write().expect("net lock") = inner.net().rehome(&restored.registry());
    let queries: Vec<(u32, i64)> = restored
        .query_handles()
        .into_iter()
        .map(|h| (h.index() as u32, h.frontier().ticks()))
        .collect();
    {
        let mut handles = inner.handles.lock().expect("handles lock");
        for h in restored.query_handles() {
            handles.insert(h.index() as u32, h);
        }
    }
    // The replaced service is pristine: drain it so its shard threads
    // join, and discard the (empty) output.
    if let Slot::Running(old) = std::mem::replace(&mut *slot, Slot::Running(restored)) {
        let _ = old.finish();
    }
    Message::Restored { queries }
}

/// Handles one post-handshake request on a connection negotiated at
/// `version`. Returns `false` to close the connection.
fn handle_request(inner: &Arc<Inner>, conn: &Arc<ConnShared>, msg: Message, version: u16) -> bool {
    match msg {
        Message::Hello { .. } => {
            conn.send(
                &Message::Error { code: ErrorCode::Protocol, message: "duplicate Hello".into() },
                &inner.net(),
            );
            false
        }
        Message::Ingest { events } => {
            let slot = inner.slot.read().expect("slot lock");
            let reply = match &*slot {
                Slot::Running(svc) => {
                    let stalled = svc.ingest_with_pressure(
                        events
                            .into_iter()
                            .map(|we| KeyedEvent::new(we.key, we.source as usize, we.event)),
                    );
                    if stalled {
                        inner.net().credit_stalls.inc();
                        Message::Busy { grant: BUSY_CREDIT }
                    } else {
                        Message::Credit { grant: INITIAL_CREDIT }
                    }
                }
                _ => Message::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service has shut down".into(),
                },
            };
            conn.send(&reply, &inner.net())
        }
        Message::Watermark { source, time } => {
            if let Slot::Running(svc) = &*inner.slot.read().expect("slot lock") {
                svc.watermark(source as usize, Time::new(time));
            }
            true
        }
        Message::Attach { name, lateness, emit_interval } => {
            let cq = inner.catalog.iter().find(|(n, _)| *n == name).map(|(_, cq)| Arc::clone(cq));
            let reply = match (cq, &*inner.slot.read().expect("slot lock")) {
                (None, _) => Message::Error {
                    code: ErrorCode::UnknownName,
                    message: format!("no catalog query named {name:?}"),
                },
                (Some(cq), Slot::Running(svc)) => {
                    let settings =
                        QuerySettings { allowed_lateness: lateness, emit_interval, sink: None };
                    match svc.attach(cq, settings) {
                        Ok(handle) => {
                            let query = handle.index() as u32;
                            inner.handles.lock().expect("handles lock").insert(query, handle);
                            Message::Attached { query, frontier: handle.frontier().ticks() }
                        }
                        Err(e) => service_error(e),
                    }
                }
                (Some(_), _) => Message::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service has shut down".into(),
                },
            };
            conn.send(&reply, &inner.net())
        }
        Message::Detach { query } => {
            let handle = inner.handles.lock().expect("handles lock").get(&query).copied();
            let reply = match (handle, &*inner.slot.read().expect("slot lock")) {
                (None, _) => Message::Error {
                    code: ErrorCode::UnknownQuery,
                    message: format!("no attached query {query}"),
                },
                (Some(handle), Slot::Running(svc)) => match svc.detach(handle) {
                    Ok(()) => {
                        inner.finish_subscribers(query);
                        Message::Ok
                    }
                    Err(e) => service_error(e),
                },
                (Some(_), _) => Message::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service has shut down".into(),
                },
            };
            conn.send(&reply, &inner.net())
        }
        Message::Subscribe { query } => {
            let handle = inner.handles.lock().expect("handles lock").get(&query).copied();
            let reply = match (handle, &*inner.slot.read().expect("slot lock")) {
                (None, _) => Message::Error {
                    code: ErrorCode::UnknownQuery,
                    message: format!("no attached query {query}"),
                },
                (Some(handle), Slot::Running(svc)) => {
                    match svc.subscribe(handle, inner.fanout_sink(query)) {
                        Ok(()) => {
                            let sub = inner.substate(query);
                            let mut st = sub.lock().expect("substate lock");
                            if !st.conns.iter().any(|c| c.id == conn.id) {
                                st.conns.push(Arc::clone(conn));
                            }
                            svc.record_control(ControlEvent::Subscribe {
                                conn: conn.id,
                                query: query as usize,
                            });
                            Message::Ok
                        }
                        Err(e) => service_error(e),
                    }
                }
                (Some(_), _) => Message::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service has shut down".into(),
                },
            };
            conn.send(&reply, &inner.net())
        }
        Message::Stats => {
            let reply = {
                let slot = inner.slot.read().expect("slot lock");
                let fields = match &*slot {
                    Slot::Running(svc) => inner.stats_fields(&svc.stats()),
                    Slot::Finished(fs) => inner.stats_fields(&fs.stats),
                    Slot::Draining => Vec::new(),
                };
                Message::StatsReply { fields }
            };
            conn.send(&reply, &inner.net())
        }
        Message::MetricsText => {
            let text = match &*inner.slot.read().expect("slot lock") {
                Slot::Running(svc) => svc.metrics_text(),
                Slot::Finished(fs) => fs.metrics_text.clone(),
                Slot::Draining => String::new(),
            };
            conn.send(&Message::Text { kind: TextKind::Metrics, text }, &inner.net())
        }
        Message::Journal => {
            let text = match &*inner.slot.read().expect("slot lock") {
                Slot::Running(svc) => svc.journal().to_text(),
                Slot::Finished(fs) => fs.journal_text.clone(),
                Slot::Draining => String::new(),
            };
            conn.send(&Message::Text { kind: TextKind::Journal, text }, &inner.net())
        }
        Message::Catalog => {
            let mut text = String::new();
            for (name, _) in &inner.catalog {
                text.push_str(name);
                text.push('\n');
            }
            conn.send(&Message::Text { kind: TextKind::Catalog, text }, &inner.net())
        }
        Message::Shutdown { end } => {
            // Take the write lock: exactly one shutdown drains; the rest
            // see Finished and reply Ok idempotently.
            let reply = {
                let mut slot = inner.slot.write().expect("slot lock");
                if matches!(&*slot, Slot::Running(_)) {
                    if let Slot::Running(svc) = std::mem::replace(&mut *slot, Slot::Draining) {
                        // finish() joins the shard threads, so every
                        // subscriber has its full output (flush tail
                        // included) before any Eos below.
                        let out = match end {
                            Some(t) => svc.finish_at(Time::new(t)),
                            None => svc.finish(),
                        };
                        *slot = Slot::Finished(Box::new(FinalState {
                            stats: out.stats,
                            metrics_text: out.metrics.to_prometheus(),
                            journal_text: out.journal.to_text(),
                        }));
                    }
                    drop(slot);
                    let queries: Vec<u32> =
                        inner.subs.lock().expect("subs lock").keys().copied().collect();
                    for query in queries {
                        inner.finish_subscribers(query);
                    }
                }
                Message::Ok
            };
            conn.send(&reply, &inner.net())
        }
        Message::Checkpoint { path } => {
            let reply = if version < 2 {
                durability_needs_v2(version)
            } else {
                match &*inner.slot.read().expect("slot lock") {
                    Slot::Running(svc) => match svc.checkpoint(std::path::Path::new(&path)) {
                        Ok(_) => Message::Ok,
                        Err(e) => {
                            Message::Error { code: ErrorCode::Internal, message: e.to_string() }
                        }
                    },
                    _ => Message::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "service has shut down".into(),
                    },
                }
            };
            conn.send(&reply, &inner.net())
        }
        Message::Restore { path, queries } => {
            let reply = if version < 2 {
                durability_needs_v2(version)
            } else {
                restore_service(inner, &path, &queries)
            };
            conn.send(&reply, &inner.net())
        }
        Message::Resume { query, next_seq } => {
            if version < 3 {
                return conn.send(
                    &Message::Error {
                        code: ErrorCode::Version,
                        message: format!(
                            "resume requires protocol version 3, connection negotiated {version}"
                        ),
                    },
                    &inner.net(),
                );
            }
            let handle = inner.handles.lock().expect("handles lock").get(&query).copied();
            match (handle, &*inner.slot.read().expect("slot lock")) {
                (None, _) => conn.send(
                    &Message::Error {
                        code: ErrorCode::UnknownQuery,
                        message: format!("no attached query {query}"),
                    },
                    &inner.net(),
                ),
                (Some(handle), Slot::Running(svc)) => {
                    // (Re-)install the fan-out sink — idempotent, and
                    // necessary when the resuming client is the query's
                    // only subscriber and the sink was never installed
                    // on this service instance.
                    match svc.subscribe(handle, inner.fanout_sink(query)) {
                        Ok(()) => {
                            let net = inner.net();
                            let sub = inner.substate(query);
                            // Everything under the delivery lock: the
                            // replayed suffix and subsequent live frames
                            // are contiguous, each seq exactly once.
                            let mut st = sub.lock().expect("substate lock");
                            let oldest = st.next_seq - st.ring.len() as u64;
                            if next_seq > st.next_seq {
                                conn.send(
                                    &Message::Error {
                                        code: ErrorCode::Protocol,
                                        message: format!(
                                            "resume seq {next_seq} is ahead of the stream \
                                             (next unassigned seq is {})",
                                            st.next_seq
                                        ),
                                    },
                                    &net,
                                )
                            } else if next_seq < oldest {
                                net.resume_gaps.inc();
                                conn.send(
                                    &Message::Error {
                                        code: ErrorCode::ResumeGap,
                                        message: format!(
                                            "replay ring retains seqs {oldest}..{}, \
                                             seq {next_seq} was evicted",
                                            st.next_seq
                                        ),
                                    },
                                    &net,
                                )
                            } else {
                                let replayed = st.next_seq - next_seq;
                                conn.send(&Message::Resumed { query, replayed }, &net);
                                for (seq, key, events) in
                                    st.ring.iter().filter(|(s, _, _)| *s >= next_seq)
                                {
                                    conn.send(
                                        &Message::OutputSeq {
                                            query,
                                            seq: *seq,
                                            key: *key,
                                            events: events.clone(),
                                        },
                                        &net,
                                    );
                                }
                                net.resume_replays.add(replayed);
                                if !st.conns.iter().any(|c| c.id == conn.id) {
                                    st.conns.push(Arc::clone(conn));
                                }
                                svc.record_control(ControlEvent::Subscribe {
                                    conn: conn.id,
                                    query: query as usize,
                                });
                                true
                            }
                        }
                        Err(e) => conn.send(&service_error(e), &inner.net()),
                    }
                }
                (Some(_), _) => conn.send(
                    &Message::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "service has shut down".into(),
                    },
                    &inner.net(),
                ),
            }
        }
        // Server-to-client tags arriving at the server are a protocol
        // violation; close on them.
        Message::HelloAck { .. }
        | Message::Credit { .. }
        | Message::Busy { .. }
        | Message::Attached { .. }
        | Message::Ok
        | Message::Error { .. }
        | Message::Output { .. }
        | Message::Eos { .. }
        | Message::StatsReply { .. }
        | Message::Text { .. }
        | Message::Restored { .. }
        | Message::OutputSeq { .. }
        | Message::Resumed { .. } => {
            conn.send(
                &Message::Error {
                    code: ErrorCode::Protocol,
                    message: "server-to-client message sent by client".into(),
                },
                &inner.net(),
            );
            false
        }
    }
}
