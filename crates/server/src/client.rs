//! The client half: a blocking library client for the wire protocol,
//! used by tests, benches, and examples (and as the reference for
//! third-party implementations).
//!
//! A [`Client`] owns one TCP connection. A background reader thread
//! splits the incoming frame stream in two: request replies go to the
//! (single) in-flight request, while output / [`Message::Eos`] frames
//! are routed to their [`Subscription`] channels — so a subscriber can
//! keep draining output while another thread of the same client is
//! blocked waiting for an ingest credit. Requests are serialized behind
//! a mutex: one outstanding request per connection, matching the
//! server's in-order replies.
//!
//! Ingest is credit-driven: the client chunks batches to the server's
//! current grant and waits for each chunk's [`Message::Credit`] /
//! [`Message::Busy`] before sending the next, so a slow service
//! backpressures the producer instead of ballooning socket buffers.
//!
//! # Self-healing
//!
//! With a [`RetryPolicy`] configured ([`Client::connect_with`]), a dead
//! socket is not the end: the client redials with jittered exponential
//! backoff, re-handshakes, and — on a version-3 connection — sends
//! [`Message::Resume`] for every live subscription, so each subscriber
//! observes every output frame exactly once across the reconnect (the
//! client tracks each query's next expected sequence number and drops
//! replayed duplicates). Requests other than ingest are retried once on
//! the fresh connection; ingest is *not* auto-retried, because a batch
//! that died mid-flight may or may not have been applied — the caller
//! sees the error and decides. If the server's replay ring has already
//! evicted part of the missed suffix, the subscription ends (its
//! collector returns) and [`Client::resume_gaps`] counts the loss.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tilt_data::{Event, Time, Value};
use tilt_runtime::KeyedEvent;

use crate::protocol::{
    read_message, write_message, ErrorCode, Message, RecvError, TextKind, WireEvent,
    PROTOCOL_VERSION,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The connection closed while a reply was pending.
    Closed,
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with [`Message::Error`].
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Jittered exponential backoff for redialing a dead connection.
/// Deterministic: the jitter is derived from `seed` and the attempt
/// number, so a seeded chaos run reproduces its exact timing decisions.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Redial attempts before giving up (at least 1).
    pub max_attempts: u32,
    /// Delay before the first attempt; doubles each attempt.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

/// SplitMix64: a tiny, high-quality mixer for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The delay before redial `attempt` (1-based): `base << (attempt-1)`
    /// capped at `cap`, then jittered into `[50%, 100%]` of itself so a
    /// fleet of reconnecting clients does not stampede in lockstep.
    fn delay(&self, attempt: u32) -> Duration {
        let shift = (attempt.saturating_sub(1)).min(16);
        let exp = self.base.saturating_mul(1u32 << shift).min(self.cap);
        let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % (nanos / 2 + 1);
        Duration::from_nanos(nanos - jitter)
    }
}

/// Connection-level knobs. [`Client::connect`] uses the defaults (no
/// retries, no timeouts — the legacy behavior); [`Client::connect_with`]
/// takes the full set.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// The protocol version to offer in the handshake. Below 3 the
    /// server sends unsequenced output and reconnects cannot resume.
    pub version: u16,
    /// `Some` enables automatic redial + re-handshake + subscriber
    /// resume when the connection dies.
    pub retry: Option<RetryPolicy>,
    /// Socket read/write timeout. A connection that stalls longer is
    /// declared dead (and, with `retry`, redialed).
    pub io_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig { version: PROTOCOL_VERSION, retry: None, io_timeout: None }
    }
}

/// A query attached over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteQuery {
    id: u32,
    frontier: Time,
}

impl RemoteQuery {
    /// The wire query id (stable for the life of the service).
    pub fn id(self) -> u32 {
        self.id
    }

    /// The join frontier the server admitted the query at: its output
    /// covers only ticks at or after this.
    pub fn frontier(self) -> Time {
        self.frontier
    }
}

/// What one ingest call experienced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events delivered.
    pub events: usize,
    /// Wire frames the batch was split into (credit-sized chunks).
    pub frames: usize,
    /// How many chunks were answered with [`Message::Busy`] — the
    /// service was backpressured while applying them.
    pub busy: usize,
}

enum SubItem {
    Output(u64, Vec<Event<Value>>),
    Eos,
}

/// A live output stream for one subscribed query.
///
/// Frames arrive in per-key time order. The stream ends (every method
/// reports exhaustion) when the server sends [`Message::Eos`] — on
/// service shutdown or query detach — or the connection drops beyond
/// recovery.
pub struct Subscription {
    rx: Receiver<SubItem>,
}

impl Subscription {
    /// Blocks for the next output frame: one key's newly finalized
    /// events. `None` when the stream has ended.
    pub fn next(&self) -> Option<(u64, Vec<Event<Value>>)> {
        match self.rx.recv() {
            Ok(SubItem::Output(key, events)) => Some((key, events)),
            Ok(SubItem::Eos) | Err(_) => None,
        }
    }

    /// Drains the stream to its end, grouping events per key in arrival
    /// order — the shape [`tilt_runtime::ServiceOutput`] uses, so remote
    /// output can be compared directly against an in-process run.
    pub fn collect_per_key(self) -> HashMap<u64, Vec<Event<Value>>> {
        let mut out: HashMap<u64, Vec<Event<Value>>> = HashMap::new();
        while let Some((key, events)) = self.next() {
            out.entry(key).or_default().extend(events);
        }
        out
    }
}

/// A counter snapshot scraped from the server.
#[derive(Clone, Debug, Default)]
pub struct RemoteStats {
    /// `(name, value)` pairs in server order.
    pub fields: Vec<(String, i64)>,
}

impl RemoteStats {
    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// One live subscription's routing entry.
struct SubEntry {
    tx: Sender<SubItem>,
    /// The next sequence number this subscriber expects — advanced on
    /// every delivered [`Message::OutputSeq`], offered in
    /// [`Message::Resume`] after a reconnect, and used to drop replayed
    /// duplicates.
    next_seq: u64,
}

/// Serializes requests: exactly one in flight per connection. `epoch`
/// counts reconnects, so a dying reader can tell whether its connection
/// has already been replaced.
struct Lane {
    writer: TcpStream,
    replies: Receiver<Message>,
    credit: u32,
    epoch: u64,
}

struct Inner {
    addr: SocketAddr,
    config: ClientConfig,
    lane: Mutex<Lane>,
    /// Per-query routing for output/Eos frames.
    subs: Mutex<HashMap<u32, SubEntry>>,
    reconnects: AtomicU64,
    resume_gaps: AtomicU64,
    /// Set by [`Client::drop`]; stops the reader from redialing.
    closed: AtomicBool,
}

/// A blocking connection to a `tilt-server`.
///
/// ```no_run
/// use tilt_data::{Event, Time, Value};
/// use tilt_runtime::KeyedEvent;
/// use tilt_server::Client;
///
/// let client = Client::connect("127.0.0.1:4815").unwrap();
/// let q = client.attach("sliding_sum", None, None).unwrap();
/// let sub = client.subscribe(q).unwrap();
/// client
///     .ingest(vec![KeyedEvent::new(7, 0, Event::point(Time::new(1), Value::Float(1.0)))])
///     .unwrap();
/// client.shutdown(None).unwrap();
/// let per_key = sub.collect_per_key();
/// assert!(per_key.contains_key(&7));
/// ```
pub struct Client {
    inner: Arc<Inner>,
}

/// The raw halves of one freshly handshaken connection.
struct RawConn {
    writer: TcpStream,
    read_half: TcpStream,
    credit: u32,
}

/// Dials and handshakes one connection under `config`.
fn open_conn(addr: SocketAddr, config: &ClientConfig) -> Result<RawConn, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    if let Some(limit) = config.io_timeout {
        let _ = stream.set_read_timeout(Some(limit));
        let _ = stream.set_write_timeout(Some(limit));
    }
    let mut writer = stream.try_clone()?;
    write_message(&mut writer, &Message::Hello { version: config.version })?;
    writer.flush()?;
    // Read the HelloAck inline, before any reader thread exists.
    let mut read_half = stream;
    let credit = match read_message(&mut read_half) {
        Ok((Message::HelloAck { version, credit }, _)) => {
            if version != config.version {
                return Err(ClientError::Protocol(format!(
                    "offered version {}, server acked {version}",
                    config.version
                )));
            }
            credit
        }
        Ok((Message::Error { code, message }, _)) => {
            return Err(ClientError::Server { code, message });
        }
        Ok((other, _)) => {
            return Err(ClientError::Protocol(format!("expected HelloAck, got {other:?}")));
        }
        Err(RecvError::Closed) => return Err(ClientError::Closed),
        Err(RecvError::Io(e)) => return Err(ClientError::Io(e)),
        Err(RecvError::Decode(e)) => return Err(ClientError::Protocol(e.to_string())),
    };
    Ok(RawConn { writer, read_half, credit })
}

impl Client {
    /// Connects and performs the version handshake, with the default
    /// [`ClientConfig`] (no retries, no timeouts).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(io::Error::other("address resolved to nothing")))?;
        Client::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] for an already resolved address.
    pub fn connect_addr(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit connection-level configuration.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> Result<Client, ClientError> {
        let conn = open_conn(addr, &config)?;
        let (reply_tx, reply_rx) = channel();
        let inner = Arc::new(Inner {
            addr,
            config,
            lane: Mutex::new(Lane {
                writer: conn.writer,
                replies: reply_rx,
                credit: conn.credit.max(1),
                epoch: 0,
            }),
            subs: Mutex::new(HashMap::new()),
            reconnects: AtomicU64::new(0),
            resume_gaps: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        spawn_reader(&inner, conn.read_half, reply_tx, 0)?;
        Ok(Client { inner })
    }

    /// How many times this client has successfully redialed and
    /// re-handshaken after losing its connection.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// How many subscriptions ended because the server's replay ring had
    /// already evicted part of the suffix a resume asked for.
    pub fn resume_gaps(&self) -> u64 {
        self.inner.resume_gaps.load(Ordering::Relaxed)
    }

    /// Test helper: severs the underlying socket, as a crashed link or
    /// middlebox would. With a [`RetryPolicy`] configured the client
    /// heals itself: the reader notices, redials, and resumes every live
    /// subscription.
    pub fn kill_connection(&self) {
        let lane = self.inner.lane.lock().expect("request lane lock");
        let _ = lane.writer.shutdown(Shutdown::Both);
    }

    /// Sends one request frame and waits for its reply. `Error` replies
    /// become [`ClientError::Server`]. If the connection died and a
    /// [`RetryPolicy`] is configured, reconnects and retries once.
    fn request(&self, msg: &Message) -> Result<Message, ClientError> {
        let mut lane = self.inner.lane.lock().expect("request lane lock");
        match Client::request_on(&mut lane, msg) {
            Err(e)
                if matches!(e, ClientError::Io(_) | ClientError::Closed)
                    && self.inner.config.retry.is_some() =>
            {
                reconnect_locked(&self.inner, &mut lane)?;
                Client::request_on(&mut lane, msg)
            }
            other => other,
        }
    }

    fn request_on(lane: &mut Lane, msg: &Message) -> Result<Message, ClientError> {
        write_message(&mut lane.writer, msg)?;
        lane.writer.flush()?;
        match lane.replies.recv() {
            Ok(Message::Error { code, message }) => Err(ClientError::Server { code, message }),
            Ok(reply) => Ok(reply),
            Err(_) => Err(ClientError::Closed),
        }
    }

    /// Attaches a catalog query by name, optionally overriding allowed
    /// lateness / emission cadence (in ticks).
    pub fn attach(
        &self,
        name: &str,
        lateness: Option<i64>,
        emit_interval: Option<i64>,
    ) -> Result<RemoteQuery, ClientError> {
        match self.request(&Message::Attach { name: name.to_owned(), lateness, emit_interval })? {
            Message::Attached { query, frontier } => {
                Ok(RemoteQuery { id: query, frontier: Time::new(frontier) })
            }
            other => Err(ClientError::Protocol(format!("expected Attached, got {other:?}"))),
        }
    }

    /// Detaches a query attached over this or any other connection.
    pub fn detach(&self, query: RemoteQuery) -> Result<(), ClientError> {
        match self.request(&Message::Detach { query: query.id })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Subscribes this connection to a query's per-key output stream.
    pub fn subscribe(&self, query: RemoteQuery) -> Result<Subscription, ClientError> {
        // Register the route first: output may start the instant the
        // server processes the request, before the reply arrives here.
        let (tx, rx) = channel();
        self.inner.subs.lock().expect("subs lock").insert(query.id, SubEntry { tx, next_seq: 0 });
        match self.request(&Message::Subscribe { query: query.id }) {
            Ok(Message::Ok) => Ok(Subscription { rx }),
            Ok(other) => {
                self.inner.subs.lock().expect("subs lock").remove(&query.id);
                Err(ClientError::Protocol(format!("expected Ok, got {other:?}")))
            }
            Err(e) => {
                self.inner.subs.lock().expect("subs lock").remove(&query.id);
                Err(e)
            }
        }
    }

    /// Delivers a batch of events, chunked to the server's credit grants
    /// and waiting for each chunk's acknowledgement — the producer-side
    /// half of the backpressure loop.
    ///
    /// Never auto-retried: a chunk that died mid-flight may or may not
    /// have been applied, and only the caller can decide whether
    /// re-sending (at-least-once) is acceptable.
    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(
        &self,
        events: I,
    ) -> Result<IngestReport, ClientError> {
        let wire: Vec<WireEvent> = events
            .into_iter()
            .map(|ke| WireEvent { key: ke.key, source: ke.source as u32, event: ke.event })
            .collect();
        let mut report = IngestReport { events: wire.len(), frames: 0, busy: 0 };
        let mut lane = self.inner.lane.lock().expect("request lane lock");
        let mut rest = wire.as_slice();
        while !rest.is_empty() {
            let take = rest.len().min(lane.credit.max(1) as usize);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            report.frames += 1;
            match Client::request_on(&mut lane, &Message::Ingest { events: chunk.to_vec() })? {
                Message::Credit { grant } => lane.credit = grant.max(1),
                Message::Busy { grant } => {
                    report.busy += 1;
                    lane.credit = grant.max(1);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Credit or Busy, got {other:?}"
                    )));
                }
            }
        }
        Ok(report)
    }

    /// Broadcasts an explicit watermark promise for one source
    /// (fire-and-forget: no reply).
    pub fn watermark(&self, source: usize, time: Time) -> Result<(), ClientError> {
        let mut lane = self.inner.lane.lock().expect("request lane lock");
        write_message(
            &mut lane.writer,
            &Message::Watermark { source: source as u32, time: time.ticks() },
        )?;
        lane.writer.flush()?;
        Ok(())
    }

    /// Scrapes the server's counter snapshot.
    pub fn stats(&self) -> Result<RemoteStats, ClientError> {
        match self.request(&Message::Stats)? {
            Message::StatsReply { fields } => Ok(RemoteStats { fields }),
            other => Err(ClientError::Protocol(format!("expected StatsReply, got {other:?}"))),
        }
    }

    fn text(&self, req: &Message, want: TextKind) -> Result<String, ClientError> {
        match self.request(req)? {
            Message::Text { kind, text } if kind == want => Ok(text),
            other => Err(ClientError::Protocol(format!("expected {want:?} text, got {other:?}"))),
        }
    }

    /// Scrapes the Prometheus metrics exposition (service + server).
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.text(&Message::MetricsText, TextKind::Metrics)
    }

    /// Scrapes the control-plane journal as text.
    pub fn journal_text(&self) -> Result<String, ClientError> {
        self.text(&Message::Journal, TextKind::Journal)
    }

    /// Lists the attachable catalog query names, one per line.
    pub fn catalog_text(&self) -> Result<String, ClientError> {
        self.text(&Message::Catalog, TextKind::Catalog)
    }

    /// Checkpoints the service into one snapshot file at `path` on the
    /// **server's** filesystem (the snapshot bytes never cross the
    /// wire). Requires protocol version 2 on both ends.
    pub fn checkpoint(&self, path: &str) -> Result<(), ClientError> {
        match self.request(&Message::Checkpoint { path: path.to_owned() })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Rebuilds the service from a snapshot at `path` on the server's
    /// filesystem. `queries` names the catalog entry for every recorded
    /// query slot, in registration order. Only a fresh service (no
    /// attached queries, no ingested events) can be replaced. Returns
    /// the live restored queries, ready to [`Client::subscribe`].
    pub fn restore(&self, path: &str, queries: &[&str]) -> Result<Vec<RemoteQuery>, ClientError> {
        let msg = Message::Restore {
            path: path.to_owned(),
            queries: queries.iter().map(|&n| n.to_owned()).collect(),
        };
        match self.request(&msg)? {
            Message::Restored { queries } => Ok(queries
                .into_iter()
                .map(|(id, frontier)| RemoteQuery { id, frontier: Time::new(frontier) })
                .collect()),
            other => Err(ClientError::Protocol(format!("expected Restored, got {other:?}"))),
        }
    }

    /// Drains and shuts the service down, flushing every key's sessions
    /// through `end` when given (matching
    /// [`tilt_runtime::StreamService::finish_at`]). Subscriptions end
    /// after receiving their flush tails. Idempotent across clients.
    pub fn shutdown(&self, end: Option<Time>) -> Result<(), ClientError> {
        match self.request(&Message::Shutdown { end: end.map(|t| t.ticks()) })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
        if let Ok(lane) = self.inner.lane.lock() {
            let _ = lane.writer.shutdown(Shutdown::Both);
        }
    }
}

/// Spawns the reader thread for one connection epoch.
fn spawn_reader(
    inner: &Arc<Inner>,
    read_half: TcpStream,
    replies: Sender<Message>,
    epoch: u64,
) -> Result<(), ClientError> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("tilt-client-reader-{epoch}"))
        .spawn(move || reader_loop(read_half, inner, replies, epoch))
        .map_err(ClientError::Io)?;
    Ok(())
}

/// Redials, re-handshakes, and resumes every live subscription, under
/// the already-held lane lock (requests block until the lane is whole
/// again). Jittered exponential backoff between attempts.
fn reconnect_locked(inner: &Arc<Inner>, lane: &mut Lane) -> Result<(), ClientError> {
    let Some(policy) = inner.config.retry else {
        return Err(ClientError::Closed);
    };
    if inner.closed.load(Ordering::Acquire) {
        return Err(ClientError::Closed);
    }
    let mut last = ClientError::Closed;
    for attempt in 1..=policy.max_attempts.max(1) {
        std::thread::sleep(policy.delay(attempt));
        let conn = match open_conn(inner.addr, &inner.config) {
            Ok(c) => c,
            Err(e) => {
                last = e;
                continue;
            }
        };
        let (reply_tx, reply_rx) = channel();
        lane.epoch += 1;
        lane.writer = conn.writer;
        lane.replies = reply_rx;
        lane.credit = conn.credit.max(1);
        spawn_reader(inner, conn.read_half, reply_tx, lane.epoch)?;
        inner.reconnects.fetch_add(1, Ordering::Relaxed);
        resume_subscriptions(inner, lane);
        return Ok(());
    }
    Err(last)
}

/// Re-joins every live subscription on a fresh connection. Version-3
/// connections resume exactly where they left off; on older versions
/// (no [`Message::Resume`]) the subscriptions cannot be made whole, so
/// they end instead of silently gapping.
fn resume_subscriptions(inner: &Arc<Inner>, lane: &mut Lane) {
    let live: Vec<(u32, u64)> = inner
        .subs
        .lock()
        .expect("subs lock")
        .iter()
        .map(|(query, entry)| (*query, entry.next_seq))
        .collect();
    for (query, next_seq) in live {
        let end_sub = |gap: bool| {
            if gap {
                inner.resume_gaps.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(entry) = inner.subs.lock().expect("subs lock").remove(&query) {
                let _ = entry.tx.send(SubItem::Eos);
            }
        };
        if inner.config.version < 3 {
            end_sub(false);
            continue;
        }
        match Client::request_on(lane, &Message::Resume { query, next_seq }) {
            // Replayed frames follow on the reader thread, routed and
            // de-duplicated like any live frame.
            Ok(Message::Resumed { .. }) => {}
            Err(ClientError::Server { code: ErrorCode::ResumeGap, .. }) => end_sub(true),
            // Unknown query, shutdown, transport death, …: the stream
            // cannot continue.
            _ => end_sub(false),
        }
    }
}

/// Routes incoming frames: output/Eos to their subscription channels,
/// everything else to the in-flight request. When the connection dies,
/// attempts the self-heal path (redial + resume) if configured and not
/// already handled by a concurrent request.
fn reader_loop(stream: TcpStream, inner: Arc<Inner>, replies: Sender<Message>, epoch: u64) {
    let mut stream = std::io::BufReader::new(stream);
    loop {
        match read_message(&mut stream) {
            Ok((Message::Output { query, key, events }, _)) => {
                let subs = inner.subs.lock().expect("subs lock");
                if let Some(entry) = subs.get(&query) {
                    let _ = entry.tx.send(SubItem::Output(key, events));
                }
            }
            Ok((Message::OutputSeq { query, seq, key, events }, _)) => {
                let mut subs = inner.subs.lock().expect("subs lock");
                if let Some(entry) = subs.get_mut(&query) {
                    // Drop already-seen frames (replay overlap): each
                    // seq is delivered at most once.
                    if seq >= entry.next_seq {
                        entry.next_seq = seq + 1;
                        let _ = entry.tx.send(SubItem::Output(key, events));
                    }
                }
            }
            Ok((Message::Eos { query }, _)) => {
                if let Some(entry) = inner.subs.lock().expect("subs lock").remove(&query) {
                    let _ = entry.tx.send(SubItem::Eos);
                }
            }
            Ok((reply, _)) => {
                if replies.send(reply).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Unblock any request waiting on this connection's replies *before*
    // taking the lane lock (the waiter holds it).
    drop(replies);
    // Self-heal: redial unless the client is closing, retries are off,
    // or a concurrent request already replaced the connection.
    if inner.config.retry.is_some() && !inner.closed.load(Ordering::Acquire) {
        let mut lane = inner.lane.lock().expect("request lane lock");
        if lane.epoch != epoch {
            return; // already healed by the request path
        }
        if reconnect_locked(&inner, &mut lane).is_ok() {
            return;
        }
    }
    // No recovery: end every live subscription so collectors return.
    for (_, entry) in inner.subs.lock().expect("subs lock").drain() {
        let _ = entry.tx.send(SubItem::Eos);
    }
}
