//! The client half: a blocking library client for the wire protocol,
//! used by tests, benches, and examples (and as the reference for
//! third-party implementations).
//!
//! A [`Client`] owns one TCP connection. A background reader thread
//! splits the incoming frame stream in two: request replies go to the
//! (single) in-flight request, while [`Message::Output`] /
//! [`Message::Eos`] frames are routed to their [`Subscription`]
//! channels — so a subscriber can keep draining output while another
//! thread of the same client is blocked waiting for an ingest credit.
//! Requests are serialized behind a mutex: one outstanding request per
//! connection, matching the server's in-order replies.
//!
//! Ingest is credit-driven: the client chunks batches to the server's
//! current grant and waits for each chunk's [`Message::Credit`] /
//! [`Message::Busy`] before sending the next, so a slow service
//! backpressures the producer instead of ballooning socket buffers.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tilt_data::{Event, Time, Value};
use tilt_runtime::KeyedEvent;

use crate::protocol::{
    read_message, write_message, ErrorCode, Message, RecvError, TextKind, WireEvent,
    PROTOCOL_VERSION,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The connection closed while a reply was pending.
    Closed,
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with [`Message::Error`].
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query attached over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteQuery {
    id: u32,
    frontier: Time,
}

impl RemoteQuery {
    /// The wire query id (stable for the life of the service).
    pub fn id(self) -> u32 {
        self.id
    }

    /// The join frontier the server admitted the query at: its output
    /// covers only ticks at or after this.
    pub fn frontier(self) -> Time {
        self.frontier
    }
}

/// What one ingest call experienced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events delivered.
    pub events: usize,
    /// Wire frames the batch was split into (credit-sized chunks).
    pub frames: usize,
    /// How many chunks were answered with [`Message::Busy`] — the
    /// service was backpressured while applying them.
    pub busy: usize,
}

enum SubItem {
    Output(u64, Vec<Event<Value>>),
    Eos,
}

/// A live output stream for one subscribed query.
///
/// Frames arrive in per-key time order. The stream ends (every method
/// reports exhaustion) when the server sends [`Message::Eos`] — on
/// service shutdown or query detach — or the connection drops.
pub struct Subscription {
    rx: Receiver<SubItem>,
}

impl Subscription {
    /// Blocks for the next output frame: one key's newly finalized
    /// events. `None` when the stream has ended.
    pub fn next(&self) -> Option<(u64, Vec<Event<Value>>)> {
        match self.rx.recv() {
            Ok(SubItem::Output(key, events)) => Some((key, events)),
            Ok(SubItem::Eos) | Err(_) => None,
        }
    }

    /// Drains the stream to its end, grouping events per key in arrival
    /// order — the shape [`tilt_runtime::ServiceOutput`] uses, so remote
    /// output can be compared directly against an in-process run.
    pub fn collect_per_key(self) -> HashMap<u64, Vec<Event<Value>>> {
        let mut out: HashMap<u64, Vec<Event<Value>>> = HashMap::new();
        while let Some((key, events)) = self.next() {
            out.entry(key).or_default().extend(events);
        }
        out
    }
}

/// A counter snapshot scraped from the server.
#[derive(Clone, Debug, Default)]
pub struct RemoteStats {
    /// `(name, value)` pairs in server order.
    pub fields: Vec<(String, i64)>,
}

impl RemoteStats {
    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

struct Shared {
    /// Per-query routing for Output/Eos frames.
    subs: Mutex<HashMap<u32, Sender<SubItem>>>,
}

/// Serializes requests: exactly one in flight per connection.
struct ReqLane {
    writer: TcpStream,
    replies: Receiver<Message>,
    credit: u32,
}

/// A blocking connection to a `tilt-server`.
///
/// ```no_run
/// use tilt_data::{Event, Time, Value};
/// use tilt_runtime::KeyedEvent;
/// use tilt_server::Client;
///
/// let client = Client::connect("127.0.0.1:4815").unwrap();
/// let q = client.attach("sliding_sum", None, None).unwrap();
/// let sub = client.subscribe(q).unwrap();
/// client
///     .ingest(vec![KeyedEvent::new(7, 0, Event::point(Time::new(1), Value::Float(1.0)))])
///     .unwrap();
/// client.shutdown(None).unwrap();
/// let per_key = sub.collect_per_key();
/// assert!(per_key.contains_key(&7));
/// ```
pub struct Client {
    lane: Mutex<ReqLane>,
    shared: Arc<Shared>,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::handshake(stream)
    }

    /// [`Client::connect`] for an already resolved address.
    pub fn connect_addr(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::handshake(stream)
    }

    fn handshake(stream: TcpStream) -> Result<Client, ClientError> {
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone()?;
        write_message(&mut writer, &Message::Hello { version: PROTOCOL_VERSION })?;
        writer.flush()?;
        // Read the HelloAck inline, before the reader thread exists.
        let mut read_half = stream;
        let credit = match read_message(&mut read_half) {
            Ok((Message::HelloAck { version, credit }, _)) => {
                if version != PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server acked unsupported version {version}"
                    )));
                }
                credit
            }
            Ok((Message::Error { code, message }, _)) => {
                return Err(ClientError::Server { code, message });
            }
            Ok((other, _)) => {
                return Err(ClientError::Protocol(format!("expected HelloAck, got {other:?}")));
            }
            Err(RecvError::Closed) => return Err(ClientError::Closed),
            Err(RecvError::Io(e)) => return Err(ClientError::Io(e)),
            Err(RecvError::Decode(e)) => return Err(ClientError::Protocol(e.to_string())),
        };
        let shared = Arc::new(Shared { subs: Mutex::new(HashMap::new()) });
        let (reply_tx, reply_rx) = channel();
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tilt-client-reader".into())
                .spawn(move || reader_loop(read_half, shared, reply_tx))
                .map_err(ClientError::Io)?
        };
        Ok(Client {
            lane: Mutex::new(ReqLane { writer, replies: reply_rx, credit: credit.max(1) }),
            shared,
            reader: Some(reader),
        })
    }

    /// Sends one request frame and waits for its reply. `Error` replies
    /// become [`ClientError::Server`].
    fn request(&self, msg: &Message) -> Result<Message, ClientError> {
        let mut lane = self.lane.lock().expect("request lane lock");
        Client::request_on(&mut lane, msg)
    }

    fn request_on(lane: &mut ReqLane, msg: &Message) -> Result<Message, ClientError> {
        write_message(&mut lane.writer, msg)?;
        lane.writer.flush()?;
        match lane.replies.recv() {
            Ok(Message::Error { code, message }) => Err(ClientError::Server { code, message }),
            Ok(reply) => Ok(reply),
            Err(_) => Err(ClientError::Closed),
        }
    }

    /// Attaches a catalog query by name, optionally overriding allowed
    /// lateness / emission cadence (in ticks).
    pub fn attach(
        &self,
        name: &str,
        lateness: Option<i64>,
        emit_interval: Option<i64>,
    ) -> Result<RemoteQuery, ClientError> {
        match self.request(&Message::Attach { name: name.to_owned(), lateness, emit_interval })? {
            Message::Attached { query, frontier } => {
                Ok(RemoteQuery { id: query, frontier: Time::new(frontier) })
            }
            other => Err(ClientError::Protocol(format!("expected Attached, got {other:?}"))),
        }
    }

    /// Detaches a query attached over this or any other connection.
    pub fn detach(&self, query: RemoteQuery) -> Result<(), ClientError> {
        match self.request(&Message::Detach { query: query.id })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Subscribes this connection to a query's per-key output stream.
    pub fn subscribe(&self, query: RemoteQuery) -> Result<Subscription, ClientError> {
        // Register the route first: output may start the instant the
        // server processes the request, before the reply arrives here.
        let (tx, rx) = channel();
        self.shared.subs.lock().expect("subs lock").insert(query.id, tx);
        match self.request(&Message::Subscribe { query: query.id }) {
            Ok(Message::Ok) => Ok(Subscription { rx }),
            Ok(other) => {
                self.shared.subs.lock().expect("subs lock").remove(&query.id);
                Err(ClientError::Protocol(format!("expected Ok, got {other:?}")))
            }
            Err(e) => {
                self.shared.subs.lock().expect("subs lock").remove(&query.id);
                Err(e)
            }
        }
    }

    /// Delivers a batch of events, chunked to the server's credit grants
    /// and waiting for each chunk's acknowledgement — the producer-side
    /// half of the backpressure loop.
    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(
        &self,
        events: I,
    ) -> Result<IngestReport, ClientError> {
        let wire: Vec<WireEvent> = events
            .into_iter()
            .map(|ke| WireEvent { key: ke.key, source: ke.source as u32, event: ke.event })
            .collect();
        let mut report = IngestReport { events: wire.len(), frames: 0, busy: 0 };
        let mut lane = self.lane.lock().expect("request lane lock");
        let mut rest = wire.as_slice();
        while !rest.is_empty() {
            let take = rest.len().min(lane.credit.max(1) as usize);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            report.frames += 1;
            match Client::request_on(&mut lane, &Message::Ingest { events: chunk.to_vec() })? {
                Message::Credit { grant } => lane.credit = grant.max(1),
                Message::Busy { grant } => {
                    report.busy += 1;
                    lane.credit = grant.max(1);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Credit or Busy, got {other:?}"
                    )));
                }
            }
        }
        Ok(report)
    }

    /// Broadcasts an explicit watermark promise for one source
    /// (fire-and-forget: no reply).
    pub fn watermark(&self, source: usize, time: Time) -> Result<(), ClientError> {
        let mut lane = self.lane.lock().expect("request lane lock");
        write_message(
            &mut lane.writer,
            &Message::Watermark { source: source as u32, time: time.ticks() },
        )?;
        lane.writer.flush()?;
        Ok(())
    }

    /// Scrapes the server's counter snapshot.
    pub fn stats(&self) -> Result<RemoteStats, ClientError> {
        match self.request(&Message::Stats)? {
            Message::StatsReply { fields } => Ok(RemoteStats { fields }),
            other => Err(ClientError::Protocol(format!("expected StatsReply, got {other:?}"))),
        }
    }

    fn text(&self, req: &Message, want: TextKind) -> Result<String, ClientError> {
        match self.request(req)? {
            Message::Text { kind, text } if kind == want => Ok(text),
            other => Err(ClientError::Protocol(format!("expected {want:?} text, got {other:?}"))),
        }
    }

    /// Scrapes the Prometheus metrics exposition (service + server).
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.text(&Message::MetricsText, TextKind::Metrics)
    }

    /// Scrapes the control-plane journal as text.
    pub fn journal_text(&self) -> Result<String, ClientError> {
        self.text(&Message::Journal, TextKind::Journal)
    }

    /// Lists the attachable catalog query names, one per line.
    pub fn catalog_text(&self) -> Result<String, ClientError> {
        self.text(&Message::Catalog, TextKind::Catalog)
    }

    /// Checkpoints the service into one snapshot file at `path` on the
    /// **server's** filesystem (the snapshot bytes never cross the
    /// wire). Requires protocol version 2 on both ends.
    pub fn checkpoint(&self, path: &str) -> Result<(), ClientError> {
        match self.request(&Message::Checkpoint { path: path.to_owned() })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Rebuilds the service from a snapshot at `path` on the server's
    /// filesystem. `queries` names the catalog entry for every recorded
    /// query slot, in registration order. Only a fresh service (no
    /// attached queries, no ingested events) can be replaced. Returns
    /// the live restored queries, ready to [`Client::subscribe`].
    pub fn restore(&self, path: &str, queries: &[&str]) -> Result<Vec<RemoteQuery>, ClientError> {
        let msg = Message::Restore {
            path: path.to_owned(),
            queries: queries.iter().map(|&n| n.to_owned()).collect(),
        };
        match self.request(&msg)? {
            Message::Restored { queries } => Ok(queries
                .into_iter()
                .map(|(id, frontier)| RemoteQuery { id, frontier: Time::new(frontier) })
                .collect()),
            other => Err(ClientError::Protocol(format!("expected Restored, got {other:?}"))),
        }
    }

    /// Drains and shuts the service down, flushing every key's sessions
    /// through `end` when given (matching
    /// [`tilt_runtime::StreamService::finish_at`]). Subscriptions end
    /// after receiving their flush tails. Idempotent across clients.
    pub fn shutdown(&self, end: Option<Time>) -> Result<(), ClientError> {
        match self.request(&Message::Shutdown { end: end.map(|t| t.ticks()) })? {
            Message::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Ok(lane) = self.lane.lock() {
            let _ = lane.writer.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Routes incoming frames: Output/Eos to their subscription channels,
/// everything else to the in-flight request.
fn reader_loop(stream: TcpStream, shared: Arc<Shared>, replies: Sender<Message>) {
    let mut stream = std::io::BufReader::new(stream);
    loop {
        match read_message(&mut stream) {
            Ok((Message::Output { query, key, events }, _)) => {
                let tx = shared.subs.lock().expect("subs lock").get(&query).cloned();
                if let Some(tx) = tx {
                    let _ = tx.send(SubItem::Output(key, events));
                }
            }
            Ok((Message::Eos { query }, _)) => {
                if let Some(tx) = shared.subs.lock().expect("subs lock").remove(&query) {
                    let _ = tx.send(SubItem::Eos);
                }
            }
            Ok((reply, _)) => {
                if replies.send(reply).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Connection gone: end every live subscription so collectors return.
    shared.subs.lock().expect("subs lock").clear();
}
