//! The TiLT wire protocol: a hand-rolled, dependency-free codec for the
//! length-prefixed binary frames `tilt-server` and `tilt-client` exchange.
//!
//! # Frame layout
//!
//! Every message travels in one frame:
//!
//! ```text
//! ┌──────────────┬─────────────────────────────┐
//! │ len: u32 LE  │ payload: len bytes          │
//! └──────────────┴─────────────────────────────┘
//! payload = [ tag: u8 ][ fixed-width fields … ]
//! ```
//!
//! `len` counts the payload only (not the header) and is capped at
//! [`MAX_FRAME_LEN`]; a header above the cap is a protocol violation and
//! the connection is closed. All integers are fixed-width little-endian —
//! no varints, so every field has a statically known size and truncation
//! is detected exactly. Strings are `u32` length + UTF-8 bytes;
//! vectors are `u32` count + elements; `Option<i64>` is a `u8` presence
//! flag + value.
//!
//! # Versioning
//!
//! The first frame on a connection must be [`Message::Hello`] carrying
//! the version the client speaks. The server accepts any version in
//! `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` and answers
//! [`Message::HelloAck`] echoing the *negotiated* version (the client's,
//! capped at the server's) — so a version-1 client keeps working against
//! a version-2 server, it just cannot use the durability messages
//! ([`Message::Checkpoint`] / [`Message::Restore`], added in version 2;
//! sending them on a version-1 connection earns [`ErrorCode::Version`]).
//! An unsupported version is refused with [`ErrorCode::Version`] and the
//! connection closes. Unknown message tags and malformed bodies are
//! [`WireError`]s, never panics — a hostile peer can at worst get its
//! own connection closed.
//!
//! # Safety against hostile input
//!
//! Decoding is total: every read is bounds-checked, collection counts are
//! validated against the bytes actually present before allocation, string
//! bytes must be UTF-8, event intervals must be non-empty (`end > start`),
//! tuple values are depth-limited ([`MAX_VALUE_DEPTH`]), and a payload
//! with trailing bytes is rejected. The codec allocates at most
//! proportionally to the (capped) frame it was handed.

use std::io::{self, Read, Write};
use std::sync::Arc;

use tilt_data::{Event, Time, Value};

/// The newest protocol version this build speaks. Version 2 added the
/// durability control plane ([`Message::Checkpoint`] /
/// [`Message::Restore`] / [`Message::Restored`]). Version 3 added
/// subscriber resume: sequence-numbered output frames
/// ([`Message::OutputSeq`]), the [`Message::Resume`] request, and its
/// [`Message::Resumed`] reply.
pub const PROTOCOL_VERSION: u16 = 3;

/// The oldest client version the server still accepts. A version-1
/// connection speaks the full pre-durability surface unchanged.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload length. A `len` header above this is
/// rejected without allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Maximum nesting depth of [`Value::Tuple`] payloads — bounds decode
/// recursion so a crafted frame cannot overflow the stack.
pub const MAX_VALUE_DEPTH: usize = 16;

/// Machine-readable error category carried by [`Message::Error`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The peer speaks an unsupported protocol version.
    Version,
    /// A request referenced a query id this service does not serve.
    UnknownQuery,
    /// An attach named a catalog entry the server does not host.
    UnknownName,
    /// The referenced query was already detached.
    Detached,
    /// The message was valid but illegal in this connection state (e.g.
    /// a second `Hello`, or a server-only message sent by a client).
    Protocol,
    /// The service has been shut down; no further ingest or control ops.
    ShuttingDown,
    /// The query could not be admitted (e.g. source-type conflict).
    Conflict,
    /// Anything else.
    Internal,
    /// A [`Message::Resume`] asked for sequence numbers the server's
    /// bounded replay ring has already evicted — the subscriber fell too
    /// far behind to resume losslessly and must re-subscribe, accepting
    /// the gap.
    ResumeGap,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Version => 1,
            ErrorCode::UnknownQuery => 2,
            ErrorCode::UnknownName => 3,
            ErrorCode::Detached => 4,
            ErrorCode::Protocol => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Conflict => 7,
            ErrorCode::Internal => 8,
            ErrorCode::ResumeGap => 9,
        }
    }

    fn from_u8(x: u8) -> Option<ErrorCode> {
        Some(match x {
            1 => ErrorCode::Version,
            2 => ErrorCode::UnknownQuery,
            3 => ErrorCode::UnknownName,
            4 => ErrorCode::Detached,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Conflict,
            8 => ErrorCode::Internal,
            9 => ErrorCode::ResumeGap,
            _ => return None,
        })
    }
}

/// One keyed event as it travels in an [`Message::Ingest`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEvent {
    /// The stream key.
    pub key: u64,
    /// The source position the event feeds.
    pub source: u32,
    /// The event: payload valid on `(start, end]`; decode rejects empty
    /// intervals so [`Event::new`]'s invariant can never panic server-side.
    pub event: Event<Value>,
}

/// Which text document a [`Message::Text`] reply carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TextKind {
    /// Prometheus exposition from the service metrics registry.
    Metrics,
    /// The control-plane journal, one line per entry.
    Journal,
    /// The catalog of attachable query names, one per line.
    Catalog,
}

impl TextKind {
    fn to_u8(self) -> u8 {
        match self {
            TextKind::Metrics => 1,
            TextKind::Journal => 2,
            TextKind::Catalog => 3,
        }
    }

    fn from_u8(x: u8) -> Option<TextKind> {
        Some(match x {
            1 => TextKind::Metrics,
            2 => TextKind::Journal,
            3 => TextKind::Catalog,
            _ => return None,
        })
    }
}

/// Every message either side can put on the wire, client-originated first.
///
/// One enum covers both directions so the codec round-trips uniformly (the
/// property tests exercise arbitrary messages); the connection handlers
/// enforce directionality ([`ErrorCode::Protocol`] for a server-only tag
/// arriving at the server).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // ── client → server ────────────────────────────────────────────────
    /// Mandatory first frame: version negotiation.
    Hello {
        /// The version the client speaks.
        version: u16,
    },
    /// A batch of keyed events for the service. The server answers every
    /// ingest with exactly one [`Message::Credit`] or [`Message::Busy`].
    Ingest {
        /// The events, in arrival order.
        events: Vec<WireEvent>,
    },
    /// An explicit watermark promise for one source (fire-and-forget).
    Watermark {
        /// The source position.
        source: u32,
        /// No further events at or before this tick.
        time: i64,
    },
    /// Attach a catalog query to the running service. Answered with
    /// [`Message::Attached`] or [`Message::Error`].
    Attach {
        /// Name of the prepared query in the server's catalog.
        name: String,
        /// Allowed lateness override in ticks (`None` inherits the
        /// service default).
        lateness: Option<i64>,
        /// Emission-cadence override in ticks (`None` inherits).
        emit_interval: Option<i64>,
    },
    /// Detach a previously attached query. Answered with [`Message::Ok`]
    /// or [`Message::Error`].
    Detach {
        /// The query id from [`Message::Attached`].
        query: u32,
    },
    /// Stream the query's per-key finalized output to *this* connection
    /// as [`Message::Output`] frames. Answered with [`Message::Ok`] or
    /// [`Message::Error`]; several connections may subscribe to one query.
    Subscribe {
        /// The query id from [`Message::Attached`].
        query: u32,
    },
    /// Request a counter snapshot. Answered with [`Message::StatsReply`].
    Stats,
    /// Request Prometheus text exposition. Answered with
    /// [`Message::Text`] of kind [`TextKind::Metrics`].
    MetricsText,
    /// Request the control-plane journal. Answered with
    /// [`Message::Text`] of kind [`TextKind::Journal`].
    Journal,
    /// Request the attachable query names. Answered with
    /// [`Message::Text`] of kind [`TextKind::Catalog`].
    Catalog,
    /// Drain and shut the service down, flushing through `end` when
    /// given. Subscribers receive their tails then [`Message::Eos`];
    /// the requester gets [`Message::Ok`] once the drain completes.
    Shutdown {
        /// Explicit flush horizon (ticks); `None` flushes through each
        /// shard's newest event.
        end: Option<i64>,
    },
    /// Checkpoint the running service into one snapshot file at `path`
    /// on the **server's** filesystem (the bytes never cross the wire).
    /// Answered with [`Message::Ok`] or [`Message::Error`]. Requires
    /// protocol version 2.
    Checkpoint {
        /// Server-side snapshot path.
        path: String,
    },
    /// Rebuild the service from a snapshot at `path` on the server's
    /// filesystem. `queries` names the catalog entry for every recorded
    /// query slot, in registration order — queries are code, not data,
    /// so the server re-resolves them by name. Only a *fresh* service
    /// (no attached queries, no ingested events) may be replaced;
    /// otherwise the server answers [`ErrorCode::Conflict`]. Answered
    /// with [`Message::Restored`] or [`Message::Error`]. Requires
    /// protocol version 2.
    Restore {
        /// Server-side snapshot path.
        path: String,
        /// Catalog names filling the recorded roster slots, in order.
        queries: Vec<String>,
    },
    /// Re-join a query's output stream after a reconnect, replaying the
    /// missed suffix from the server's bounded per-query replay ring.
    /// Answered with [`Message::Resumed`] (followed immediately by every
    /// retained [`Message::OutputSeq`] frame with `seq >= next_seq`,
    /// exactly once, in order) or [`Message::Error`]
    /// ([`ErrorCode::ResumeGap`] when the ring has already evicted part
    /// of the requested suffix). Requires protocol version 3.
    Resume {
        /// The query id from [`Message::Attached`].
        query: u32,
        /// The first sequence number the subscriber has *not* seen.
        next_seq: u64,
    },

    // ── server → client ────────────────────────────────────────────────
    /// Handshake accept: the version the server speaks and the initial
    /// ingest credit (events the client may put in its next frame).
    HelloAck {
        /// The server's protocol version.
        version: u16,
        /// Events allowed in the next [`Message::Ingest`] frame.
        credit: u32,
    },
    /// Happy-path ingest ack: the batch was applied with no backpressure;
    /// `grant` replenishes the client's credit.
    Credit {
        /// Events allowed in the next [`Message::Ingest`] frame.
        grant: u32,
    },
    /// Backpressure ingest ack: the batch *was* applied, but a shard
    /// queue was full and the enqueue had to block — the producer should
    /// slow down. `grant` replenishes (typically reduced) credit.
    Busy {
        /// Events allowed in the next [`Message::Ingest`] frame.
        grant: u32,
    },
    /// Attach succeeded.
    Attached {
        /// The query id for later `Detach`/`Subscribe` calls.
        query: u32,
        /// The negotiated join frontier (ticks).
        frontier: i64,
    },
    /// Generic success reply.
    Ok,
    /// Generic failure reply.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// One key's newly finalized events for one subscribed query, in
    /// per-key time order.
    Output {
        /// The subscribed query.
        query: u32,
        /// The key these events belong to.
        key: u64,
        /// The finalized events.
        events: Vec<Event<Value>>,
    },
    /// No further [`Message::Output`] frames will arrive for this query
    /// (service shut down or query detached).
    Eos {
        /// The subscribed query.
        query: u32,
    },
    /// Counter snapshot: `(name, value)` pairs (service health counters
    /// plus the server's own connection/byte/credit accounting).
    StatsReply {
        /// The counters, in server-chosen order.
        fields: Vec<(String, i64)>,
    },
    /// A text document (metrics exposition, journal, or catalog).
    Text {
        /// Which document this is.
        kind: TextKind,
        /// The document body.
        text: String,
    },
    /// Restore succeeded: the live queries of the rebuilt service, as
    /// `(query id, current frontier)` pairs usable exactly like
    /// [`Message::Attached`] replies (detached roster slots are omitted
    /// — their ids stay reserved but cannot be subscribed).
    Restored {
        /// `(id, frontier ticks)` per live restored query, in slot order.
        queries: Vec<(u32, i64)>,
    },
    /// One key's newly finalized events for one subscribed query, tagged
    /// with the query's delivery sequence number. Version-3 connections
    /// receive this instead of [`Message::Output`]; `seq` is contiguous
    /// and monotone per query across *all* of the query's output frames
    /// (shared by every subscriber), which is what makes
    /// [`Message::Resume`] exact.
    OutputSeq {
        /// The subscribed query.
        query: u32,
        /// This frame's position in the query's output stream (0-based).
        seq: u64,
        /// The key these events belong to.
        key: u64,
        /// The finalized events.
        events: Vec<Event<Value>>,
    },
    /// Reply to a successful [`Message::Resume`]: the replayed suffix
    /// follows this frame on the same connection.
    Resumed {
        /// The resumed query.
        query: u32,
        /// Retained frames about to be replayed (0 = nothing was missed).
        replayed: u64,
    },
}

/// Why a payload failed to decode. Every variant closes the connection;
/// none of them panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field's fixed width was satisfied, or a
    /// declared string/vector length exceeds the bytes present.
    Truncated,
    /// A frame header declared a payload above [`MAX_FRAME_LEN`].
    Oversize(u32),
    /// An unknown tag where a known enum discriminant was required.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// String bytes were not UTF-8.
    BadUtf8,
    /// An event interval was empty (`end <= start`).
    BadInterval {
        /// The declared start.
        start: i64,
        /// The declared end.
        end: i64,
    },
    /// Tuple nesting exceeded [`MAX_VALUE_DEPTH`].
    TooDeep,
    /// The payload decoded to a message with bytes left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversize(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadInterval { start, end } => {
                write!(f, "empty event interval ({start}, {end}]")
            }
            WireError::TooDeep => write!(f, "tuple nesting exceeds {MAX_VALUE_DEPTH}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why reading the next message off a connection failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The transport failed (including EOF mid-frame).
    Io(io::Error),
    /// The frame arrived but did not decode.
    Decode(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

// ── encoding ───────────────────────────────────────────────────────────

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }
    fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn opt_i64(&mut self, x: Option<i64>) {
        match x {
            Some(v) => {
                self.u8(1);
                self.i64(v);
            }
            None => self.u8(0),
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(x) => {
                self.u8(2);
                self.i64(*x);
            }
            Value::Float(x) => {
                self.u8(3);
                self.u64(x.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Tuple(fields) => {
                self.u8(5);
                self.u16(fields.len() as u16);
                for f in fields.iter() {
                    self.value(f);
                }
            }
        }
    }
    fn event(&mut self, e: &Event<Value>) {
        self.i64(e.start.ticks());
        self.i64(e.end.ticks());
        self.value(&e.payload);
    }
}

/// Encodes `msg` as a frame payload (no length header).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut e = Enc { buf: Vec::with_capacity(16) };
    match msg {
        Message::Hello { version } => {
            e.u8(0x01);
            e.u16(*version);
        }
        Message::Ingest { events } => {
            e.u8(0x02);
            e.u32(events.len() as u32);
            for ev in events {
                e.u64(ev.key);
                e.u32(ev.source);
                e.event(&ev.event);
            }
        }
        Message::Watermark { source, time } => {
            e.u8(0x03);
            e.u32(*source);
            e.i64(*time);
        }
        Message::Attach { name, lateness, emit_interval } => {
            e.u8(0x04);
            e.str(name);
            e.opt_i64(*lateness);
            e.opt_i64(*emit_interval);
        }
        Message::Detach { query } => {
            e.u8(0x05);
            e.u32(*query);
        }
        Message::Subscribe { query } => {
            e.u8(0x06);
            e.u32(*query);
        }
        Message::Stats => e.u8(0x07),
        Message::MetricsText => e.u8(0x08),
        Message::Journal => e.u8(0x09),
        Message::Catalog => e.u8(0x0A),
        Message::Shutdown { end } => {
            e.u8(0x0B);
            e.opt_i64(*end);
        }
        Message::Checkpoint { path } => {
            e.u8(0x0C);
            e.str(path);
        }
        Message::Restore { path, queries } => {
            e.u8(0x0D);
            e.str(path);
            e.u32(queries.len() as u32);
            for name in queries {
                e.str(name);
            }
        }
        Message::Resume { query, next_seq } => {
            e.u8(0x0E);
            e.u32(*query);
            e.u64(*next_seq);
        }
        Message::HelloAck { version, credit } => {
            e.u8(0x81);
            e.u16(*version);
            e.u32(*credit);
        }
        Message::Credit { grant } => {
            e.u8(0x82);
            e.u32(*grant);
        }
        Message::Busy { grant } => {
            e.u8(0x83);
            e.u32(*grant);
        }
        Message::Attached { query, frontier } => {
            e.u8(0x84);
            e.u32(*query);
            e.i64(*frontier);
        }
        Message::Ok => e.u8(0x85),
        Message::Error { code, message } => {
            e.u8(0x86);
            e.u8(code.to_u8());
            e.str(message);
        }
        Message::Output { query, key, events } => {
            e.u8(0x87);
            e.u32(*query);
            e.u64(*key);
            e.u32(events.len() as u32);
            for ev in events {
                e.event(ev);
            }
        }
        Message::Eos { query } => {
            e.u8(0x88);
            e.u32(*query);
        }
        Message::StatsReply { fields } => {
            e.u8(0x89);
            e.u32(fields.len() as u32);
            for (name, value) in fields {
                e.str(name);
                e.i64(*value);
            }
        }
        Message::Text { kind, text } => {
            e.u8(0x8A);
            e.u8(kind.to_u8());
            e.str(text);
        }
        Message::Restored { queries } => {
            e.u8(0x8B);
            e.u32(queries.len() as u32);
            for (id, frontier) in queries {
                e.u32(*id);
                e.i64(*frontier);
            }
        }
        Message::OutputSeq { query, seq, key, events } => {
            e.u8(0x8C);
            e.u32(*query);
            e.u64(*seq);
            e.u64(*key);
            e.u32(events.len() as u32);
            for ev in events {
                e.event(ev);
            }
        }
        Message::Resumed { query, replayed } => {
            e.u8(0x8D);
            e.u32(*query);
            e.u64(*replayed);
        }
    }
    e.buf
}

/// Encodes `msg` as a complete frame (length header + payload).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = encode(msg);
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64, "oversize frame encoded");
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

// ── decoding ───────────────────────────────────────────────────────────

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opt_i64(&mut self) -> Result<Option<i64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            tag => Err(WireError::BadTag { what: "option", tag }),
        }
    }
    /// A declared element count, validated against the bytes actually
    /// present (each element needs at least `min_width` bytes) so a
    /// hostile count cannot trigger a huge allocation.
    fn count(&mut self, min_width: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_width.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        std::str::from_utf8(self.take(n)?).map(str::to_owned).map_err(|_| WireError::BadUtf8)
    }
    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                tag => Err(WireError::BadTag { what: "bool", tag }),
            },
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::Str(Arc::from(self.str()?.as_str()))),
            5 => {
                let n = self.u16()? as usize;
                if n > self.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(self.value(depth + 1)?);
                }
                Ok(Value::Tuple(fields.into()))
            }
            tag => Err(WireError::BadTag { what: "value", tag }),
        }
    }
    fn event(&mut self) -> Result<Event<Value>, WireError> {
        let start = self.i64()?;
        let end = self.i64()?;
        if end <= start {
            return Err(WireError::BadInterval { start, end });
        }
        let payload = self.value(0)?;
        Ok(Event { start: Time::new(start), end: Time::new(end), payload })
    }
}

/// Decodes one frame payload into a [`Message`]. Total: returns an error
/// for any byte sequence it cannot interpret, and never panics.
pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
    let mut d = Dec { buf: payload, pos: 0 };
    let msg = match d.u8()? {
        0x01 => Message::Hello { version: d.u16()? },
        0x02 => {
            // key(8) + source(4) + start(8) + end(8) + value tag(1)
            let n = d.count(29)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let key = d.u64()?;
                let source = d.u32()?;
                events.push(WireEvent { key, source, event: d.event()? });
            }
            Message::Ingest { events }
        }
        0x03 => Message::Watermark { source: d.u32()?, time: d.i64()? },
        0x04 => {
            Message::Attach { name: d.str()?, lateness: d.opt_i64()?, emit_interval: d.opt_i64()? }
        }
        0x05 => Message::Detach { query: d.u32()? },
        0x06 => Message::Subscribe { query: d.u32()? },
        0x07 => Message::Stats,
        0x08 => Message::MetricsText,
        0x09 => Message::Journal,
        0x0A => Message::Catalog,
        0x0B => Message::Shutdown { end: d.opt_i64()? },
        0x0C => Message::Checkpoint { path: d.str()? },
        0x0D => {
            let path = d.str()?;
            // Each name carries at least its 4-byte length header.
            let n = d.count(4)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(d.str()?);
            }
            Message::Restore { path, queries }
        }
        0x0E => Message::Resume { query: d.u32()?, next_seq: d.u64()? },
        0x81 => Message::HelloAck { version: d.u16()?, credit: d.u32()? },
        0x82 => Message::Credit { grant: d.u32()? },
        0x83 => Message::Busy { grant: d.u32()? },
        0x84 => Message::Attached { query: d.u32()?, frontier: d.i64()? },
        0x85 => Message::Ok,
        0x86 => {
            let code = ErrorCode::from_u8(d.u8()?)
                .ok_or(WireError::BadTag { what: "error code", tag: 0 })?;
            Message::Error { code, message: d.str()? }
        }
        0x87 => {
            let query = d.u32()?;
            let key = d.u64()?;
            // start(8) + end(8) + value tag(1)
            let n = d.count(17)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(d.event()?);
            }
            Message::Output { query, key, events }
        }
        0x88 => Message::Eos { query: d.u32()? },
        0x89 => {
            // name len(4) + value(8)
            let n = d.count(12)?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str()?;
                fields.push((name, d.i64()?));
            }
            Message::StatsReply { fields }
        }
        0x8A => {
            let kind = TextKind::from_u8(d.u8()?)
                .ok_or(WireError::BadTag { what: "text kind", tag: 0 })?;
            Message::Text { kind, text: d.str()? }
        }
        0x8B => {
            // id(4) + frontier(8)
            let n = d.count(12)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                let id = d.u32()?;
                queries.push((id, d.i64()?));
            }
            Message::Restored { queries }
        }
        0x8C => {
            let query = d.u32()?;
            let seq = d.u64()?;
            let key = d.u64()?;
            // start(8) + end(8) + value tag(1)
            let n = d.count(17)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(d.event()?);
            }
            Message::OutputSeq { query, seq, key, events }
        }
        0x8D => Message::Resumed { query: d.u32()?, replayed: d.u64()? },
        tag => return Err(WireError::BadTag { what: "message", tag }),
    };
    if d.remaining() > 0 {
        return Err(WireError::TrailingBytes(d.remaining()));
    }
    Ok(msg)
}

// ── framed transport ───────────────────────────────────────────────────

/// Writes `msg` as one frame, returning the bytes written.
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<usize> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame and decodes it, returning the message and the total
/// bytes consumed (header + payload).
///
/// EOF *before the first header byte* is a clean close
/// ([`RecvError::Closed`]); EOF anywhere inside a frame is an I/O error.
/// A length header above [`MAX_FRAME_LEN`] is reported as
/// [`WireError::Oversize`] without reading (or allocating) the payload.
pub fn read_message(r: &mut impl Read) -> Result<(Message, usize), RecvError> {
    let mut header = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a torn header.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    RecvError::Closed
                } else {
                    RecvError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame header",
                    ))
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(RecvError::Decode(WireError::Oversize(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(RecvError::Io)?;
    let msg = decode(&payload).map_err(RecvError::Decode)?;
    Ok((msg, 4 + len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let payload = encode(&msg);
        assert_eq!(decode(&payload).expect("decode"), msg);
    }

    #[test]
    fn representative_messages_roundtrip() {
        roundtrip(Message::Hello { version: PROTOCOL_VERSION });
        roundtrip(Message::HelloAck { version: 1, credit: 8192 });
        roundtrip(Message::Ingest {
            events: vec![WireEvent {
                key: 7,
                source: 0,
                event: Event::new(Time::new(1), Time::new(3), Value::Float(2.5)),
            }],
        });
        roundtrip(Message::Attach {
            name: "sliding_sum".into(),
            lateness: Some(8),
            emit_interval: None,
        });
        roundtrip(Message::Output {
            query: 3,
            key: 42,
            events: vec![Event::new(
                Time::new(-5),
                Time::new(0),
                Value::tuple([Value::Int(1), Value::Str(Arc::from("hi")), Value::Null]),
            )],
        });
        roundtrip(Message::Error { code: ErrorCode::UnknownName, message: "no such query".into() });
        roundtrip(Message::StatsReply {
            fields: vec![("events_in".into(), 100), ("conservation_balance".into(), 0)],
        });
        roundtrip(Message::Text { kind: TextKind::Journal, text: "0 +1ms connect conn=1".into() });
        roundtrip(Message::Checkpoint { path: "/tmp/snap.tiltsnp".into() });
        roundtrip(Message::Restore { path: "snap".into(), queries: vec![] });
        roundtrip(Message::Restore {
            path: "/var/lib/tilt/epoch-7.tiltsnp".into(),
            queries: vec!["sliding_sum".into(), "naïve".into(), String::new()],
        });
        roundtrip(Message::Restored { queries: vec![] });
        roundtrip(Message::Restored { queries: vec![(0, 0), (2, -5), (u32::MAX, i64::MAX)] });
        roundtrip(Message::Resume { query: 0, next_seq: 0 });
        roundtrip(Message::Resume { query: 3, next_seq: u64::MAX });
        roundtrip(Message::OutputSeq { query: 1, seq: 0, key: u64::MAX, events: vec![] });
        roundtrip(Message::OutputSeq {
            query: 3,
            seq: 9_000_000_000,
            key: 42,
            events: vec![Event::new(
                Time::new(-5),
                Time::new(0),
                Value::tuple([Value::Int(1), Value::Str(Arc::from("hi")), Value::Null]),
            )],
        });
        roundtrip(Message::Resumed { query: 3, replayed: 0 });
        roundtrip(Message::Resumed { query: u32::MAX, replayed: u64::MAX });
    }

    #[test]
    fn every_truncation_of_a_valid_payload_errors() {
        let msg = Message::Ingest {
            events: vec![
                WireEvent {
                    key: u64::MAX,
                    source: 3,
                    event: Event::new(
                        Time::new(-1),
                        Time::new(9),
                        Value::tuple([Value::Bool(true), Value::Float(f64::NAN)]),
                    ),
                },
                WireEvent {
                    key: 0,
                    source: 0,
                    event: Event::new(Time::new(0), Time::new(1), Value::str("αβγ")),
                },
            ],
        };
        let payload = encode(&msg);
        for cut in 0..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "truncation to {cut}/{} bytes decoded",
                payload.len()
            );
        }
    }

    #[test]
    fn empty_event_intervals_are_rejected() {
        // Hand-assemble an Ingest frame whose event has end == start.
        let mut e = Enc { buf: Vec::new() };
        e.u8(0x02);
        e.u32(1);
        e.u64(1); // key
        e.u32(0); // source
        e.i64(5); // start
        e.i64(5); // end == start: empty
        e.u8(0); // Null payload
        assert_eq!(
            decode(&e.buf),
            Err(WireError::BadInterval { start: 5, end: 5 }),
            "empty interval must be refused before Event::new can panic"
        );
    }

    #[test]
    fn tuple_depth_is_bounded() {
        // A payload of nested tuple tags deeper than MAX_VALUE_DEPTH.
        let mut e = Enc { buf: Vec::new() };
        e.u8(0x87); // Output
        e.u32(0); // query
        e.u64(0); // key
        e.u32(1); // one event
        e.i64(0); // start
        e.i64(1); // end
        for _ in 0..(MAX_VALUE_DEPTH + 2) {
            e.u8(5); // Tuple
            e.u16(1); // one field
        }
        e.u8(0); // innermost Null
        assert_eq!(decode(&e.buf), Err(WireError::TooDeep));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // Ingest claiming u32::MAX events with a 1-byte body.
        let mut buf = vec![0x02];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0);
        assert_eq!(decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode(&Message::Ok);
        payload.push(0xFF);
        assert_eq!(decode(&payload), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn oversize_header_is_refused_without_reading_the_body() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        match read_message(&mut cursor) {
            Err(RecvError::Decode(WireError::Oversize(len))) => {
                assert_eq!(len, MAX_FRAME_LEN + 1)
            }
            other => panic!("expected oversize error, got {other:?}"),
        }
        // Nothing past the header was consumed.
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    fn clean_close_is_distinguished_from_torn_frames() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_message(&mut empty), Err(RecvError::Closed)));
        let mut torn = io::Cursor::new(vec![3, 0]);
        assert!(matches!(read_message(&mut torn), Err(RecvError::Io(_))));
        let mut torn_body = io::Cursor::new(vec![3, 0, 0, 0, 0x85]);
        assert!(matches!(read_message(&mut torn_body), Err(RecvError::Io(_))));
    }
}
